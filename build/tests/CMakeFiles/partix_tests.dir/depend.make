# Empty dependencies file for partix_tests.
# This may be replaced when dependencies are built.
