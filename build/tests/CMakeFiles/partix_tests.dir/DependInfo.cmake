
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_test.cc" "tests/CMakeFiles/partix_tests.dir/advisor_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/advisor_test.cc.o.d"
  "/root/repo/tests/allocation_test.cc" "tests/CMakeFiles/partix_tests.dir/allocation_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/allocation_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/partix_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/decomposer_test.cc" "tests/CMakeFiles/partix_tests.dir/decomposer_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/decomposer_test.cc.o.d"
  "/root/repo/tests/deployment_io_test.cc" "tests/CMakeFiles/partix_tests.dir/deployment_io_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/deployment_io_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/partix_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/failure_test.cc" "tests/CMakeFiles/partix_tests.dir/failure_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/failure_test.cc.o.d"
  "/root/repo/tests/fragmentation_test.cc" "tests/CMakeFiles/partix_tests.dir/fragmentation_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/fragmentation_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/partix_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/middleware_test.cc" "tests/CMakeFiles/partix_tests.dir/middleware_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/middleware_test.cc.o.d"
  "/root/repo/tests/misc_coverage_test.cc" "tests/CMakeFiles/partix_tests.dir/misc_coverage_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/misc_coverage_test.cc.o.d"
  "/root/repo/tests/paper_examples_test.cc" "tests/CMakeFiles/partix_tests.dir/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/paper_examples_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/partix_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/partix_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/partix_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/partix_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/partix_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/xml_test.cc.o.d"
  "/root/repo/tests/xpath_test.cc" "tests/CMakeFiles/partix_tests.dir/xpath_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/xpath_test.cc.o.d"
  "/root/repo/tests/xquery_extended_test.cc" "tests/CMakeFiles/partix_tests.dir/xquery_extended_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/xquery_extended_test.cc.o.d"
  "/root/repo/tests/xquery_test.cc" "tests/CMakeFiles/partix_tests.dir/xquery_test.cc.o" "gcc" "tests/CMakeFiles/partix_tests.dir/xquery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/partix_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/partix/CMakeFiles/partix_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/partix_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/fragmentation/CMakeFiles/partix_frag.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/partix_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/partix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/partix_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/partix_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
