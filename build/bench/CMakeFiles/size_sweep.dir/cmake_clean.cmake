file(REMOVE_RECURSE
  "CMakeFiles/size_sweep.dir/size_sweep.cc.o"
  "CMakeFiles/size_sweep.dir/size_sweep.cc.o.d"
  "size_sweep"
  "size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
