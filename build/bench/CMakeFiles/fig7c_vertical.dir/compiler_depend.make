# Empty compiler generated dependencies file for fig7c_vertical.
# This may be replaced when dependencies are built.
