file(REMOVE_RECURSE
  "CMakeFiles/fig7c_vertical.dir/fig7c_vertical.cc.o"
  "CMakeFiles/fig7c_vertical.dir/fig7c_vertical.cc.o.d"
  "fig7c_vertical"
  "fig7c_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
