file(REMOVE_RECURSE
  "CMakeFiles/fig7d_hybrid.dir/fig7d_hybrid.cc.o"
  "CMakeFiles/fig7d_hybrid.dir/fig7d_hybrid.cc.o.d"
  "fig7d_hybrid"
  "fig7d_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7d_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
