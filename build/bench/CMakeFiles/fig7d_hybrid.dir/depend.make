# Empty dependencies file for fig7d_hybrid.
# This may be replaced when dependencies are built.
