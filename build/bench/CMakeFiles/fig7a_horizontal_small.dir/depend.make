# Empty dependencies file for fig7a_horizontal_small.
# This may be replaced when dependencies are built.
