file(REMOVE_RECURSE
  "CMakeFiles/fig7a_horizontal_small.dir/fig7a_horizontal_small.cc.o"
  "CMakeFiles/fig7a_horizontal_small.dir/fig7a_horizontal_small.cc.o.d"
  "fig7a_horizontal_small"
  "fig7a_horizontal_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_horizontal_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
