
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7a_horizontal_small.cc" "bench/CMakeFiles/fig7a_horizontal_small.dir/fig7a_horizontal_small.cc.o" "gcc" "bench/CMakeFiles/fig7a_horizontal_small.dir/fig7a_horizontal_small.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/partix_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/partix/CMakeFiles/partix_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/partix_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/fragmentation/CMakeFiles/partix_frag.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/partix_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/partix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/partix_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/partix_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
