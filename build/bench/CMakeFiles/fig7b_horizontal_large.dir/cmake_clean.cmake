file(REMOVE_RECURSE
  "CMakeFiles/fig7b_horizontal_large.dir/fig7b_horizontal_large.cc.o"
  "CMakeFiles/fig7b_horizontal_large.dir/fig7b_horizontal_large.cc.o.d"
  "fig7b_horizontal_large"
  "fig7b_horizontal_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_horizontal_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
