# Empty dependencies file for fig7b_horizontal_large.
# This may be replaced when dependencies are built.
