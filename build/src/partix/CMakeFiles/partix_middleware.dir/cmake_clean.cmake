file(REMOVE_RECURSE
  "CMakeFiles/partix_middleware.dir/allocation.cc.o"
  "CMakeFiles/partix_middleware.dir/allocation.cc.o.d"
  "CMakeFiles/partix_middleware.dir/catalog.cc.o"
  "CMakeFiles/partix_middleware.dir/catalog.cc.o.d"
  "CMakeFiles/partix_middleware.dir/cluster.cc.o"
  "CMakeFiles/partix_middleware.dir/cluster.cc.o.d"
  "CMakeFiles/partix_middleware.dir/decomposer.cc.o"
  "CMakeFiles/partix_middleware.dir/decomposer.cc.o.d"
  "CMakeFiles/partix_middleware.dir/deployment_io.cc.o"
  "CMakeFiles/partix_middleware.dir/deployment_io.cc.o.d"
  "CMakeFiles/partix_middleware.dir/driver.cc.o"
  "CMakeFiles/partix_middleware.dir/driver.cc.o.d"
  "CMakeFiles/partix_middleware.dir/publisher.cc.o"
  "CMakeFiles/partix_middleware.dir/publisher.cc.o.d"
  "CMakeFiles/partix_middleware.dir/query_service.cc.o"
  "CMakeFiles/partix_middleware.dir/query_service.cc.o.d"
  "libpartix_middleware.a"
  "libpartix_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
