# Empty compiler generated dependencies file for partix_middleware.
# This may be replaced when dependencies are built.
