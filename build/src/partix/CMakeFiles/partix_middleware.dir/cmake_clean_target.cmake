file(REMOVE_RECURSE
  "libpartix_middleware.a"
)
