
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partix/allocation.cc" "src/partix/CMakeFiles/partix_middleware.dir/allocation.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/allocation.cc.o.d"
  "/root/repo/src/partix/catalog.cc" "src/partix/CMakeFiles/partix_middleware.dir/catalog.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/catalog.cc.o.d"
  "/root/repo/src/partix/cluster.cc" "src/partix/CMakeFiles/partix_middleware.dir/cluster.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/cluster.cc.o.d"
  "/root/repo/src/partix/decomposer.cc" "src/partix/CMakeFiles/partix_middleware.dir/decomposer.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/decomposer.cc.o.d"
  "/root/repo/src/partix/deployment_io.cc" "src/partix/CMakeFiles/partix_middleware.dir/deployment_io.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/deployment_io.cc.o.d"
  "/root/repo/src/partix/driver.cc" "src/partix/CMakeFiles/partix_middleware.dir/driver.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/driver.cc.o.d"
  "/root/repo/src/partix/publisher.cc" "src/partix/CMakeFiles/partix_middleware.dir/publisher.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/publisher.cc.o.d"
  "/root/repo/src/partix/query_service.cc" "src/partix/CMakeFiles/partix_middleware.dir/query_service.cc.o" "gcc" "src/partix/CMakeFiles/partix_middleware.dir/query_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/partix_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/fragmentation/CMakeFiles/partix_frag.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/partix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/partix_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/partix_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
