# Empty compiler generated dependencies file for partix_engine.
# This may be replaced when dependencies are built.
