file(REMOVE_RECURSE
  "CMakeFiles/partix_engine.dir/database.cc.o"
  "CMakeFiles/partix_engine.dir/database.cc.o.d"
  "CMakeFiles/partix_engine.dir/persistence.cc.o"
  "CMakeFiles/partix_engine.dir/persistence.cc.o.d"
  "CMakeFiles/partix_engine.dir/planner.cc.o"
  "CMakeFiles/partix_engine.dir/planner.cc.o.d"
  "libpartix_engine.a"
  "libpartix_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
