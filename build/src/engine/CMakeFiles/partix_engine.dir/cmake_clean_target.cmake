file(REMOVE_RECURSE
  "libpartix_engine.a"
)
