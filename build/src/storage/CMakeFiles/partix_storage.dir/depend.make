# Empty dependencies file for partix_storage.
# This may be replaced when dependencies are built.
