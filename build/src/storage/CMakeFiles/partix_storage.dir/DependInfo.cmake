
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/document_store.cc" "src/storage/CMakeFiles/partix_storage.dir/document_store.cc.o" "gcc" "src/storage/CMakeFiles/partix_storage.dir/document_store.cc.o.d"
  "/root/repo/src/storage/indexes.cc" "src/storage/CMakeFiles/partix_storage.dir/indexes.cc.o" "gcc" "src/storage/CMakeFiles/partix_storage.dir/indexes.cc.o.d"
  "/root/repo/src/storage/stats.cc" "src/storage/CMakeFiles/partix_storage.dir/stats.cc.o" "gcc" "src/storage/CMakeFiles/partix_storage.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
