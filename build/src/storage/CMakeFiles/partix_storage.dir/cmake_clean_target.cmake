file(REMOVE_RECURSE
  "libpartix_storage.a"
)
