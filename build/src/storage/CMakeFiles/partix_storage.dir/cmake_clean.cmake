file(REMOVE_RECURSE
  "CMakeFiles/partix_storage.dir/document_store.cc.o"
  "CMakeFiles/partix_storage.dir/document_store.cc.o.d"
  "CMakeFiles/partix_storage.dir/indexes.cc.o"
  "CMakeFiles/partix_storage.dir/indexes.cc.o.d"
  "CMakeFiles/partix_storage.dir/stats.cc.o"
  "CMakeFiles/partix_storage.dir/stats.cc.o.d"
  "libpartix_storage.a"
  "libpartix_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
