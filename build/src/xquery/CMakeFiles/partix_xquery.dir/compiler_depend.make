# Empty compiler generated dependencies file for partix_xquery.
# This may be replaced when dependencies are built.
