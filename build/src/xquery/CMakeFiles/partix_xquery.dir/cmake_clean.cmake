file(REMOVE_RECURSE
  "CMakeFiles/partix_xquery.dir/ast.cc.o"
  "CMakeFiles/partix_xquery.dir/ast.cc.o.d"
  "CMakeFiles/partix_xquery.dir/evaluator.cc.o"
  "CMakeFiles/partix_xquery.dir/evaluator.cc.o.d"
  "CMakeFiles/partix_xquery.dir/item.cc.o"
  "CMakeFiles/partix_xquery.dir/item.cc.o.d"
  "CMakeFiles/partix_xquery.dir/parser.cc.o"
  "CMakeFiles/partix_xquery.dir/parser.cc.o.d"
  "libpartix_xquery.a"
  "libpartix_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
