file(REMOVE_RECURSE
  "libpartix_xquery.a"
)
