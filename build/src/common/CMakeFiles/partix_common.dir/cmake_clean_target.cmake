file(REMOVE_RECURSE
  "libpartix_common.a"
)
