file(REMOVE_RECURSE
  "CMakeFiles/partix_common.dir/rng.cc.o"
  "CMakeFiles/partix_common.dir/rng.cc.o.d"
  "CMakeFiles/partix_common.dir/status.cc.o"
  "CMakeFiles/partix_common.dir/status.cc.o.d"
  "CMakeFiles/partix_common.dir/strings.cc.o"
  "CMakeFiles/partix_common.dir/strings.cc.o.d"
  "libpartix_common.a"
  "libpartix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
