# Empty dependencies file for partix_common.
# This may be replaced when dependencies are built.
