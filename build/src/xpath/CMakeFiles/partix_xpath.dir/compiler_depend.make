# Empty compiler generated dependencies file for partix_xpath.
# This may be replaced when dependencies are built.
