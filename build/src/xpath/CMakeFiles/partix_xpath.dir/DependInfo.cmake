
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/eval.cc" "src/xpath/CMakeFiles/partix_xpath.dir/eval.cc.o" "gcc" "src/xpath/CMakeFiles/partix_xpath.dir/eval.cc.o.d"
  "/root/repo/src/xpath/path.cc" "src/xpath/CMakeFiles/partix_xpath.dir/path.cc.o" "gcc" "src/xpath/CMakeFiles/partix_xpath.dir/path.cc.o.d"
  "/root/repo/src/xpath/predicate.cc" "src/xpath/CMakeFiles/partix_xpath.dir/predicate.cc.o" "gcc" "src/xpath/CMakeFiles/partix_xpath.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
