file(REMOVE_RECURSE
  "libpartix_xpath.a"
)
