file(REMOVE_RECURSE
  "CMakeFiles/partix_xpath.dir/eval.cc.o"
  "CMakeFiles/partix_xpath.dir/eval.cc.o.d"
  "CMakeFiles/partix_xpath.dir/path.cc.o"
  "CMakeFiles/partix_xpath.dir/path.cc.o.d"
  "CMakeFiles/partix_xpath.dir/predicate.cc.o"
  "CMakeFiles/partix_xpath.dir/predicate.cc.o.d"
  "libpartix_xpath.a"
  "libpartix_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
