file(REMOVE_RECURSE
  "libpartix_frag.a"
)
