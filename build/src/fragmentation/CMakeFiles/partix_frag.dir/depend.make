# Empty dependencies file for partix_frag.
# This may be replaced when dependencies are built.
