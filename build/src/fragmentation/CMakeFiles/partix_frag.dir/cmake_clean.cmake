file(REMOVE_RECURSE
  "CMakeFiles/partix_frag.dir/advisor.cc.o"
  "CMakeFiles/partix_frag.dir/advisor.cc.o.d"
  "CMakeFiles/partix_frag.dir/algebra.cc.o"
  "CMakeFiles/partix_frag.dir/algebra.cc.o.d"
  "CMakeFiles/partix_frag.dir/correctness.cc.o"
  "CMakeFiles/partix_frag.dir/correctness.cc.o.d"
  "CMakeFiles/partix_frag.dir/fragment_def.cc.o"
  "CMakeFiles/partix_frag.dir/fragment_def.cc.o.d"
  "CMakeFiles/partix_frag.dir/fragmenter.cc.o"
  "CMakeFiles/partix_frag.dir/fragmenter.cc.o.d"
  "CMakeFiles/partix_frag.dir/reconstruct.cc.o"
  "CMakeFiles/partix_frag.dir/reconstruct.cc.o.d"
  "CMakeFiles/partix_frag.dir/schema_io.cc.o"
  "CMakeFiles/partix_frag.dir/schema_io.cc.o.d"
  "libpartix_frag.a"
  "libpartix_frag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_frag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
