
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fragmentation/advisor.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/advisor.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/advisor.cc.o.d"
  "/root/repo/src/fragmentation/algebra.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/algebra.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/algebra.cc.o.d"
  "/root/repo/src/fragmentation/correctness.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/correctness.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/correctness.cc.o.d"
  "/root/repo/src/fragmentation/fragment_def.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/fragment_def.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/fragment_def.cc.o.d"
  "/root/repo/src/fragmentation/fragmenter.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/fragmenter.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/fragmenter.cc.o.d"
  "/root/repo/src/fragmentation/reconstruct.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/reconstruct.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/reconstruct.cc.o.d"
  "/root/repo/src/fragmentation/schema_io.cc" "src/fragmentation/CMakeFiles/partix_frag.dir/schema_io.cc.o" "gcc" "src/fragmentation/CMakeFiles/partix_frag.dir/schema_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xquery/CMakeFiles/partix_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/partix_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
