
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/virtual_store.cc" "src/gen/CMakeFiles/partix_gen.dir/virtual_store.cc.o" "gcc" "src/gen/CMakeFiles/partix_gen.dir/virtual_store.cc.o.d"
  "/root/repo/src/gen/xbench.cc" "src/gen/CMakeFiles/partix_gen.dir/xbench.cc.o" "gcc" "src/gen/CMakeFiles/partix_gen.dir/xbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/partix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
