file(REMOVE_RECURSE
  "libpartix_gen.a"
)
