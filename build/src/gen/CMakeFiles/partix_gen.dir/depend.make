# Empty dependencies file for partix_gen.
# This may be replaced when dependencies are built.
