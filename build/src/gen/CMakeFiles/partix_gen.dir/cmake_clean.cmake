file(REMOVE_RECURSE
  "CMakeFiles/partix_gen.dir/virtual_store.cc.o"
  "CMakeFiles/partix_gen.dir/virtual_store.cc.o.d"
  "CMakeFiles/partix_gen.dir/xbench.cc.o"
  "CMakeFiles/partix_gen.dir/xbench.cc.o.d"
  "libpartix_gen.a"
  "libpartix_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
