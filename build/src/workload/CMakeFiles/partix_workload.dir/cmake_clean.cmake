file(REMOVE_RECURSE
  "CMakeFiles/partix_workload.dir/harness.cc.o"
  "CMakeFiles/partix_workload.dir/harness.cc.o.d"
  "CMakeFiles/partix_workload.dir/queries.cc.o"
  "CMakeFiles/partix_workload.dir/queries.cc.o.d"
  "CMakeFiles/partix_workload.dir/schemas.cc.o"
  "CMakeFiles/partix_workload.dir/schemas.cc.o.d"
  "libpartix_workload.a"
  "libpartix_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
