# Empty dependencies file for partix_workload.
# This may be replaced when dependencies are built.
