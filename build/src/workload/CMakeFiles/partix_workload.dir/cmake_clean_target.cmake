file(REMOVE_RECURSE
  "libpartix_workload.a"
)
