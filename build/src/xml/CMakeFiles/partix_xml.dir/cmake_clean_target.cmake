file(REMOVE_RECURSE
  "libpartix_xml.a"
)
