# Empty compiler generated dependencies file for partix_xml.
# This may be replaced when dependencies are built.
