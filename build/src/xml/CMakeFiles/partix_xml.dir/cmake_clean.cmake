file(REMOVE_RECURSE
  "CMakeFiles/partix_xml.dir/collection.cc.o"
  "CMakeFiles/partix_xml.dir/collection.cc.o.d"
  "CMakeFiles/partix_xml.dir/compare.cc.o"
  "CMakeFiles/partix_xml.dir/compare.cc.o.d"
  "CMakeFiles/partix_xml.dir/document.cc.o"
  "CMakeFiles/partix_xml.dir/document.cc.o.d"
  "CMakeFiles/partix_xml.dir/name_pool.cc.o"
  "CMakeFiles/partix_xml.dir/name_pool.cc.o.d"
  "CMakeFiles/partix_xml.dir/parser.cc.o"
  "CMakeFiles/partix_xml.dir/parser.cc.o.d"
  "CMakeFiles/partix_xml.dir/schema.cc.o"
  "CMakeFiles/partix_xml.dir/schema.cc.o.d"
  "CMakeFiles/partix_xml.dir/serializer.cc.o"
  "CMakeFiles/partix_xml.dir/serializer.cc.o.d"
  "libpartix_xml.a"
  "libpartix_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
