# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_store_horizontal "/root/repo/build/examples/store_horizontal")
set_tests_properties(example_store_horizontal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xbench_vertical "/root/repo/build/examples/xbench_vertical")
set_tests_properties(example_xbench_vertical PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_sd "/root/repo/build/examples/hybrid_sd")
set_tests_properties(example_hybrid_sd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_advisor "/root/repo/build/examples/design_advisor")
set_tests_properties(example_design_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partix_shell "/root/repo/build/examples/partix_shell" "--gen" "smoke=20" "-c" "count(collection(\"smoke\")/Item)")
set_tests_properties(example_partix_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
