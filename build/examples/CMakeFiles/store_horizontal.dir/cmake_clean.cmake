file(REMOVE_RECURSE
  "CMakeFiles/store_horizontal.dir/store_horizontal.cpp.o"
  "CMakeFiles/store_horizontal.dir/store_horizontal.cpp.o.d"
  "store_horizontal"
  "store_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
