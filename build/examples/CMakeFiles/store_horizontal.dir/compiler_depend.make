# Empty compiler generated dependencies file for store_horizontal.
# This may be replaced when dependencies are built.
