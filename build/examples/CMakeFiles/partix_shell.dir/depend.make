# Empty dependencies file for partix_shell.
# This may be replaced when dependencies are built.
