file(REMOVE_RECURSE
  "CMakeFiles/partix_shell.dir/partix_shell.cpp.o"
  "CMakeFiles/partix_shell.dir/partix_shell.cpp.o.d"
  "partix_shell"
  "partix_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partix_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
