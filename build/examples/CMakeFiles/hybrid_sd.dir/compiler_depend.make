# Empty compiler generated dependencies file for hybrid_sd.
# This may be replaced when dependencies are built.
