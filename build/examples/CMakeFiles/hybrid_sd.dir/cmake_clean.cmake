file(REMOVE_RECURSE
  "CMakeFiles/hybrid_sd.dir/hybrid_sd.cpp.o"
  "CMakeFiles/hybrid_sd.dir/hybrid_sd.cpp.o.d"
  "hybrid_sd"
  "hybrid_sd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
