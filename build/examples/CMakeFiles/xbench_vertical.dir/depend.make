# Empty dependencies file for xbench_vertical.
# This may be replaced when dependencies are built.
