file(REMOVE_RECURSE
  "CMakeFiles/xbench_vertical.dir/xbench_vertical.cpp.o"
  "CMakeFiles/xbench_vertical.dir/xbench_vertical.cpp.o.d"
  "xbench_vertical"
  "xbench_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbench_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
