// Measured vs. modeled intra-query parallelism on the Fig. 7(a) workload.
//
// The paper *models* parallel sub-query execution (response time = the
// slowest site); the executor added in this repository *runs* it, so this
// bench reports both figures side by side: the modeled response time and
// the measured wall-clock at parallelism 1 / 2 / 4, plus a byte-identity
// check of the composed results across parallelism levels.
//
// Two measured series are reported:
//
//   - in-process: sub-queries are pure CPU on this host. Wall-clock
//     speedup requires free cores — on a single-core container the
//     series shows ~1x by physics, on a 4+-core host it approaches the
//     modeled sum/max ratio.
//   - remote-emulation: each dispatch additionally blocks its worker for
//     an emulated RPC round trip to the node
//     (NetworkModel::emulated_rpc_sec), the latency a real driver pays
//     against a remote DBMS (the paper's prototype spoke XML-RPC to
//     eXist). Blocked workers hold no core, so overlapping the waits is a
//     real, measurable parallelism win on any hardware.
//
// Set PARTIX_SCALE to grow the database, PARTIX_RUNS for repetitions,
// PARTIX_RPC_MS to change the emulated round trip (default 40 ms).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_out.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::DistributedResult;
using partix::middleware::ExecutionOptions;

constexpr size_t kFragments = 4;
const size_t kParallelisms[] = {1, 2, 4};

struct Cell {
  double wall_ms = 0.0;      // measured, averaged
  double response_ms = 0.0;  // modeled, averaged
  std::string serialized;    // composed result (identity check)
  size_t subqueries = 0;
};

double RpcMillisFromEnv() {
  const char* raw = std::getenv("PARTIX_RPC_MS");
  double ms = 40.0;
  if (raw != nullptr) {
    double parsed = 0.0;
    if (partix::ParseDouble(raw, &parsed) && parsed >= 0.0) ms = parsed;
  }
  return ms;
}

/// Runs one query at one parallelism level: one discarded warm-up, then
/// `runs` measured repetitions. `intra` additionally splits each node's
/// evaluation into that many morsels (1 = sequential engines).
partix::Result<Cell> MeasureCell(partix::workload::Deployment* deployment,
                                 const partix::workload::QuerySpec& query,
                                 size_t parallelism, size_t runs,
                                 size_t intra = 1) {
  Cell cell;
  ExecutionOptions options;
  options.parallelism = parallelism;
  options.intra_node_parallelism = intra;
  for (size_t run = 0; run <= runs; ++run) {
    PARTIX_ASSIGN_OR_RETURN(
        DistributedResult result,
        deployment->service().Execute(query.text, options));
    if (run == 0) {
      cell.serialized = std::move(result.serialized);
      cell.subqueries = result.subqueries.size();
      continue;  // warm-up: primes node caches, not counted
    }
    cell.wall_ms += result.wall_ms;
    cell.response_ms += result.response_ms;
  }
  cell.wall_ms /= static_cast<double>(runs);
  cell.response_ms /= static_cast<double>(runs);
  return cell;
}

/// One full series (all queries x all parallelism levels) on `deployment`.
/// Returns cells[query][parallelism-index]; checks byte-identity.
partix::Result<std::vector<std::vector<Cell>>> RunSeries(
    partix::workload::Deployment* deployment,
    const std::vector<partix::workload::QuerySpec>& queries, size_t runs,
    bool* identical, size_t intra = 1) {
  std::vector<std::vector<Cell>> cells;
  for (const auto& query : queries) {
    std::vector<Cell> row;
    for (size_t p : kParallelisms) {
      PARTIX_ASSIGN_OR_RETURN(Cell cell,
                              MeasureCell(deployment, query, p, runs, intra));
      if (!row.empty() && cell.serialized != row.front().serialized) {
        *identical = false;
        std::fprintf(stderr,
                     "MISMATCH: %s composed differently at parallelism %zu\n",
                     query.id.c_str(), p);
      }
      row.push_back(std::move(cell));
    }
    cells.push_back(std::move(row));
  }
  return cells;
}

void PrintSeries(const char* title,
                 const std::vector<partix::workload::QuerySpec>& queries,
                 const std::vector<std::vector<Cell>>& cells,
                 double* total_p1, double* total_pmax) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-5s %5s  %12s  %12s  %12s  %12s  %8s\n", "query", "subq",
              "modeled", "wall p=1", "wall p=2", "wall p=4", "speedup");
  *total_p1 = 0.0;
  *total_pmax = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Cell>& row = cells[q];
    const double p1 = row.front().wall_ms;
    const double pmax = row.back().wall_ms;
    std::printf("%-5s %5zu  %9.2f ms  %9.2f ms  %9.2f ms  %9.2f ms  %7.2fx\n",
                queries[q].id.c_str(), row.front().subqueries,
                row.front().response_ms, p1, row[1].wall_ms, pmax,
                pmax > 0.0 ? p1 / pmax : 0.0);
    // The speedup story is about plans that actually fan out; localized
    // single-sub-query plans have nothing to overlap.
    if (row.front().subqueries >= 2) {
      *total_p1 += p1;
      *total_pmax += pmax;
    }
  }
  std::printf(
      "multi-fragment total: p=1 %.2f ms -> p=4 %.2f ms  => measured "
      "speedup %.2fx\n",
      *total_p1, *total_pmax,
      *total_pmax > 0.0 ? *total_p1 / *total_pmax : 0.0);
}

}  // namespace

int main() {
  using namespace partix;

  const double scale = workload::ScaleFromEnv();
  const uint64_t target_bytes =
      static_cast<uint64_t>((uint64_t{4} << 20) * scale);
  const size_t runs = workload::RunsFromEnv(3);
  const double rpc_ms = RpcMillisFromEnv();

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060101;
  gen_options.large_docs = false;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }

  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  xdb::DatabaseOptions node_options;
  node_options.cache_capacity_bytes =
      std::max<uint64_t>(uint64_t{1} << 20, target_bytes / 6);
  middleware::NetworkModel network;

  auto deployment = workload::Deployment::Fragmented(
      *items, *schema, node_options, network);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Parallel speedup - Fig 7(a) workload, %zu fragments on %zu nodes\n"
      "database: %zu documents, %s serialized; host cores: %u; runs: %zu\n",
      kFragments, deployment->get()->node_count(), items->size(),
      HumanBytes(items->ApproxBytes()).c_str(),
      std::thread::hardware_concurrency(), runs);

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());
  bool identical = true;

  auto in_process =
      RunSeries(deployment->get(), queries, runs, &identical);
  if (!in_process.ok()) {
    std::fprintf(stderr, "in-process series failed: %s\n",
                 in_process.status().ToString().c_str());
    return 1;
  }
  double ip_p1 = 0.0, ip_pmax = 0.0;
  PrintSeries("in-process (sub-queries are local CPU)", queries, *in_process,
              &ip_p1, &ip_pmax);

  // Combined cross x intra: the same fan-out with each node additionally
  // splitting its evaluation into 4 morsels on the shared pool. The
  // wall-p=1 column here is "sequential dispatch, parallel engines"; the
  // p=4 column composes both levels. Identity is still checked against
  // the purely sequential answers.
  auto combined =
      RunSeries(deployment->get(), queries, runs, &identical, /*intra=*/4);
  if (!combined.ok()) {
    std::fprintf(stderr, "combined series failed: %s\n",
                 combined.status().ToString().c_str());
    return 1;
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    if ((*combined)[q].front().serialized !=
        (*in_process)[q].front().serialized) {
      identical = false;
      std::fprintf(stderr, "MISMATCH: %s differs with intra-node morsels\n",
                   queries[q].id.c_str());
    }
  }
  double cb_p1 = 0.0, cb_pmax = 0.0;
  PrintSeries("combined cross x intra (4 morsels per node)", queries,
              *combined, &cb_p1, &cb_pmax);

  deployment->get()->cluster().mutable_network().emulated_rpc_sec =
      rpc_ms / 1e3;
  auto remote = RunSeries(deployment->get(), queries, runs, &identical);
  if (!remote.ok()) {
    std::fprintf(stderr, "remote-emulation series failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  double rm_p1 = 0.0, rm_pmax = 0.0;
  char remote_title[96];
  std::snprintf(remote_title, sizeof(remote_title),
                "remote-emulation (%.1f ms RPC round trip per dispatch)",
                rpc_ms);
  PrintSeries(remote_title, queries, *remote, &rm_p1, &rm_pmax);

  // Modeled comparison on the same plans: the paper's slowest-site model
  // predicts sum/max as the parallelism ceiling.
  std::printf("\n== summary ==\n");
  std::printf("in-process measured speedup (multi-fragment total):      "
              "%.2fx\n",
              ip_pmax > 0.0 ? ip_p1 / ip_pmax : 0.0);
  std::printf("combined cross x intra speedup vs sequential engines:     "
              "%.2fx\n",
              cb_pmax > 0.0 ? ip_p1 / cb_pmax : 0.0);
  std::printf("remote-emulation measured speedup (multi-fragment total): "
              "%.2fx\n",
              rm_pmax > 0.0 ? rm_p1 / rm_pmax : 0.0);
  std::printf("composed results byte-identical across parallelism levels: "
              "%s\n",
              identical ? "yes" : "NO");
  if (std::thread::hardware_concurrency() < 4) {
    std::printf(
        "note: %u core(s) visible - CPU-bound sub-queries cannot overlap "
        "here; the in-process series needs a multi-core host, the "
        "remote-emulation series overlaps blocking waits on any host.\n",
        std::thread::hardware_concurrency());
  }

  // --- traced fault-injected execution ------------------------------
  // The perf series above ran with telemetry disabled (the registry's
  // default), so they measure the honest instrumented-but-off cost. Now
  // turn everything on and run one parallelism-4 query on a replicated
  // deployment with a flaky primary: the rendered span tree shows the
  // retry + failover structure, and the span phases must account for
  // (almost) the whole measured wall time.
  telemetry::MetricsRegistry::Global().set_enabled(true);
  telemetry::MetricsRegistry::Global().Reset();
  auto traced_deployment = workload::Deployment::Fragmented(
      *items, *schema, node_options, network, /*replication_factor=*/2);
  if (!traced_deployment.ok()) {
    std::fprintf(stderr, "traced deploy failed: %s\n",
                 traced_deployment.status().ToString().c_str());
    return 1;
  }
  middleware::FaultProfile flaky;
  flaky.fail_first_requests = 2;  // primary of fragment 1 rejects, then heals
  traced_deployment->get()->cluster().SetFaultProfile(1, flaky);

  ExecutionOptions traced_options;
  traced_options.parallelism = 4;
  traced_options.trace = true;
  traced_options.retry.max_attempts = 4;
  traced_options.retry.base_backoff_ms = 0.05;
  traced_options.retry.max_backoff_ms = 1.0;
  traced_options.retry.seed = 20060101;
  const std::string traced_query =
      "count(collection(\"" + items->name() + "\")/Item)";
  auto traced = traced_deployment->get()->service().Execute(traced_query,
                                                            traced_options);
  if (!traced.ok()) {
    std::fprintf(stderr, "traced execution failed: %s\n",
                 traced.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== traced fault-injected execution (parallelism 4) ==\n");
  std::printf("%s\n", telemetry::RenderSpanTree(traced->trace).c_str());
  double covered_ms = 0.0;
  for (const telemetry::TraceSpan& phase : traced->trace.children) {
    covered_ms += phase.duration_ms;
  }
  const double coverage =
      traced->wall_ms > 0.0 ? covered_ms / traced->wall_ms : 1.0;
  std::printf(
      "retries %zu, failovers %zu; phase spans cover %.2f of %.2f ms "
      "wall (%.1f%%)\n",
      traced->retries, traced->failovers, covered_ms, traced->wall_ms,
      coverage * 100.0);
  const bool coverage_ok = coverage >= 0.95;
  if (!coverage_ok) {
    std::fprintf(stderr, "span coverage below 95%% of wall_ms\n");
  }

  // Metrics snapshot of the traced run, in both exposition formats.
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  if (!bench::WriteBenchFile("BENCH_parallel_speedup_metrics.json",
                             snapshot.ToJson()) ||
      !bench::WriteBenchFile("BENCH_parallel_speedup_metrics.prom",
                             snapshot.ToPrometheus())) {
    return 1;
  }
  telemetry::MetricsRegistry::Global().set_enabled(false);
  return identical && coverage_ok ? 0 : 1;
}
