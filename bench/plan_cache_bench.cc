// Hot-loop query latency with the per-node prepared-plan cache on vs off.
//
// The compile-once PR claims repeated queries stop paying parse + static
// analysis at every node: the decomposer parses once, sub-queries ship as
// structural rewrites, and each node's plan cache serves re-executions.
// This bench quantifies the claim. It deploys the Fig. 7(a) horizontal
// workload twice — plan_cache_capacity 128 ("on") and 0 ("off", every
// execution recompiles) — drives every workload query in a hot loop, and
// reports per-query average wall-clock, node-side compile cost, and
// plan-cache traffic for both configurations, plus a byte-identity check
// of every composed result across the two.
//
// Output goes to stdout as a table and to BENCH_plan_cache.json:
//
//   { "bench": "plan_cache", "nodes": N, "fragments": N, "runs": R,
//     "series": [ { "plan_cache": "on",
//                   "queries": [ { "id": "Q1", "wall_ms": 1.2,
//                                  "compile_ms": 0.1, "hits": 8,
//                                  "misses": 2, "ok": true } ],
//                   "total_wall_ms": ..., "total_compile_ms": ... } ],
//     "hot_loop_speedup": 1.35, "identical": true }
//
// Set PARTIX_SCALE to grow the database, PARTIX_RUNS for repetitions.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_out.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::ExecutionOptions;

constexpr size_t kFragments = 4;

struct QueryCell {
  std::string id;
  double wall_ms = 0.0;     // averaged over hot-loop runs
  double compile_ms = 0.0;  // summed over hot-loop runs
  uint64_t hits = 0;        // plan-cache hits, summed
  uint64_t misses = 0;      // plan-cache misses, summed
  bool ok = true;
  std::string serialized;
};

struct Series {
  std::string label;
  std::vector<QueryCell> queries;
};

partix::Result<QueryCell> MeasureQuery(
    partix::workload::Deployment* deployment,
    const partix::workload::QuerySpec& query, size_t runs) {
  ExecutionOptions options;
  options.parallelism = 1;  // sequential: isolates per-node compile cost

  QueryCell cell;
  cell.id = query.id;
  for (size_t run = 0; run <= runs; ++run) {
    auto result = deployment->service().Execute(query.text, options);
    if (!result.ok()) {
      cell.ok = false;
      std::fprintf(stderr, "%s failed: %s\n", query.id.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    if (run == 0) {
      // Warm-up primes store caches AND the plan caches: the hot loop
      // below is the steady state the cache is for.
      cell.serialized = result->serialized;
      continue;
    }
    cell.wall_ms += result->wall_ms;
    cell.compile_ms += result->compile_ms;
    cell.hits += result->plan_cache_hits;
    cell.misses += result->plan_cache_misses;
  }
  cell.wall_ms /= static_cast<double>(runs);
  return cell;
}

void AppendJsonSeries(const Series& series, std::string* out) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "    { \"plan_cache\": \"%s\",\n      \"queries\": [\n",
                series.label.c_str());
  *out += buffer;
  double total_wall = 0.0;
  double total_compile = 0.0;
  for (size_t q = 0; q < series.queries.size(); ++q) {
    const QueryCell& cell = series.queries[q];
    total_wall += cell.wall_ms;
    total_compile += cell.compile_ms;
    std::snprintf(
        buffer, sizeof(buffer),
        "        { \"id\": \"%s\", \"wall_ms\": %.3f, "
        "\"compile_ms\": %.3f, \"hits\": %llu, \"misses\": %llu, "
        "\"ok\": %s }%s\n",
        cell.id.c_str(), cell.wall_ms, cell.compile_ms,
        static_cast<unsigned long long>(cell.hits),
        static_cast<unsigned long long>(cell.misses),
        cell.ok ? "true" : "false",
        q + 1 < series.queries.size() ? "," : "");
    *out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "      ],\n      \"total_wall_ms\": %.3f, "
                "\"total_compile_ms\": %.3f }",
                total_wall, total_compile);
  *out += buffer;
}

double TotalWall(const Series& series) {
  double total = 0.0;
  for (const QueryCell& cell : series.queries) total += cell.wall_ms;
  return total;
}

}  // namespace

int main() {
  using namespace partix;

  const double scale = workload::ScaleFromEnv();
  const uint64_t target_bytes =
      static_cast<uint64_t>((uint64_t{1} << 20) * scale);
  const size_t runs = workload::RunsFromEnv(10);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060101;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  std::printf("Plan-cache bench - %zu fragments, hot loop of %zu run(s)\n"
              "database: %zu documents, %s serialized\n",
              kFragments, runs, items->size(),
              HumanBytes(items->ApproxBytes()).c_str());

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());

  telemetry::MetricsRegistry::Global().set_enabled(true);
  telemetry::MetricsRegistry::Global().Reset();

  const struct {
    const char* label;
    size_t capacity;
  } configs[] = {{"on", 128}, {"off", 0}};

  std::vector<Series> series;
  bool identical = true;
  for (const auto& config : configs) {
    xdb::DatabaseOptions node_options;
    node_options.plan_cache_capacity = config.capacity;
    auto deployment = workload::Deployment::Fragmented(
        *items, *schema, node_options, middleware::NetworkModel());
    if (!deployment.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   deployment.status().ToString().c_str());
      return 1;
    }
    Series current;
    current.label = config.label;
    for (const auto& query : queries) {
      auto cell = MeasureQuery(deployment->get(), query, runs);
      if (!cell.ok()) {
        std::fprintf(stderr, "measurement failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      if (!series.empty()) {
        const QueryCell& baseline =
            series.front().queries[current.queries.size()];
        if (cell->ok && cell->serialized != baseline.serialized) {
          identical = false;
          std::fprintf(stderr, "MISMATCH: %s differs with plan cache %s\n",
                       query.id.c_str(), config.label);
        }
      }
      current.queries.push_back(std::move(*cell));
    }
    series.push_back(std::move(current));
  }

  std::printf("\n%-5s", "query");
  for (const Series& s : series)
    std::printf("  %8s=%-3s  %9s  %5s/%-5s", "wall@cache", s.label.c_str(),
                "compile", "hit", "miss");
  std::printf("\n");
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("%-5s", queries[q].id.c_str());
    for (const Series& s : series) {
      const QueryCell& cell = s.queries[q];
      std::printf("  %10.3f ms  %7.3f ms  %5llu/%-5llu", cell.wall_ms,
                  cell.compile_ms,
                  static_cast<unsigned long long>(cell.hits),
                  static_cast<unsigned long long>(cell.misses));
    }
    std::printf("\n");
  }
  const double speedup =
      TotalWall(series[0]) > 0.0 ? TotalWall(series[1]) / TotalWall(series[0])
                                 : 0.0;
  std::printf("hot-loop speedup (cache off / cache on): %.3fx\n", speedup);
  std::printf("results byte-identical across configurations: %s\n",
              identical ? "yes" : "NO");

  std::string json;
  json += "{\n  \"bench\": \"plan_cache\",\n";
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "  \"nodes\": %zu,\n  \"fragments\": %zu,\n"
                "  \"runs\": %zu,\n  \"series\": [\n",
                kFragments, kFragments, runs);
  json += buffer;
  for (size_t s = 0; s < series.size(); ++s) {
    AppendJsonSeries(series[s], &json);
    json += s + 1 < series.size() ? ",\n" : "\n";
  }
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"hot_loop_speedup\": %.3f,\n"
                "  \"identical\": %s\n}\n",
                speedup, identical ? "true" : "false");
  json += buffer;

  std::printf("\n");
  if (!bench::WriteBenchFile("BENCH_plan_cache.json", json)) return 1;

  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  if (!bench::WriteBenchFile("BENCH_plan_cache_metrics.json",
                             snapshot.ToJson()) ||
      !bench::WriteBenchFile("BENCH_plan_cache_metrics.prom",
                             snapshot.ToPrometheus())) {
    return 1;
  }
  const char* const headline[] = {
      "partix_plan_cache_hits_total", "partix_plan_cache_misses_total",
      "partix_plan_cache_evictions_total", "partix_driver_prepares_total",
      "partix_driver_executes_total", "partix_queries_total",
  };
  std::printf("\nkey counters:\n");
  for (const char* name : headline) {
    auto it = snapshot.counters.find(name);
    std::printf("  %-40s %llu\n", name,
                it == snapshot.counters.end()
                    ? 0ull
                    : static_cast<unsigned long long>(it->second));
  }
  return identical ? 0 : 1;
}
