// Multi-query throughput under the admission-controlled scheduler.
//
// The scheduler PR claims concurrent clients sharing one QueryService
// scale: with per-query work dominated by the emulated RPC round trips,
// 16 closed-loop clients against 16 execution slots should clear at
// least 4x the QPS of the same 16 clients serialized behind
// max_concurrent_queries = 1 — with every composed result byte-identical
// to the sequential baseline, and the admission counters conserving
// (submitted == admitted + rejected + drained, admitted == completed).
//
// Series (closed loop, each client cycles the Fig. 7(a) workload):
//   clients=1/mc=1, clients=4/mc=4, clients=16/mc=16  — scaling curve
//   clients=16/mc=1                                   — serialized floor
// plus an overload phase (2 slots, 2 queue seats, 5 ms queue timeout,
// 12 clients) that exercises the kResourceExhausted backpressure verdict
// and checks the conservation invariants afterwards.
//
// Output goes to stdout as a table and to BENCH_concurrent_qps.json:
//
//   { "bench": "concurrent_qps", "emulated_rpc_ms": 2.0, "nodes": N,
//     "replication_factor": 2, "rounds": R,
//     "series": [ { "clients": 16, "max_concurrent": 16, "queries": 384,
//                   "qps": 1234.5, "p50_ms": 3.1, "p99_ms": 9.8,
//                   "identical": true } ],
//     "speedup_16_clients_vs_serialized": 6.3,
//     "overload": { "submitted": 36, "admitted": 20, "rejected": 16,
//                   "drained": 0, "completed": 20, "conserved": true },
//     "identical": true }
//
// PARTIX_SCALE grows the database, PARTIX_RUNS overrides the per-client
// rounds, PARTIX_SMOKE=1 shrinks everything for CI (2 clients max, no
// speedup gate).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_out.h"
#include "common/clock.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "partix/scheduler.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::ClientContext;
using partix::middleware::ExecutionOptions;
using partix::middleware::Scheduler;
using partix::middleware::SchedulerOptions;
using partix::middleware::SchedulerStats;
using partix::StatusCode;

constexpr size_t kFragments = 4;
constexpr size_t kReplicationFactor = 2;
// Long enough that the serialized floor is wire-dominated even on a
// single-core host — the concurrency win being measured is overlapping
// these waits, not parallelizing engine CPU.
constexpr double kEmulatedRpcMs = 5.0;

struct SeriesResult {
  size_t clients = 0;
  size_t max_concurrent = 0;
  size_t queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool identical = true;
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  return (*samples)[std::min(index, samples->size() - 1)];
}

/// Closed loop: `clients` threads each run `rounds` cycles of the
/// workload through one scheduler limited to `max_concurrent` slots.
SeriesResult RunSeries(partix::workload::Deployment* deployment,
                       const std::vector<partix::workload::QuerySpec>& queries,
                       const std::vector<std::string>& baseline,
                       size_t clients, size_t max_concurrent, size_t rounds) {
  SchedulerOptions options;
  options.max_concurrent_queries = max_concurrent;
  options.queue_capacity = clients * queries.size() * rounds + 1;
  // Workers spend most of their time blocked in the 2 ms emulated RPC,
  // so the pool is sized to the offered fan-out (clients x per-query
  // parallelism), not to the core count: overlapping the sleeps is the
  // whole point of the scheduler's shared pool.
  options.pool_threads = clients * 2 + 2;
  Scheduler scheduler(&deployment->service(), options);

  SeriesResult series;
  series.clients = clients;
  series.max_concurrent = max_concurrent;

  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};

  partix::Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientContext client;
      client.client_id = "client-" + std::to_string(c);
      ExecutionOptions exec;
      exec.parallelism = 2;  // modest intra-query fan-out per slot
      std::vector<double> local;
      local.reserve(rounds * queries.size());
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          partix::Stopwatch query_watch;
          auto result =
              scheduler.Execute(queries[q].text, exec, client);
          if (!result.ok()) {
            ++failures;
            std::fprintf(stderr, "%s failed: %s\n", queries[q].id.c_str(),
                         result.status().ToString().c_str());
            continue;
          }
          local.push_back(query_watch.ElapsedMillis());
          if (result->serialized != baseline[q]) ++mismatches;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_sec = wall.ElapsedMillis() / 1e3;
  scheduler.Drain();

  series.queries = latencies.size();
  series.qps = wall_sec > 0.0
                   ? static_cast<double>(series.queries) / wall_sec
                   : 0.0;
  series.p50_ms = Percentile(&latencies, 0.50);
  series.p99_ms = Percentile(&latencies, 0.99);
  series.identical = mismatches.load() == 0 && failures.load() == 0;

  const SchedulerStats stats = scheduler.stats();
  if (stats.submitted != stats.admitted + stats.rejected + stats.drained ||
      stats.admitted != stats.completed || stats.rejected != 0) {
    std::fprintf(stderr,
                 "CONSERVATION VIOLATION: submitted=%llu admitted=%llu "
                 "rejected=%llu drained=%llu completed=%llu\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.admitted),
                 static_cast<unsigned long long>(stats.rejected),
                 static_cast<unsigned long long>(stats.drained),
                 static_cast<unsigned long long>(stats.completed));
    series.identical = false;
  }
  return series;
}

/// Backpressure phase: more clients than slots + queue seats, with a
/// short queue timeout, so a burst MUST draw kResourceExhausted
/// verdicts. Returns the final stats for the conservation report.
SchedulerStats RunOverloadPhase(partix::workload::Deployment* deployment,
                                const std::vector<std::string>& queries,
                                size_t clients, size_t per_client,
                                bool* conserved, size_t* rejected_runs) {
  SchedulerOptions options;
  options.max_concurrent_queries = 2;
  options.queue_capacity = 2;
  options.queue_timeout_ms = 5.0;
  Scheduler scheduler(&deployment->service(), options);

  std::atomic<size_t> bounced{0};
  std::atomic<size_t> unexpected{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ExecutionOptions exec;
      exec.parallelism = 2;
      for (size_t i = 0; i < per_client; ++i) {
        auto result =
            scheduler.Execute(queries[(c + i) % queries.size()], exec);
        if (result.ok()) continue;
        if (result.status().code() == StatusCode::kResourceExhausted) {
          ++bounced;
        } else {
          ++unexpected;
          std::fprintf(stderr, "unexpected verdict: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  scheduler.Drain();

  const SchedulerStats stats = scheduler.stats();
  *rejected_runs = bounced.load();
  *conserved =
      unexpected.load() == 0 &&
      stats.submitted == stats.admitted + stats.rejected + stats.drained &&
      stats.admitted == stats.completed &&
      stats.rejected == static_cast<uint64_t>(bounced.load());
  return stats;
}

}  // namespace

int main() {
  using namespace partix;

  const bool smoke = [] {
    const char* env = std::getenv("PARTIX_SMOKE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  const double scale = workload::ScaleFromEnv();
  const uint64_t target_bytes = static_cast<uint64_t>(
      (uint64_t{1} << (smoke ? 17 : 20)) * scale);
  const size_t rounds = workload::RunsFromEnv(smoke ? 2 : 8);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060101;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  middleware::NetworkModel network;
  network.emulated_rpc_sec = kEmulatedRpcMs / 1e3;
  auto deployment = workload::Deployment::Fragmented(
      *items, *schema, xdb::DatabaseOptions(), network, kReplicationFactor);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());

  std::printf(
      "Concurrent-QPS bench - %zu fragments rf=%zu, emulated rpc %.1f ms\n"
      "database: %zu documents, %s serialized; rounds/client: %zu%s\n",
      kFragments, kReplicationFactor, kEmulatedRpcMs, items->size(),
      HumanBytes(items->ApproxBytes()).c_str(), rounds,
      smoke ? " (smoke)" : "");

  // Sequential baseline: the bytes every concurrent execution must match.
  std::vector<std::string> baseline;
  std::vector<std::string> query_texts;
  for (const auto& query : queries) {
    auto result = deployment->get()->service().Execute(query.text);
    if (!result.ok()) {
      std::fprintf(stderr, "baseline %s failed: %s\n", query.id.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    baseline.push_back(result->serialized);
    query_texts.push_back(query.text);
  }

  struct Config {
    size_t clients;
    size_t max_concurrent;
  };
  // Scaling curve, then the serialized floor the headline compares
  // against. Smoke mode keeps the same shape at CI-friendly size.
  const std::vector<Config> configs =
      smoke ? std::vector<Config>{{1, 1}, {2, 2}, {2, 1}}
            : std::vector<Config>{{1, 1}, {4, 4}, {16, 16}, {16, 1}};

  std::vector<SeriesResult> series;
  bool identical = true;
  std::printf("\n%8s  %4s  %8s  %10s  %9s  %9s\n", "clients", "mc",
              "queries", "qps", "p50", "p99");
  for (const Config& config : configs) {
    SeriesResult s =
        RunSeries(deployment->get(), queries, baseline, config.clients,
                  config.max_concurrent, rounds);
    identical = identical && s.identical;
    std::printf("%8zu  %4zu  %8zu  %10.1f  %7.2f ms  %7.2f ms\n", s.clients,
                s.max_concurrent, s.queries, s.qps, s.p50_ms, s.p99_ms);
    series.push_back(s);
  }

  // Scaling headline: many clients with slots vs the same clients
  // serialized behind one slot.
  const SeriesResult& scaled = series[series.size() - 2];
  const SeriesResult& serialized = series.back();
  const double speedup =
      serialized.qps > 0.0 ? scaled.qps / serialized.qps : 0.0;
  std::printf(
      "\nQPS %zu clients/mc=%zu vs mc=1: %.2fx (%.1f vs %.1f)\n",
      scaled.clients, scaled.max_concurrent, speedup, scaled.qps,
      serialized.qps);

  bool overload_conserved = false;
  size_t overload_rejected = 0;
  const SchedulerStats overload = RunOverloadPhase(
      deployment->get(), query_texts, smoke ? 4 : 12, smoke ? 2 : 3,
      &overload_conserved, &overload_rejected);
  std::printf(
      "overload phase: submitted=%llu admitted=%llu rejected=%llu "
      "drained=%llu completed=%llu conserved=%s\n",
      static_cast<unsigned long long>(overload.submitted),
      static_cast<unsigned long long>(overload.admitted),
      static_cast<unsigned long long>(overload.rejected),
      static_cast<unsigned long long>(overload.drained),
      static_cast<unsigned long long>(overload.completed),
      overload_conserved ? "yes" : "NO");
  std::printf("results byte-identical across all series: %s\n",
              identical ? "yes" : "NO");

  std::string json;
  char buffer[256];
  json += "{\n  \"bench\": \"concurrent_qps\",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"emulated_rpc_ms\": %.1f,\n  \"nodes\": %zu,\n"
                "  \"replication_factor\": %zu,\n  \"rounds\": %zu,\n"
                "  \"smoke\": %s,\n  \"series\": [\n",
                kEmulatedRpcMs, deployment->get()->node_count(),
                kReplicationFactor, rounds, smoke ? "true" : "false");
  json += buffer;
  for (size_t s = 0; s < series.size(); ++s) {
    const SeriesResult& cell = series[s];
    std::snprintf(buffer, sizeof(buffer),
                  "    { \"clients\": %zu, \"max_concurrent\": %zu, "
                  "\"queries\": %zu, \"qps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"identical\": %s }%s\n",
                  cell.clients, cell.max_concurrent, cell.queries, cell.qps,
                  cell.p50_ms, cell.p99_ms,
                  cell.identical ? "true" : "false",
                  s + 1 < series.size() ? "," : "");
    json += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"speedup_%zu_clients_vs_serialized\": %.3f,\n",
                scaled.clients, speedup);
  json += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"overload\": { \"submitted\": %llu, \"admitted\": %llu, "
      "\"rejected\": %llu, \"drained\": %llu, \"completed\": %llu, "
      "\"conserved\": %s },\n",
      static_cast<unsigned long long>(overload.submitted),
      static_cast<unsigned long long>(overload.admitted),
      static_cast<unsigned long long>(overload.rejected),
      static_cast<unsigned long long>(overload.drained),
      static_cast<unsigned long long>(overload.completed),
      overload_conserved ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof(buffer), "  \"identical\": %s\n}\n",
                identical ? "true" : "false");
  json += buffer;

  std::printf("\n");
  if (!bench::WriteBenchFile("BENCH_concurrent_qps.json", json)) return 1;

  if (!identical || !overload_conserved) return 1;
  if (!smoke && speedup < 4.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 4x QPS with %zu slots vs serialized, "
                 "got %.2fx\n",
                 scaled.max_concurrent, speedup);
    return 1;
  }
  return 0;
}
