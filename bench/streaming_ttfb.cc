// Time-to-first-byte under the streaming batched result pipeline.
//
// The materialized path holds the whole answer back until the slowest
// node has finished and composition has run; the streaming pipeline
// (docs/streaming-runtime.md) commits the first result block into the
// answer as soon as it crosses the channel. This bench runs the
// multi-fragment union workload at parallelism 4 in both modes and
// reports, per mode:
//
//   - TTFB p50/p99 (DistributedResult::ttfb_ms) and mean wall time
//   - peak governed result bytes on the coordinator (MemoryGovernor
//     peak, reset per execution)
//
// Three gates, all modes:
//
//   - identity: streaming and materialized answers are byte-identical
//     for every query.
//   - TTFB: streaming TTFB p50 is strictly below the materialized mean
//     total wall time on the union workload — first bytes flow before
//     the materialized answer would exist at all.
//   - accounting: each mode's peak governed bytes stay below 80% of the
//     double-charge baseline (2x the answer: the pre-fix compose path
//     charged the partials and the composed output without releasing
//     the partials in between).
//
// Emits BENCH_streaming.json to bench-out/. PARTIX_SMOKE=1 shrinks the
// database for CI; PARTIX_SCALE / PARTIX_RUNS scale the full mode.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_out.h"
#include "gen/virtual_store.h"
#include "memory/governor.h"
#include "partix/query_service.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::DistributedResult;
using partix::middleware::ExecutionOptions;

constexpr size_t kFragments = 4;
constexpr size_t kParallelism = 4;
constexpr size_t kBlockItems = 16;

/// One (query, mode) series: per-run TTFB samples, averaged wall time,
/// the worst per-execution governed peak, and the answer.
struct Series {
  std::vector<double> ttfb_ms;
  double wall_ms = 0.0;
  size_t peak_bytes = 0;
  uint64_t stream_blocks = 0;
  std::string serialized;
};

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

partix::Result<Series> MeasureSeries(
    partix::workload::Deployment* deployment,
    partix::memory::MemoryGovernor* governor,
    const partix::workload::QuerySpec& query, bool streaming, size_t runs) {
  Series series;
  ExecutionOptions options;
  options.parallelism = kParallelism;
  options.streaming = streaming;
  options.stream_block_items = kBlockItems;
  for (size_t run = 0; run <= runs; ++run) {
    governor->ResetPeakCharged();
    PARTIX_ASSIGN_OR_RETURN(
        DistributedResult result,
        deployment->service().Execute(query.text, options));
    if (run == 0) {
      series.serialized = std::move(result.serialized);
      continue;  // warm-up: primes node caches, not counted
    }
    series.ttfb_ms.push_back(result.ttfb_ms);
    series.wall_ms += result.wall_ms;
    series.peak_bytes =
        std::max(series.peak_bytes, governor->peak_charged_bytes());
    series.stream_blocks += result.stream_blocks;
  }
  series.wall_ms /= static_cast<double>(runs);
  return series;
}

}  // namespace

int main() {
  using namespace partix;

  const bool smoke = std::getenv("PARTIX_SMOKE") != nullptr;
  const double scale = smoke ? 1.0 : workload::ScaleFromEnv();
  const uint64_t target_bytes = smoke
                                    ? (uint64_t{512} << 10)
                                    : static_cast<uint64_t>(
                                          (uint64_t{8} << 20) * scale);
  const size_t runs = smoke ? 3 : workload::RunsFromEnv(5);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060103;
  gen_options.large_docs = false;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  xdb::DatabaseOptions node_options;
  node_options.cache_capacity_bytes = uint64_t{256} << 20;
  auto deployment = workload::Deployment::Fragmented(
      *items, *schema, node_options, middleware::NetworkModel());
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  memory::MemoryGovernor governor(uint64_t{256} << 20);
  deployment->get()->service().set_memory_governor(&governor);

  // Union workload: every query fans out to all four fragments and
  // composes by union, so the materialized path cannot answer before the
  // slowest node finishes — exactly the case streaming attacks.
  const std::string c = "collection(\"" + items->name() + "\")";
  const std::vector<workload::QuerySpec> queries = {
      {"QU1", "full-scan projection over every fragment",
       "for $i in " + c + "/Item return $i/Name"},
      {"QU2", "full-item fetch over every fragment",
       "for $i in " + c + "/Item return $i"},
  };

  std::printf(
      "Streaming TTFB - union workload, %zu fragments, parallelism %zu, "
      "%zu items/block\ndatabase: %zu documents; host cores: %u; runs: "
      "%zu%s\n\n",
      kFragments, kParallelism, kBlockItems, items->size(),
      std::thread::hardware_concurrency(), runs, smoke ? " (smoke)" : "");

  bool identical = true;
  bool ttfb_gate_ok = true;
  bool peak_gate_ok = true;
  std::string json = "{\n  \"queries\": [\n";
  for (size_t q = 0; q < queries.size(); ++q) {
    auto streamed = MeasureSeries(deployment->get(), &governor, queries[q],
                                  /*streaming=*/true, runs);
    auto materialized = MeasureSeries(deployment->get(), &governor,
                                      queries[q], /*streaming=*/false, runs);
    if (!streamed.ok() || !materialized.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", queries[q].id.c_str(),
                   (!streamed.ok() ? streamed.status() : materialized.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (streamed->serialized != materialized->serialized) {
      identical = false;
      std::fprintf(stderr, "MISMATCH: %s streaming answer differs\n",
                   queries[q].id.c_str());
    }

    const double ttfb_p50 = Percentile(streamed->ttfb_ms, 0.50);
    const double ttfb_p99 = Percentile(streamed->ttfb_ms, 0.99);
    const double mat_p50 = Percentile(materialized->ttfb_ms, 0.50);
    const double mat_p99 = Percentile(materialized->ttfb_ms, 0.99);
    const size_t answer_bytes = streamed->serialized.size();
    // The double-charge baseline: partials charged in full, then the
    // composed answer charged on top, nothing released in between.
    const size_t double_charge = 2 * answer_bytes;
    if (ttfb_p50 >= materialized->wall_ms) ttfb_gate_ok = false;
    if (double_charge > 0 &&
        (streamed->peak_bytes * 10 >= double_charge * 8 ||
         materialized->peak_bytes * 10 >= double_charge * 8)) {
      peak_gate_ok = false;
    }

    std::printf("%s: %s\n", queries[q].id.c_str(),
                queries[q].description.c_str());
    std::printf(
        "  streaming    ttfb p50 %8.3f ms  p99 %8.3f ms  wall %8.3f ms  "
        "peak %zu B  (%llu blocks)\n",
        ttfb_p50, ttfb_p99, streamed->wall_ms, streamed->peak_bytes,
        static_cast<unsigned long long>(streamed->stream_blocks));
    std::printf(
        "  materialized ttfb p50 %8.3f ms  p99 %8.3f ms  wall %8.3f ms  "
        "peak %zu B\n",
        mat_p50, mat_p99, materialized->wall_ms, materialized->peak_bytes);
    std::printf("  answer %zu B; double-charge baseline %zu B\n",
                answer_bytes, double_charge);

    json += "    {\"id\": \"" + queries[q].id + "\"";
    json += ", \"answer_bytes\": " + std::to_string(answer_bytes);
    json += ", \"streaming\": {\"ttfb_p50_ms\": " + std::to_string(ttfb_p50) +
            ", \"ttfb_p99_ms\": " + std::to_string(ttfb_p99) +
            ", \"wall_ms\": " + std::to_string(streamed->wall_ms) +
            ", \"peak_bytes\": " + std::to_string(streamed->peak_bytes) +
            ", \"blocks\": " + std::to_string(streamed->stream_blocks) + "}";
    json += ", \"materialized\": {\"ttfb_p50_ms\": " + std::to_string(mat_p50) +
            ", \"ttfb_p99_ms\": " + std::to_string(mat_p99) +
            ", \"wall_ms\": " + std::to_string(materialized->wall_ms) +
            ", \"peak_bytes\": " + std::to_string(materialized->peak_bytes) +
            "}";
    json += ", \"double_charge_baseline_bytes\": " +
            std::to_string(double_charge) + "}";
    json += q + 1 < queries.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"parallelism\": " + std::to_string(kParallelism) +
          ",\n  \"block_items\": " + std::to_string(kBlockItems) +
          ",\n  \"identical\": " + (identical ? "true" : "false") +
          ",\n  \"ttfb_gate\": " + (ttfb_gate_ok ? "true" : "false") +
          ",\n  \"peak_gate\": " + (peak_gate_ok ? "true" : "false") +
          ",\n  \"smoke\": " + (smoke ? "true" : "false") + "\n}\n";
  if (!bench::WriteBenchFile("BENCH_streaming.json", json)) return 1;

  std::printf("\nresults byte-identical streaming vs materialized: %s\n",
              identical ? "yes" : "NO");
  std::printf("streaming TTFB p50 < materialized wall on every query: %s\n",
              ttfb_gate_ok ? "yes" : "NO");
  std::printf("peak governed bytes < 80%% of double-charge baseline: %s\n",
              peak_gate_ok ? "yes" : "NO");

  if (!identical) return 1;
  if (!ttfb_gate_ok) {
    std::fprintf(stderr, "TTFB gate FAILED\n");
    return 1;
  }
  if (!peak_gate_ok) {
    std::fprintf(stderr, "peak-bytes gate FAILED\n");
    return 1;
  }
  return 0;
}
