#ifndef PARTIX_BENCH_BENCH_OUT_H_
#define PARTIX_BENCH_BENCH_OUT_H_

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <string>

namespace partix::bench {

/// Benches write their BENCH_*.json/.prom artifacts under an untracked
/// ./bench-out/ directory (gitignored) instead of littering the working
/// directory. Returns "bench-out/<filename>", creating the directory on
/// first use; falls back to the bare filename when the directory cannot
/// be created (read-only CWD).
inline std::string BenchOutPath(const std::string& filename) {
  static const bool created =
      mkdir("bench-out", 0775) == 0 || errno == EEXIST;
  if (!created) return filename;
  return "bench-out/" + filename;
}

/// Writes `body` to BenchOutPath(filename) and reports the path written.
/// Returns false (after printing to stderr) when the file cannot be
/// opened.
inline bool WriteBenchFile(const std::string& filename,
                           const std::string& body) {
  const std::string path = BenchOutPath(filename);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace partix::bench

#endif  // PARTIX_BENCH_BENCH_OUT_H_
