#ifndef PARTIX_BENCH_HORIZONTAL_COMMON_H_
#define PARTIX_BENCH_HORIZONTAL_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace partix::bench {

/// Shared driver for the Fig. 7(a)/7(b) horizontal experiments: generates
/// the Citems database at `target_bytes`, deploys it centralized and with
/// 2/4/8 fragments, runs the 8-query horizontal workload on each
/// deployment, and prints the response-time table.
inline int RunHorizontalExperiment(const std::string& title,
                                   gen::ItemsGenOptions gen_options,
                                   uint64_t target_bytes) {
  const double scale = workload::ScaleFromEnv();
  target_bytes = static_cast<uint64_t>(target_bytes * scale);

  auto items =
      gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\ndatabase: %zu documents, %s serialized\n", title.c_str(),
              items->size(), HumanBytes(items->ApproxBytes()).c_str());

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());
  workload::MeasureOptions measure;
  measure.runs = workload::RunsFromEnv(3);

  xdb::DatabaseOptions node_options;
  // The paper's regime: the centralized database does not fit the node's
  // working memory, while individual fragments do — the source of its
  // superlinear speedups. Scale the parse cache with the database.
  node_options.cache_capacity_bytes = std::max<uint64_t>(
      uint64_t{1} << 20, target_bytes / 6);
  middleware::NetworkModel network;

  std::vector<std::string> series_names = {"centralized"};
  std::vector<std::vector<workload::Measurement>> series;

  auto central =
      workload::Deployment::Centralized(*items, node_options, network);
  if (!central.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 central.status().ToString().c_str());
    return 1;
  }
  std::vector<workload::Measurement> central_row;
  for (const workload::QuerySpec& q : queries) {
    auto m = workload::Measure(central->get(), q, measure);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.id.c_str(),
                   m.status().ToString().c_str());
      return 1;
    }
    central_row.push_back(*m);
  }
  series.push_back(std::move(central_row));

  for (size_t fragments : {size_t{2}, size_t{4}, size_t{8}}) {
    auto schema = workload::SectionHorizontalSchema(
        items->name(), gen_options.sections, fragments);
    if (!schema.ok()) {
      std::fprintf(stderr, "schema failed: %s\n",
                   schema.status().ToString().c_str());
      return 1;
    }
    auto deployment = workload::Deployment::Fragmented(
        *items, *schema, node_options, network);
    if (!deployment.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   deployment.status().ToString().c_str());
      return 1;
    }
    std::vector<workload::Measurement> row;
    for (const workload::QuerySpec& q : queries) {
      auto m = workload::Measure(deployment->get(), q, measure);
      if (!m.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", q.id.c_str(),
                     m.status().ToString().c_str());
        return 1;
      }
      row.push_back(*m);
    }
    series_names.push_back(std::to_string(fragments) + " fragments");
    series.push_back(std::move(row));
  }

  workload::PrintTable(title, series_names, series, queries);
  std::printf("\nqueries:\n");
  for (const workload::QuerySpec& q : queries) {
    std::printf("  %-4s %s\n", q.id.c_str(), q.description.c_str());
  }
  return 0;
}

}  // namespace partix::bench

#endif  // PARTIX_BENCH_HORIZONTAL_COMMON_H_
