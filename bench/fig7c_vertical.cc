// Reproduces paper Fig. 7(c): query response times on database XBenchVer
// (article documents), vertically fragmented into
//   F1 := π(/article/prolog), F2 := π(/article/body),
//   F3 := π(/article/epilog),
// versus the centralized database.
//
// Shapes to reproduce: queries confined to a single fragment (Q1, Q2, Q3,
// Q5, Q6, Q10) benefit — they scan one projection instead of whole
// articles — while multi-fragment queries (Q4, Q7, Q8, Q9) pay the
// middleware join and can lose to centralized execution.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "gen/xbench.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

using namespace partix;  // bench binary: brevity over style here

int main() {
  const double scale = workload::ScaleFromEnv();
  gen::XBenchGenOptions options;
  options.seed = 20060103;
  options.target_doc_bytes =
      static_cast<uint64_t>(192.0 * 1024 * scale);  // paper: 5-15MB docs
  auto articles = gen::GenerateArticlesBySize(
      options, static_cast<uint64_t>((uint64_t{8} << 20) * scale), nullptr);
  if (!articles.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 articles.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Fig 7(c) - XBenchVer, vertical fragmentation "
      "(prolog/body/epilog)\ndatabase: %zu articles, %s\n",
      articles->size(), HumanBytes(articles->ApproxBytes()).c_str());

  const std::vector<workload::QuerySpec> queries =
      workload::VerticalQueries(articles->name());
  workload::MeasureOptions measure;
  measure.runs = workload::RunsFromEnv(3);

  xdb::DatabaseOptions node_options;
  // The paper's memory regime: the centralized database exceeds the parse
  // cache; fragments fit (see EXPERIMENTS.md).
  node_options.cache_capacity_bytes =
      std::max<uint64_t>(uint64_t{1} << 20, static_cast<uint64_t>((uint64_t{8} << 20) * scale) / 3);
  middleware::NetworkModel network;

  auto central =
      workload::Deployment::Centralized(*articles, node_options, network);
  auto schema = workload::ArticleVerticalSchema(articles->name());
  if (!central.ok() || !schema.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  auto fragmented = workload::Deployment::Fragmented(
      *articles, *schema, node_options, network);
  if (!fragmented.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 fragmented.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<workload::Measurement>> series(2);
  for (const workload::QuerySpec& q : queries) {
    auto mc = workload::Measure(central->get(), q, measure);
    auto mf = workload::Measure(fragmented->get(), q, measure);
    if (!mc.ok() || !mf.ok()) {
      std::fprintf(stderr, "%s failed: %s %s\n", q.id.c_str(),
                   mc.status().ToString().c_str(),
                   mf.status().ToString().c_str());
      return 1;
    }
    series[0].push_back(*mc);
    series[1].push_back(*mf);
  }
  workload::PrintTable(
      "Fig 7(c) - vertical fragmentation (prolog/body/epilog)",
      {"centralized", "3 vertical frags"}, series, queries);
  std::printf("\nper-query routing (fragmented deployment):\n");
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("  %-4s sub-queries=%zu%s\n", queries[q].id.c_str(),
                series[1][q].subqueries,
                series[1][q].composition_ms > series[1][q].slowest_node_ms
                    ? "  (join-dominated)"
                    : "");
  }
  std::printf("\nqueries:\n");
  for (const workload::QuerySpec& q : queries) {
    std::printf("  %-4s %s\n", q.id.c_str(), q.description.c_str());
  }
  return 0;
}
