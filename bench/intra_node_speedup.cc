// Intra-node morsel parallelism on localized queries.
//
// Cross-node parallelism (bench/parallel_speedup) cannot help a query the
// decomposer localizes to a single fragment: the plan has one sub-query,
// so there is nothing to overlap between nodes. Intra-node morsels attack
// exactly that case — the one node splits its collection-scale iteration
// into chunks on the shared worker pool (docs/intra-node-parallelism.md)
// and stitches the results back in document order.
//
// This bench runs Q2/Q7-style section-localized queries (each prunes to
// one fragment of the Fig. 7(a) horizontal design) at morsel parallelism
// 1 / 2 / 4 / 8 and reports wall-clock per level. Two gates:
//
//   - identity (always): the serialized answer at every morsel level is
//     byte-identical to the sequential one — a mismatch fails the bench
//     regardless of mode or host.
//   - speedup (full mode on >= 4-core hosts only): morsels=4 must run the
//     localized set at least 2x faster than morsels=1.
//
// Emits BENCH_intra_node.json to bench-out/. PARTIX_SMOKE=1 shrinks the
// database and skips the speedup gate (identity still gates);
// PARTIX_SCALE / PARTIX_RUNS scale the full mode.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_out.h"
#include "gen/virtual_store.h"
#include "partix/query_service.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::DistributedResult;
using partix::middleware::ExecutionOptions;

constexpr size_t kFragments = 4;
const size_t kMorsels[] = {1, 2, 4, 8};

struct Cell {
  double wall_ms = 0.0;
  std::string serialized;
  size_t subqueries = 0;
};

partix::Result<Cell> MeasureCell(partix::workload::Deployment* deployment,
                                 const partix::workload::QuerySpec& query,
                                 size_t morsels, size_t runs) {
  Cell cell;
  ExecutionOptions options;
  options.parallelism = 1;  // localized plans have one sub-query anyway
  options.intra_node_parallelism = morsels;
  for (size_t run = 0; run <= runs; ++run) {
    PARTIX_ASSIGN_OR_RETURN(
        DistributedResult result,
        deployment->service().Execute(query.text, options));
    if (run == 0) {
      cell.serialized = std::move(result.serialized);
      cell.subqueries = result.subqueries.size();
      continue;  // warm-up: primes node parse caches, not counted
    }
    cell.wall_ms += result.wall_ms;
  }
  cell.wall_ms /= static_cast<double>(runs);
  return cell;
}

}  // namespace

int main() {
  using namespace partix;

  const bool smoke = std::getenv("PARTIX_SMOKE") != nullptr;
  const double scale = smoke ? 1.0 : workload::ScaleFromEnv();
  const uint64_t target_bytes = smoke
                                    ? (uint64_t{256} << 10)
                                    : static_cast<uint64_t>(
                                          (uint64_t{8} << 20) * scale);
  const size_t runs = smoke ? 2 : workload::RunsFromEnv(3);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060102;
  gen_options.large_docs = false;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  xdb::DatabaseOptions node_options;
  // Keep every parsed document cached: the bench measures evaluation, and
  // warm caches are the paper's measurement protocol anyway.
  node_options.cache_capacity_bytes = uint64_t{256} << 20;
  auto deployment = workload::Deployment::Fragmented(
      *items, *schema, node_options, middleware::NetworkModel());
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }

  // Section-localized queries: each prunes to exactly one fragment, so
  // the executor dispatches one sub-query and every measured gain comes
  // from morsels inside that node. Q2/Q7 are the workload's localized
  // pair; the contains() variant adds a CPU-heavy per-item predicate.
  const std::string c = "collection(\"" + items->name() + "\")";
  const std::vector<workload::QuerySpec> queries = {
      {"Q2", "selection matching the fragmentation predicate",
       "for $i in " + c + "/Item where $i/Section = \"CD\" "
       "return $i/Name"},
      {"Q7", "count aggregation with a section predicate",
       "count(" + c + "/Item[Section = \"DVD\"])"},
      {"Q2t", "localized text search (CPU-heavy per item)",
       "for $i in " + c + "/Item "
       "where $i/Section = \"BOOK\" and contains($i/Description, \"good\") "
       "return $i/Code"},
  };

  std::printf(
      "Intra-node morsel speedup - localized queries, %zu fragments\n"
      "database: %zu documents; host cores: %u; runs: %zu%s\n\n",
      kFragments, items->size(), std::thread::hardware_concurrency(), runs,
      smoke ? " (smoke)" : "");

  bool identical = true;
  std::vector<std::vector<Cell>> cells;  // [query][morsel-index]
  for (const auto& query : queries) {
    std::vector<Cell> row;
    for (size_t m : kMorsels) {
      auto cell = MeasureCell(deployment->get(), query, m, runs);
      if (!cell.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", query.id.c_str(),
                     cell.status().ToString().c_str());
        return 1;
      }
      if (!row.empty() && cell->serialized != row.front().serialized) {
        identical = false;
        std::fprintf(stderr, "MISMATCH: %s differs at morsels=%zu\n",
                     query.id.c_str(), m);
      }
      row.push_back(std::move(*cell));
    }
    cells.push_back(std::move(row));
  }

  std::printf("%-5s %5s  %12s  %12s  %12s  %12s  %8s\n", "query", "subq",
              "m=1", "m=2", "m=4", "m=8", "m4 spd");
  double total_m1 = 0.0;
  double total_m4 = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Cell>& row = cells[q];
    std::printf("%-5s %5zu  %9.2f ms  %9.2f ms  %9.2f ms  %9.2f ms  %7.2fx\n",
                queries[q].id.c_str(), row.front().subqueries,
                row[0].wall_ms, row[1].wall_ms, row[2].wall_ms,
                row[3].wall_ms,
                row[2].wall_ms > 0.0 ? row[0].wall_ms / row[2].wall_ms : 0.0);
    total_m1 += row[0].wall_ms;
    total_m4 += row[2].wall_ms;
  }
  const double speedup_m4 = total_m4 > 0.0 ? total_m1 / total_m4 : 0.0;
  std::printf(
      "\nlocalized total: m=1 %.2f ms -> m=4 %.2f ms => speedup %.2fx\n",
      total_m1, total_m4, speedup_m4);
  std::printf("results byte-identical across morsel levels: %s\n",
              identical ? "yes" : "NO");

  std::string json = "{\n  \"queries\": [\n";
  for (size_t q = 0; q < queries.size(); ++q) {
    json += "    {\"id\": \"" + queries[q].id + "\", \"subqueries\": " +
            std::to_string(cells[q].front().subqueries) + ", \"wall_ms\": [";
    for (size_t m = 0; m < 4; ++m) {
      json += (m ? ", " : "") + std::to_string(cells[q][m].wall_ms);
    }
    json += "]}";
    json += q + 1 < queries.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"morsels\": [1, 2, 4, 8],\n  \"speedup_m4\": " +
          std::to_string(speedup_m4) +
          ",\n  \"identical\": " + (identical ? "true" : "false") +
          ",\n  \"smoke\": " + (smoke ? "true" : "false") + "\n}\n";
  if (!bench::WriteBenchFile("BENCH_intra_node.json", json)) return 1;

  if (!identical) return 1;
  const bool gate_speedup =
      !smoke && std::thread::hardware_concurrency() >= 4;
  if (gate_speedup && speedup_m4 < 2.0) {
    std::fprintf(stderr,
                 "speedup gate FAILED: %.2fx at morsels=4 (need >= 2x)\n",
                 speedup_m4);
    return 1;
  }
  if (!gate_speedup) {
    std::printf("speedup gate skipped (%s)\n",
                smoke ? "smoke mode" : "fewer than 4 cores");
  }
  return 0;
}
