// Ablation bench for the design choices DESIGN.md calls out:
//
//   1. data localization on/off — execute the localized horizontal
//      workload once with normal decomposition and once with a plan that
//      ships every sub-query to every fragment;
//   2. value index on/off — the "modern engine" extension vs. the
//      paper-faithful configuration (eXist had no value indexes);
//   3. contains() acceleration on/off — eXist's fn:contains was a plain
//      substring scan; the text index can short-circuit it.
//
// (The parse-cache ablation lives in micro_engine; the transmission-model
// ablation is the ±T series of fig7d.)

#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

using namespace partix;  // bench binary: brevity over style here

namespace {

/// Measures one query text on a deployment with the standard protocol.
double MeasureMs(workload::Deployment* deployment, const std::string& id,
                 const std::string& text, size_t runs) {
  workload::QuerySpec spec{id, "", text};
  workload::MeasureOptions options;
  options.runs = runs;
  auto m = workload::Measure(deployment, spec, options);
  if (!m.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", id.c_str(),
                 m.status().ToString().c_str());
    return -1.0;
  }
  return m->response_ms;
}

}  // namespace

int main() {
  const double scale = workload::ScaleFromEnv();
  const uint64_t target = static_cast<uint64_t>((uint64_t{8} << 20) * scale);
  const size_t runs = workload::RunsFromEnv(3);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060107;
  auto items = gen::GenerateItemsBySize(gen_options, target, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  std::printf("Ablations - ItemsSHor (%zu documents, %s)\n", items->size(),
              HumanBytes(items->ApproxBytes()).c_str());

  middleware::NetworkModel network;
  xdb::DatabaseOptions faithful;
  faithful.cache_capacity_bytes = std::max<uint64_t>(1 << 20, target / 6);

  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, 8);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed\n");
    return 1;
  }

  // ---- 1. Data localization ----
  {
    auto deployment = workload::Deployment::Fragmented(*items, *schema,
                                                       faithful, network);
    if (!deployment.ok()) return 1;
    const std::string query =
        "for $i in collection(\"items\")/Item "
        "where $i/Section = \"DVD\" return $i/Code";
    double with_localization =
        MeasureMs(deployment->get(), "localized", query, runs);

    // Without localization: hand-build a plan shipping the sub-query to
    // every fragment (the paper's prototype mode with naive placement).
    middleware::DistributedPlan plan;
    plan.collection = items->name();
    plan.original_query = query;
    plan.composition = middleware::Composition::kUnion;
    for (size_t f = 0; f < schema->fragments.size(); ++f) {
      std::string text = query;
      const std::string needle = "\"" + items->name() + "\"";
      size_t pos = text.find(needle);
      text.replace(pos, needle.size(),
                   "\"" + schema->fragments[f].name() + "\"");
      plan.subqueries.push_back(middleware::SubQuery{
          schema->fragments[f].name(), f, std::move(text)});
    }
    double sum = 0.0;
    size_t counted = 0;
    for (size_t run = 0; run < runs; ++run) {
      auto result = deployment->get()->service().ExecutePlan(plan);
      if (!result.ok()) return 1;
      if (run == 0 && runs > 1) continue;
      sum += result->response_ms;
      ++counted;
    }
    double without_localization = sum / std::max<size_t>(1, counted);
    std::printf(
        "\n[1] data localization (selective query, 8 fragments)\n"
        "    with localization    %9.2f ms (1 sub-query)\n"
        "    without localization %9.2f ms (8 sub-queries)  -> %.1fx\n",
        with_localization, without_localization,
        without_localization / with_localization);
  }

  // ---- 2. Value index ----
  {
    xdb::DatabaseOptions modern = faithful;
    modern.enable_value_index = true;
    const std::string query =
        "count(collection(\"items\")/Item[Section = \"DVD\"])";
    auto plain =
        workload::Deployment::Centralized(*items, faithful, network);
    auto indexed =
        workload::Deployment::Centralized(*items, modern, network);
    if (!plain.ok() || !indexed.ok()) return 1;
    double scan = MeasureMs(plain->get(), "scan", query, runs);
    double probe = MeasureMs(indexed->get(), "probe", query, runs);
    std::printf(
        "\n[2] value index (equality count, centralized)\n"
        "    paper-faithful (no value index) %9.2f ms\n"
        "    value index enabled             %9.2f ms  -> %.1fx\n",
        scan, probe, scan / probe);
  }

  // ---- 3. contains() acceleration ----
  {
    xdb::DatabaseOptions modern = faithful;
    modern.text_index_accelerates_contains = true;
    const std::string query =
        "count(for $i in collection(\"items\")/Item "
        "where contains($i/Description, \"good\") return $i)";
    auto plain =
        workload::Deployment::Centralized(*items, faithful, network);
    auto indexed =
        workload::Deployment::Centralized(*items, modern, network);
    if (!plain.ok() || !indexed.ok()) return 1;
    double scan = MeasureMs(plain->get(), "scan", query, runs);
    double probe = MeasureMs(indexed->get(), "probe", query, runs);
    std::printf(
        "\n[3] contains() acceleration (text search, centralized)\n"
        "    substring scan (eXist-faithful) %9.2f ms\n"
        "    text-index assisted             %9.2f ms  -> %.1fx\n",
        scan, probe, scan / probe);
  }
  return 0;
}
