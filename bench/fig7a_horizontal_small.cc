// Reproduces paper Fig. 7(a): query response times on database ItemsSHor
// (Citems with ~2 KB documents, zero PictureList/PricesHistory
// occurrences), horizontally fragmented by /Item/Section into 2/4/8
// fragments, versus the centralized database.
//
// The paper ran 5 MB–250 MB databases; the default here is a scaled-down
// database so the bench finishes in minutes on one core. Set PARTIX_SCALE
// (e.g. PARTIX_SCALE=10) to grow it; shapes, not absolute numbers, are the
// reproduction target.

#include "bench/horizontal_common.h"

int main() {
  partix::gen::ItemsGenOptions options;
  options.seed = 20060101;
  options.large_docs = false;
  return partix::bench::RunHorizontalExperiment(
      "Fig 7(a) - ItemsSHor, horizontal fragmentation, small (~2KB) "
      "documents",
      options, uint64_t{8} << 20);
}
