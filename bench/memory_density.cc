// Memory-density bench for the memory-governance subsystem: quantifies
// what the arena pool and governor buy and proves they change no answers.
//
// Three phases:
//
//   A. Alloc churn — re-parses every document of an Items collection with
//      the document arena in direct mode (one system allocation per
//      Arena::Allocate, the malloc baseline) and in pooled mode (bump
//      allocation over recycled ArenaPool chunks), counting every global
//      operator new via an override in this TU. Gate: pooled mode does
//      >= 30% fewer allocations per parsed document, round-trip
//      byte-identical.
//
//   B. Pressure — deploys the Fig. 7(a) horizontal workload under three
//      per-node budgets (unbounded / generous / tiny) and drives the
//      query set in a hot loop. Reports p50/p99 wall-clock, governor
//      pressure events, peak RSS (VmHWM), and queries-per-GB. Gates:
//      zero failures even under the tiny budget (overload degrades into
//      eviction + re-parse, never OOM), results byte-identical to the
//      unbounded run.
//
//   C. Design identity — horizontal, vertical, and hybrid designs each
//      run their query set with pool+governor on vs off; every composed
//      result must be byte-identical.
//
// Output: table to stdout, BENCH_memory_density.json (+ metrics dumps).
// Exit 0 only if every gate passes. PARTIX_SMOKE=1 shrinks databases and
// loop counts for CI; PARTIX_SCALE/PARTIX_RUNS scale as usual.

// The replacement operators below pair malloc with free; GCC cannot see
// that and flags every inlined delete in this TU as mismatched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_out.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "memory/arena.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xml/parser.h"
#include "xml/serializer.h"

// ---------------------------------------------------------------------------
// Global allocation counters. Overriding operator new in this TU replaces
// it binary-wide, so every heap allocation the bench (and the library
// under test) makes is counted. Counters are relaxed atomics: the bench
// only reads deltas from quiescent points.
// ---------------------------------------------------------------------------

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using partix::HumanBytes;
using partix::middleware::ExecutionOptions;

constexpr size_t kFragments = 4;

// Peak resident set (VmHWM) in bytes, from /proc/self/status. 0 when the
// file is unavailable (non-Linux); callers must tolerate that.
size_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(pct * static_cast<double>(samples.size()));
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

uint64_t SnapshotCounter(const partix::telemetry::MetricsSnapshot& snapshot,
                         const char* name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

// --------------------------- Phase A: alloc churn ---------------------------

struct ChurnResult {
  size_t documents = 0;
  double direct_allocs_per_doc = 0.0;
  double pooled_allocs_per_doc = 0.0;
  double reduction_pct = 0.0;
  bool identical = true;
  bool pass = false;
};

ChurnResult MeasureAllocChurn(const partix::xml::Collection& items) {
  namespace xml = partix::xml;
  ChurnResult out;
  out.documents = items.size();

  std::vector<std::string> serialized;
  serialized.reserve(items.size());
  for (const auto& doc : items.docs()) serialized.push_back(Serialize(*doc));

  // One pass per arena mode. The pooled pass runs second and after a
  // warm-up, so it measures the steady state the pool is for: chunks
  // recycled parse-to-parse instead of fresh system allocations.
  double allocs_per_doc[2] = {0.0, 0.0};
  for (int pooled = 0; pooled < 2; ++pooled) {
    partix::memory::SetDocumentArenaPooling(pooled != 0);
    auto pool = std::make_shared<xml::NamePool>();
    if (pooled) {
      for (const std::string& body : serialized) {
        auto warm = xml::ParseXml(pool, "warm", body);
        if (!warm.ok()) out.identical = false;
      }
    }
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (size_t d = 0; d < serialized.size(); ++d) {
      auto doc = xml::ParseXml(pool, "doc", serialized[d]);
      if (!doc.ok() || Serialize(**doc) != serialized[d]) {
        out.identical = false;
        continue;
      }
    }
    const uint64_t after = g_allocs.load(std::memory_order_relaxed);
    allocs_per_doc[pooled] = serialized.empty()
                                 ? 0.0
                                 : static_cast<double>(after - before) /
                                       static_cast<double>(serialized.size());
  }
  partix::memory::SetDocumentArenaPooling(true);

  out.direct_allocs_per_doc = allocs_per_doc[0];
  out.pooled_allocs_per_doc = allocs_per_doc[1];
  out.reduction_pct =
      allocs_per_doc[0] > 0.0
          ? 100.0 * (1.0 - allocs_per_doc[1] / allocs_per_doc[0])
          : 0.0;
  out.pass = out.identical && out.reduction_pct >= 30.0;
  return out;
}

// ---------------------------- Phase B: pressure -----------------------------

struct PressureResult {
  std::string label;
  size_t budget_bytes = 0;
  size_t queries = 0;
  size_t failures = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t pressure_events = 0;
  size_t peak_rss_bytes = 0;
  double queries_per_gb = 0.0;
  bool identical = true;
};

bool RunPressureSeries(const partix::xml::Collection& items,
                       const partix::frag::FragmentationSchema& schema,
                       const std::vector<partix::workload::QuerySpec>& queries,
                       size_t iterations,
                       std::vector<PressureResult>* results) {
  namespace workload = partix::workload;
  namespace telemetry = partix::telemetry;

  const struct {
    const char* label;
    size_t budget;
  } configs[] = {
      {"unbounded", 0},
      {"generous", size_t{64} << 20},
      {"tiny", size_t{256} << 10},
  };

  // Baseline answers (per query id) come from the unbounded run.
  std::vector<std::string> baseline;

  for (const auto& config : configs) {
    partix::xdb::DatabaseOptions node_options;
    node_options.memory_budget_bytes = config.budget;
    auto deployment = workload::Deployment::Fragmented(
        items, schema, node_options, partix::middleware::NetworkModel());
    if (!deployment.ok()) {
      std::fprintf(stderr, "deploy(%s) failed: %s\n", config.label,
                   deployment.status().ToString().c_str());
      return false;
    }

    telemetry::MetricsRegistry::Global().Reset();
    PressureResult row;
    row.label = config.label;
    row.budget_bytes = config.budget;

    ExecutionOptions options;
    std::vector<double> samples;
    samples.reserve(iterations * queries.size());
    for (size_t iter = 0; iter < iterations; ++iter) {
      for (size_t q = 0; q < queries.size(); ++q) {
        auto result =
            (*deployment)->service().Execute(queries[q].text, options);
        ++row.queries;
        if (!result.ok()) {
          ++row.failures;
          std::fprintf(stderr, "%s under %s budget failed: %s\n",
                       queries[q].id.c_str(), config.label,
                       result.status().ToString().c_str());
          continue;
        }
        samples.push_back(result->wall_ms);
        if (iter == 0) {
          if (baseline.size() <= q) {
            baseline.push_back(result->serialized);
          } else if (result->serialized != baseline[q]) {
            row.identical = false;
            std::fprintf(stderr, "MISMATCH: %s differs under %s budget\n",
                         queries[q].id.c_str(), config.label);
          }
        }
      }
    }
    row.p50_ms = Percentile(samples, 0.50);
    row.p99_ms = Percentile(samples, 0.99);
    row.pressure_events =
        SnapshotCounter(telemetry::MetricsRegistry::Global().Snapshot(),
                        "partix_governor_pressure_events_total");
    row.peak_rss_bytes = PeakRssBytes();
    const double gb =
        static_cast<double>(row.peak_rss_bytes) / (1024.0 * 1024.0 * 1024.0);
    row.queries_per_gb =
        gb > 0.0 ? static_cast<double>(row.queries - row.failures) / gb : 0.0;
    results->push_back(std::move(row));
  }
  return true;
}

// ------------------------ Phase C: design identity --------------------------

struct IdentityResult {
  std::string design;
  size_t queries = 0;
  bool identical = true;
};

bool RunIdentitySeries(const partix::xml::Collection& data,
                       const partix::frag::FragmentationSchema& schema,
                       const std::vector<partix::workload::QuerySpec>& queries,
                       const std::string& design,
                       std::vector<IdentityResult>* results) {
  namespace workload = partix::workload;
  IdentityResult row;
  row.design = design;

  // "on": pooled arenas + a real per-node budget. "off": direct arenas,
  // no governor. Answers must not depend on either.
  std::vector<std::string> on_results;
  for (int governed = 1; governed >= 0; --governed) {
    partix::memory::SetDocumentArenaPooling(governed != 0);
    partix::xdb::DatabaseOptions node_options;
    node_options.memory_budget_bytes = governed ? (size_t{8} << 20) : 0;
    auto deployment = workload::Deployment::Fragmented(
        data, schema, node_options, partix::middleware::NetworkModel());
    if (!deployment.ok()) {
      std::fprintf(stderr, "deploy(%s) failed: %s\n", design.c_str(),
                   deployment.status().ToString().c_str());
      partix::memory::SetDocumentArenaPooling(true);
      return false;
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result =
          (*deployment)->service().Execute(queries[q].text, ExecutionOptions());
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", design.c_str(),
                     queries[q].id.c_str(),
                     result.status().ToString().c_str());
        row.identical = false;
        continue;
      }
      if (governed) {
        on_results.push_back(result->serialized);
      } else if (q < on_results.size() &&
                 result->serialized != on_results[q]) {
        row.identical = false;
        std::fprintf(stderr,
                     "MISMATCH: %s %s differs with governance off\n",
                     design.c_str(), queries[q].id.c_str());
      }
      ++row.queries;
    }
  }
  partix::memory::SetDocumentArenaPooling(true);
  results->push_back(std::move(row));
  return true;
}

}  // namespace

int main() {
  using namespace partix;

  const bool smoke = std::getenv("PARTIX_SMOKE") != nullptr;
  const double scale = workload::ScaleFromEnv();
  const uint64_t items_bytes = static_cast<uint64_t>(
      static_cast<double>(uint64_t{smoke ? 1u : 4u} << 19) * scale);
  const size_t iterations = workload::RunsFromEnv(smoke ? 2 : 10);

  telemetry::MetricsRegistry::Global().set_enabled(true);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060109;
  auto items = gen::GenerateItemsBySize(gen_options, items_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto horizontal = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!horizontal.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 horizontal.status().ToString().c_str());
    return 1;
  }

  gen::XBenchGenOptions article_options;
  article_options.seed = 20060110;
  article_options.target_doc_bytes = smoke ? 64 * 1024 : 256 * 1024;
  auto articles =
      gen::GenerateArticlesBySize(article_options, items_bytes, nullptr);
  if (!articles.ok()) {
    std::fprintf(stderr, "article generation failed: %s\n",
                 articles.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Memory-density bench%s - %zu documents, %s serialized, "
      "%zu fragments, %zu iterations\n",
      smoke ? " (smoke)" : "", items->size(),
      HumanBytes(items->ApproxBytes()).c_str(), kFragments, iterations);

  // Phase A. Churn is measured on the article collection: its documents
  // are node-heavy (paper regime: MBs per article), so the parse arena —
  // not fixed per-parse bookkeeping — dominates the allocation count.
  const ChurnResult churn = MeasureAllocChurn(*articles);
  std::printf(
      "\nalloc churn per parsed document:\n"
      "  direct (malloc baseline): %10.1f allocations\n"
      "  pooled (arena pool):      %10.1f allocations\n"
      "  reduction: %.1f%% (gate >= 30%%)  round-trip identical: %s\n",
      churn.direct_allocs_per_doc, churn.pooled_allocs_per_doc,
      churn.reduction_pct, churn.identical ? "yes" : "NO");

  // Phase B ------------------------------------------------------------
  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());
  std::vector<PressureResult> pressure;
  if (!RunPressureSeries(*items, *horizontal, queries, iterations,
                         &pressure)) {
    return 1;
  }
  std::printf("\n%-10s %12s %8s %8s %9s %9s %9s %12s\n", "budget", "bytes",
              "queries", "failures", "p50 ms", "p99 ms", "pressure",
              "queries/GB");
  for (const PressureResult& row : pressure) {
    std::printf("%-10s %12zu %8zu %8zu %9.3f %9.3f %9llu %12.0f\n",
                row.label.c_str(), row.budget_bytes, row.queries,
                row.failures, row.p50_ms, row.p99_ms,
                static_cast<unsigned long long>(row.pressure_events),
                row.queries_per_gb);
  }

  // Phase C ------------------------------------------------------------
  std::vector<IdentityResult> identity;
  if (!RunIdentitySeries(*items, *horizontal, queries, "horizontal",
                         &identity)) {
    return 1;
  }
  {
    auto schema = workload::ArticleVerticalSchema(articles->name());
    if (!schema.ok() ||
        !RunIdentitySeries(*articles, *schema,
                           workload::VerticalQueries(articles->name()),
                           "vertical", &identity)) {
      return 1;
    }
  }
  {
    gen::StoreGenOptions store_options;
    store_options.seed = 20060111;
    store_options.large_items = true;
    auto store = gen::GenerateStoreBySize(store_options, items_bytes, nullptr);
    auto schema =
        store.ok() ? workload::StoreHybridSchema(
                         store->name(), store_options.sections, kFragments,
                         frag::HybridMode::kSinglePrunedDoc)
                   : Result<frag::FragmentationSchema>(store.status());
    if (!store.ok() || !schema.ok() ||
        !RunIdentitySeries(*store, *schema,
                           workload::HybridQueries(store->name()), "hybrid",
                           &identity)) {
      return 1;
    }
  }
  std::printf("\ndesign identity (governance on vs off):\n");
  for (const IdentityResult& row : identity) {
    std::printf("  %-10s %3zu query runs, byte-identical: %s\n",
                row.design.c_str(), row.queries,
                row.identical ? "yes" : "NO");
  }

  // Pool state ---------------------------------------------------------
  const memory::ArenaPoolStats pool_stats = memory::ArenaPool::Global().stats();
  std::printf(
      "\narena pool: %.1f%% internal fragmentation, %s retained\n"
      "  chunks created/reused/recycled/freed: %llu/%llu/%llu/%llu\n",
      pool_stats.fragmentation_pct(),
      HumanBytes(pool_stats.retained_bytes).c_str(),
      static_cast<unsigned long long>(pool_stats.chunks_created),
      static_cast<unsigned long long>(pool_stats.chunks_reused),
      static_cast<unsigned long long>(pool_stats.chunks_recycled),
      static_cast<unsigned long long>(pool_stats.chunks_freed));

  // Gates --------------------------------------------------------------
  bool pass = churn.pass;
  for (const PressureResult& row : pressure) {
    if (row.failures != 0 || !row.identical) pass = false;
  }
  for (const IdentityResult& row : identity) {
    if (!row.identical) pass = false;
  }
  std::printf("\nGATES: churn %s, pressure %s, identity %s -> %s\n",
              churn.pass ? "ok" : "FAIL",
              std::all_of(pressure.begin(), pressure.end(),
                          [](const PressureResult& r) {
                            return r.failures == 0 && r.identical;
                          })
                  ? "ok"
                  : "FAIL",
              std::all_of(identity.begin(), identity.end(),
                          [](const IdentityResult& r) { return r.identical; })
                  ? "ok"
                  : "FAIL",
              pass ? "PASS" : "FAIL");

  // JSON ---------------------------------------------------------------
  std::string json;
  char buffer[512];
  json += "{\n  \"bench\": \"memory_density\",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"smoke\": %s,\n  \"documents\": %zu,\n"
                "  \"iterations\": %zu,\n",
                smoke ? "true" : "false", items->size(), iterations);
  json += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"alloc_churn\": { \"direct_allocs_per_doc\": %.1f, "
      "\"pooled_allocs_per_doc\": %.1f, \"reduction_pct\": %.1f, "
      "\"identical\": %s, \"pass\": %s },\n",
      churn.direct_allocs_per_doc, churn.pooled_allocs_per_doc,
      churn.reduction_pct, churn.identical ? "true" : "false",
      churn.pass ? "true" : "false");
  json += buffer;
  json += "  \"pressure\": [\n";
  for (size_t i = 0; i < pressure.size(); ++i) {
    const PressureResult& row = pressure[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "    { \"budget\": \"%s\", \"budget_bytes\": %zu, "
        "\"queries\": %zu, \"failures\": %zu, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"pressure_events\": %llu, "
        "\"peak_rss_bytes\": %zu, \"queries_per_gb\": %.0f, "
        "\"identical\": %s }%s\n",
        row.label.c_str(), row.budget_bytes, row.queries, row.failures,
        row.p50_ms, row.p99_ms,
        static_cast<unsigned long long>(row.pressure_events),
        row.peak_rss_bytes, row.queries_per_gb,
        row.identical ? "true" : "false",
        i + 1 < pressure.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n  \"design_identity\": [\n";
  for (size_t i = 0; i < identity.size(); ++i) {
    const IdentityResult& row = identity[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    { \"design\": \"%s\", \"queries\": %zu, "
                  "\"identical\": %s }%s\n",
                  row.design.c_str(), row.queries,
                  row.identical ? "true" : "false",
                  i + 1 < identity.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n";
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"pool\": { \"fragmentation_pct\": %.1f, \"retained_bytes\": %zu, "
      "\"chunks_created\": %llu, \"chunks_reused\": %llu, "
      "\"chunks_recycled\": %llu, \"chunks_freed\": %llu },\n"
      "  \"total_allocations\": %llu,\n  \"pass\": %s\n}\n",
      pool_stats.fragmentation_pct(), pool_stats.retained_bytes,
      static_cast<unsigned long long>(pool_stats.chunks_created),
      static_cast<unsigned long long>(pool_stats.chunks_reused),
      static_cast<unsigned long long>(pool_stats.chunks_recycled),
      static_cast<unsigned long long>(pool_stats.chunks_freed),
      static_cast<unsigned long long>(g_allocs.load(std::memory_order_relaxed)),
      pass ? "true" : "false");
  json += buffer;

  std::printf("\n");
  if (!bench::WriteBenchFile("BENCH_memory_density.json", json)) return 1;
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  if (!bench::WriteBenchFile("BENCH_memory_density_metrics.json",
                             snapshot.ToJson()) ||
      !bench::WriteBenchFile("BENCH_memory_density_metrics.prom",
                             snapshot.ToPrometheus())) {
    return 1;
  }
  return pass ? 0 : 1;
}
