// Reproduces the paper's headline claim (§1/§6): "a performance
// improvement of up to a 72 scale up factor against centralized
// databases", observed for horizontal fragmentation of the small-document
// database on the text-search / aggregation queries (the paper's Q8 went
// from 1200 s centralized to 300 s on 2 fragments — a superlinear
// speedup).
//
// This bench prints the per-query speedup factors (centralized /
// fragmented response time) for the ItemsSHor workload at 2/4/8 fragments
// and reports the maximum observed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

using namespace partix;  // bench binary: brevity over style here

int main() {
  const double scale = workload::ScaleFromEnv();
  gen::ItemsGenOptions options;
  options.seed = 20060105;
  options.large_docs = false;
  auto items = gen::GenerateItemsBySize(
      options, static_cast<uint64_t>((uint64_t{8} << 20) * scale), nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  std::printf("Speed-up table - ItemsSHor, horizontal fragmentation\n"
              "database: %zu documents, %s\n",
              items->size(), HumanBytes(items->ApproxBytes()).c_str());

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());
  workload::MeasureOptions measure;
  measure.runs = workload::RunsFromEnv(3);

  xdb::DatabaseOptions node_options;
  // The paper's memory regime: the centralized database exceeds the parse
  // cache; fragments fit (see EXPERIMENTS.md).
  node_options.cache_capacity_bytes =
      std::max<uint64_t>(uint64_t{1} << 20, static_cast<uint64_t>((uint64_t{8} << 20) * scale) / 6);
  middleware::NetworkModel network;

  auto central =
      workload::Deployment::Centralized(*items, node_options, network);
  if (!central.ok()) {
    std::fprintf(stderr, "deploy failed\n");
    return 1;
  }
  std::vector<double> central_ms;
  for (const workload::QuerySpec& q : queries) {
    auto m = workload::Measure(central->get(), q, measure);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.id.c_str(),
                   m.status().ToString().c_str());
      return 1;
    }
    central_ms.push_back(m->response_ms);
  }

  std::printf("\n%-5s %12s", "query", "centralized");
  for (size_t f : {2, 4, 8}) std::printf("  %8zu-frag", f);
  std::printf("\n");

  double best_speedup = 0.0;
  std::string best_query;
  std::vector<std::vector<double>> speedups(queries.size());
  size_t column = 0;
  for (size_t fragments : {size_t{2}, size_t{4}, size_t{8}}) {
    auto schema = workload::SectionHorizontalSchema(
        items->name(), options.sections, fragments);
    if (!schema.ok()) {
      std::fprintf(stderr, "schema failed\n");
      return 1;
    }
    auto deployment = workload::Deployment::Fragmented(
        *items, *schema, node_options, network);
    if (!deployment.ok()) {
      std::fprintf(stderr, "deploy failed\n");
      return 1;
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      auto m = workload::Measure(deployment->get(), queries[q], measure);
      if (!m.ok()) {
        std::fprintf(stderr, "measure failed\n");
        return 1;
      }
      double speedup =
          m->response_ms > 0 ? central_ms[q] / m->response_ms : 0.0;
      speedups[q].push_back(speedup);
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_query = queries[q].id + " @ " + std::to_string(fragments) +
                     " fragments";
      }
    }
    ++column;
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("%-5s %9.2f ms", queries[q].id.c_str(), central_ms[q]);
    for (double s : speedups[q]) std::printf("  %11.1fx", s);
    std::printf("\n");
  }
  std::printf("\nmax speed-up: %.1fx (%s)\n", best_speedup,
              best_query.c_str());
  std::printf("paper reports up to 72x on its 250MB ItemsSHor database; "
              "scale with PARTIX_SCALE to approach it.\n");
  return 0;
}
