// Query latency under injected transient faults, plus a seeded
// self-healing chaos pass.
//
// The fault-tolerance PR claims failover is cheap: with replicated
// fragments, retries + replica re-routing absorb transient node errors
// without changing the answer. This bench quantifies the claim. It
// deploys the Fig. 7(a) horizontal workload at replication factor 2,
// injects seeded transient-error rates of 0% / 5% / 20% into every node
// (ClusterSim::SetFaultProfile), and reports per-query wall-clock,
// retries, and failovers at each rate — plus a byte-identity check of
// every composed result against the fault-free baseline.
//
// Output goes to stdout as a table and to BENCH_failover.json (schema
// below) so the perf trajectory is machine-readable:
//
//   { "bench": "failover", "replication_factor": 2, "nodes": N,
//     "fragments": N, "runs": R,
//     "series": [ { "error_rate": 0.05,
//                   "queries": [ { "id": "Q1", "wall_ms": 1.2,
//                                  "retries": 3, "failovers": 1,
//                                  "ok": true } ],
//                   "total_wall_ms": ..., "total_retries": ...,
//                   "total_failovers": ... } ],
//     "identical_across_rates": true }
//
// The chaos pass (BENCH_self_healing.json) walks the self-healing
// lifecycle on a versioned-catalog deployment: healthy baseline ->
// response corruption (detected, failed over, never served) -> node
// death (health declares it, repair re-replicates and cuts the catalog
// over) -> storage bit rot (scrubber detects, quarantines, rebuilds).
// Every phase's composed results are gated on byte-identity with the
// healthy run, and any failed query fails the bench.
//
// Set PARTIX_SCALE to grow the database, PARTIX_RUNS for repetitions,
// PARTIX_SMOKE=1 for a tiny CI run.

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_out.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "partix/health.h"
#include "partix/query_service.h"
#include "partix/repair.h"
#include "telemetry/metrics.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::DistributedResult;
using partix::middleware::ExecutionOptions;
using partix::middleware::FaultProfile;

constexpr size_t kFragments = 4;
constexpr size_t kReplicationFactor = 2;
const double kErrorRates[] = {0.0, 0.05, 0.20};

struct QueryCell {
  std::string id;
  double wall_ms = 0.0;  // averaged over runs
  size_t retries = 0;    // summed over runs
  size_t failovers = 0;  // summed over runs
  bool ok = true;
  std::string serialized;  // first successful run (identity check)
};

struct Series {
  double error_rate = 0.0;
  std::vector<QueryCell> queries;
};

/// Installs `error_rate` on every node with a per-node seed derived from
/// the series index, so reruns of the bench draw identical fault
/// sequences.
void InjectFaults(partix::middleware::ClusterSim* cluster,
                  double error_rate, size_t series_index) {
  for (size_t node = 0; node < cluster->node_count(); ++node) {
    FaultProfile profile;
    profile.transient_error_rate = error_rate;
    profile.seed = 9000 + series_index * 131 + node * 17;
    cluster->SetFaultProfile(node, profile);
  }
  cluster->executor().ResetBreakers();
}

partix::Result<QueryCell> MeasureQuery(
    partix::workload::Deployment* deployment,
    const partix::workload::QuerySpec& query, size_t runs) {
  ExecutionOptions options;
  options.parallelism = 1;  // sequential: isolates retry/failover cost
  options.retry.max_attempts = 6;
  options.retry.base_backoff_ms = 0.05;
  options.retry.max_backoff_ms = 1.0;
  options.retry.seed = 20060101;

  QueryCell cell;
  cell.id = query.id;
  for (size_t run = 0; run <= runs; ++run) {
    auto result = deployment->service().Execute(query.text, options);
    if (run == 0) {
      // Warm-up primes node caches; its faults still advance the
      // per-node RNGs, which is fine — series are compared by result
      // bytes, not by fault placement.
      if (result.ok()) cell.serialized = result->serialized;
      continue;
    }
    if (!result.ok()) {
      cell.ok = false;
      std::fprintf(stderr, "%s failed despite retries: %s\n",
                   query.id.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    if (cell.serialized.empty()) cell.serialized = result->serialized;
    cell.wall_ms += result->wall_ms;
    cell.retries += result->retries;
    cell.failovers += result->failovers;
  }
  cell.wall_ms /= static_cast<double>(runs);
  return cell;
}

void AppendJsonSeries(const Series& series, std::string* out) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "    { \"error_rate\": %.2f,\n      \"queries\": [\n",
                series.error_rate);
  *out += buffer;
  double total_wall = 0.0;
  size_t total_retries = 0;
  size_t total_failovers = 0;
  for (size_t q = 0; q < series.queries.size(); ++q) {
    const QueryCell& cell = series.queries[q];
    total_wall += cell.wall_ms;
    total_retries += cell.retries;
    total_failovers += cell.failovers;
    std::snprintf(buffer, sizeof(buffer),
                  "        { \"id\": \"%s\", \"wall_ms\": %.3f, "
                  "\"retries\": %zu, \"failovers\": %zu, \"ok\": %s }%s\n",
                  cell.id.c_str(), cell.wall_ms, cell.retries,
                  cell.failovers, cell.ok ? "true" : "false",
                  q + 1 < series.queries.size() ? "," : "");
    *out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "      ],\n      \"total_wall_ms\": %.3f, "
                "\"total_retries\": %zu, \"total_failovers\": %zu }",
                total_wall, total_retries, total_failovers);
  *out += buffer;
}

// ---------------------------------------------------------------------
// Self-healing chaos pass
// ---------------------------------------------------------------------

struct ChaosPhase {
  std::string name;
  size_t queries = 0;
  size_t failed = 0;
  size_t retries = 0;
  size_t failovers = 0;
  size_t corrupt_responses = 0;
  double wall_ms = 0.0;
  bool identical = true;
  // Repair/scrub extras; 0 for phases that run neither.
  size_t repaired = 0;
  uint64_t catalog_version = 0;
  size_t scrub_divergent = 0;
  size_t scrub_repaired = 0;
};

/// Runs the workload once through `service`, folding outcomes into
/// `phase` and checking byte-identity against `baseline` (one entry per
/// query; filled on the first phase when empty).
void RunChaosWorkload(partix::middleware::QueryService* service,
                      const std::vector<partix::workload::QuerySpec>& queries,
                      std::vector<std::string>* baseline,
                      ChaosPhase* phase) {
  ExecutionOptions options;
  options.retry.max_attempts = 6;
  options.retry.base_backoff_ms = 0.05;
  options.retry.max_backoff_ms = 1.0;
  options.retry.seed = 20060101;
  for (size_t q = 0; q < queries.size(); ++q) {
    ++phase->queries;
    auto result = service->Execute(queries[q].text, options);
    if (!result.ok()) {
      ++phase->failed;
      std::fprintf(stderr, "[%s] %s FAILED: %s\n", phase->name.c_str(),
                   queries[q].id.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    phase->wall_ms += result->wall_ms;
    phase->retries += result->retries;
    phase->failovers += result->failovers;
    phase->corrupt_responses += result->corrupt_responses;
    if (baseline->size() <= q) {
      baseline->push_back(result->serialized);
    } else if (result->serialized != (*baseline)[q]) {
      phase->identical = false;
      std::fprintf(stderr, "[%s] MISMATCH: %s diverged from baseline\n",
                   phase->name.c_str(), queries[q].id.c_str());
    }
  }
}

/// The detect -> route-around -> repair lifecycle on its own
/// versioned-catalog deployment. Returns true when every phase kept every
/// query succeeding byte-identically.
bool RunSelfHealingChaos(const partix::xml::Collection& items,
                         const partix::frag::FragmentationSchema& schema,
                         std::vector<ChaosPhase>* phases) {
  using namespace partix;
  using namespace partix::middleware;

  DistributionCatalog catalog;
  ClusterSim cluster(kFragments, xdb::DatabaseOptions(), NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  Status published =
      publisher.PublishFragmented(items, schema, {}, kReplicationFactor);
  if (!published.ok()) {
    std::fprintf(stderr, "chaos deploy failed: %s\n",
                 published.ToString().c_str());
    return false;
  }
  VersionedCatalog versioned(catalog);
  QueryService service(&cluster, &versioned);
  HealthMonitor health(&cluster);
  cluster.executor().set_health_monitor(&health);
  RepairPlanner planner(&cluster, &publisher, &health, &versioned);
  Scrubber scrubber(&cluster, &publisher, &health, &versioned);

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items.name());
  std::vector<std::string> baseline;

  // Phase 1: healthy baseline.
  {
    ChaosPhase phase;
    phase.name = "healthy";
    RunChaosWorkload(&service, queries, &baseline, &phase);
    phases->push_back(phase);
  }

  // Phase 2: every node corrupts a quarter of its responses in flight.
  // Digest verification must discard each one and fail over; no corrupt
  // bytes reach a composed result.
  {
    for (size_t node = 0; node < cluster.node_count(); ++node) {
      FaultProfile profile;
      profile.response_corruption_rate = 0.25;
      profile.seed = 777 + node;
      cluster.SetFaultProfile(node, profile);
    }
    ChaosPhase phase;
    phase.name = "response_corruption";
    RunChaosWorkload(&service, queries, &baseline, &phase);
    phases->push_back(phase);
    for (size_t node = 0; node < cluster.node_count(); ++node) {
      cluster.SetFaultProfile(node, FaultProfile{});
    }
    cluster.executor().ResetBreakers();
  }

  // Phase 3: node 1 dies mid-workload. Queries keep succeeding via
  // replicas; probes declare the death; one repair round restores the
  // replication factor and cuts the catalog over.
  {
    cluster.SetNodeDown(1, true);
    ChaosPhase phase;
    phase.name = "node_death_repair";
    RunChaosWorkload(&service, queries, &baseline, &phase);
    const size_t rounds = static_cast<size_t>(
        health.policy().death_threshold / health.policy().failure_weight);
    for (size_t i = 0; i < rounds; ++i) health.ProbeAll();
    RepairReport repair = planner.RepairOnce();
    phase.repaired = repair.repaired;
    phase.catalog_version = repair.catalog_version;
    if (repair.failed != 0 || repair.catalog_version == 0) {
      std::fprintf(stderr, "[%s] repair incomplete: %zu failed, v%llu\n",
                   phase.name.c_str(), repair.failed,
                   static_cast<unsigned long long>(repair.catalog_version));
      phase.identical = false;
    }
    // Post-repair traffic routes on the repaired topology.
    RunChaosWorkload(&service, queries, &baseline, &phase);
    phases->push_back(phase);
  }

  // Phase 4: silent bit rot on a live replica. The scrubber detects the
  // divergent copy against the catalog digest, quarantines, rebuilds,
  // verifies, and traffic stays byte-identical throughout.
  {
    ChaosPhase phase;
    phase.name = "storage_scrub";
    auto snapshot = versioned.Snapshot();
    auto entry = snapshot->Get(items.name());
    if (entry.ok() && !(*entry)->placements.empty()) {
      const FragmentPlacement& target = (*entry)->placements.front();
      Status rotted = cluster.database(target.node)
                          .CorruptStoredDocumentText(target.fragment, 0);
      if (!rotted.ok()) {
        std::fprintf(stderr, "[%s] injection failed: %s\n",
                     phase.name.c_str(), rotted.ToString().c_str());
        phase.identical = false;
      }
    }
    ScrubReport scrub = scrubber.ScrubOnce();
    phase.scrub_divergent = scrub.divergent;
    phase.scrub_repaired = scrub.repaired;
    if (scrub.divergent != scrub.repaired || scrub.failed != 0) {
      std::fprintf(stderr, "[%s] scrub left damage: %zu divergent, "
                   "%zu repaired, %zu failed\n",
                   phase.name.c_str(), scrub.divergent, scrub.repaired,
                   scrub.failed);
      phase.identical = false;
    }
    RunChaosWorkload(&service, queries, &baseline, &phase);
    phases->push_back(phase);
  }

  bool ok = true;
  for (const ChaosPhase& phase : *phases) {
    ok = ok && phase.identical && phase.failed == 0;
  }
  return ok;
}

void AppendChaosJson(const std::vector<ChaosPhase>& phases, bool ok,
                     size_t nodes, std::string* json) {
  char buffer[320];
  *json += "{\n  \"bench\": \"self_healing\",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"nodes\": %zu,\n  \"replication_factor\": %zu,\n"
                "  \"phases\": [\n",
                nodes, kReplicationFactor);
  *json += buffer;
  for (size_t p = 0; p < phases.size(); ++p) {
    const ChaosPhase& phase = phases[p];
    std::snprintf(
        buffer, sizeof(buffer),
        "    { \"phase\": \"%s\", \"queries\": %zu, \"failed\": %zu,\n"
        "      \"retries\": %zu, \"failovers\": %zu, "
        "\"corrupt_responses\": %zu,\n"
        "      \"wall_ms\": %.3f, \"repaired\": %zu, "
        "\"catalog_version\": %llu,\n"
        "      \"scrub_divergent\": %zu, \"scrub_repaired\": %zu, "
        "\"identical\": %s }%s\n",
        phase.name.c_str(), phase.queries, phase.failed, phase.retries,
        phase.failovers, phase.corrupt_responses, phase.wall_ms,
        phase.repaired,
        static_cast<unsigned long long>(phase.catalog_version),
        phase.scrub_divergent, phase.scrub_repaired,
        phase.identical ? "true" : "false",
        p + 1 < phases.size() ? "," : "");
    *json += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"healed_and_identical\": %s\n}\n",
                ok ? "true" : "false");
  *json += buffer;
}

}  // namespace

int main() {
  using namespace partix;

  const char* smoke_env = std::getenv("PARTIX_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const double scale = workload::ScaleFromEnv();
  const uint64_t target_bytes =
      smoke ? (uint64_t{64} << 10)
            : static_cast<uint64_t>((uint64_t{1} << 20) * scale);
  const size_t runs = smoke ? 1 : workload::RunsFromEnv(3);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060101;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  auto deployment = workload::Deployment::Fragmented(
      *items, *schema, xdb::DatabaseOptions(), middleware::NetworkModel(),
      kReplicationFactor);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Failover bench - %zu fragments rf=%zu on %zu nodes\n"
      "database: %zu documents, %s serialized; runs: %zu\n",
      kFragments, kReplicationFactor, deployment->get()->node_count(),
      items->size(), HumanBytes(items->ApproxBytes()).c_str(), runs);

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());

  // Record the whole bench in the global metrics registry; the snapshot
  // written at the end carries the aggregate retry/failover/breaker and
  // parse-cache story alongside the per-query table.
  telemetry::MetricsRegistry::Global().set_enabled(true);
  telemetry::MetricsRegistry::Global().Reset();

  std::vector<Series> series;
  bool identical = true;
  for (size_t s = 0; s < std::size(kErrorRates); ++s) {
    Series current;
    current.error_rate = kErrorRates[s];
    InjectFaults(&deployment->get()->cluster(), kErrorRates[s], s);
    for (const auto& query : queries) {
      auto cell = MeasureQuery(deployment->get(), query, runs);
      if (!cell.ok()) {
        std::fprintf(stderr, "measurement failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      if (!series.empty()) {
        const QueryCell& baseline =
            series.front().queries[current.queries.size()];
        if (cell->ok && cell->serialized != baseline.serialized) {
          identical = false;
          std::fprintf(stderr,
                       "MISMATCH: %s composed differently at rate %.2f\n",
                       query.id.c_str(), kErrorRates[s]);
        }
      }
      current.queries.push_back(std::move(*cell));
    }
    series.push_back(std::move(current));
  }
  // Leave the cluster healthy.
  InjectFaults(&deployment->get()->cluster(), 0.0, 0);

  std::printf("\n%-5s", "query");
  for (double rate : kErrorRates)
    std::printf("  %8s%.0f%%  %5s  %5s", "wall@", rate * 100, "retry",
                "failo");
  std::printf("\n");
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("%-5s", queries[q].id.c_str());
    for (const Series& s : series) {
      const QueryCell& cell = s.queries[q];
      std::printf("  %8.2f ms  %5zu  %5zu", cell.wall_ms, cell.retries,
                  cell.failovers);
    }
    std::printf("\n");
  }
  std::printf("results byte-identical across fault rates: %s\n",
              identical ? "yes" : "NO");

  std::string json;
  json += "{\n  \"bench\": \"failover\",\n";
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "  \"replication_factor\": %zu,\n  \"nodes\": %zu,\n"
                "  \"fragments\": %zu,\n  \"runs\": %zu,\n  \"series\": [\n",
                kReplicationFactor, deployment->get()->node_count(),
                kFragments, runs);
  json += buffer;
  for (size_t s = 0; s < series.size(); ++s) {
    AppendJsonSeries(series[s], &json);
    json += s + 1 < series.size() ? ",\n" : "\n";
  }
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"identical_across_rates\": %s\n}\n",
                identical ? "true" : "false");
  json += buffer;

  std::printf("\n");
  if (!bench::WriteBenchFile("BENCH_failover.json", json)) return 1;

  // --- self-healing chaos pass (before the metrics snapshot, so the
  // repair/scrub/corruption counters it drives are captured too) ---
  std::printf("self-healing chaos pass (rf=%zu):\n", kReplicationFactor);
  std::vector<ChaosPhase> phases;
  const bool healed = RunSelfHealingChaos(*items, *schema, &phases);
  std::printf("%-22s %7s %6s %6s %7s %8s %5s\n", "phase", "queries",
              "failed", "retry", "failov", "corrupt", "ident");
  for (const ChaosPhase& phase : phases) {
    std::printf("%-22s %7zu %6zu %6zu %7zu %8zu %5s\n", phase.name.c_str(),
                phase.queries, phase.failed, phase.retries, phase.failovers,
                phase.corrupt_responses, phase.identical ? "yes" : "NO");
  }
  std::printf("healed and byte-identical: %s\n", healed ? "yes" : "NO");
  std::string chaos_json;
  AppendChaosJson(phases, healed, kFragments, &chaos_json);
  if (!bench::WriteBenchFile("BENCH_self_healing.json", chaos_json)) {
    return 1;
  }

  // Metrics snapshot (JSON + Prometheus text exposition) of everything
  // the bench just did: attempts/retries/failovers, breaker transitions,
  // backoff sleeps, engine time, parse-cache traffic, repairs and scrubs.
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  if (!bench::WriteBenchFile("BENCH_failover_metrics.json",
                             snapshot.ToJson()) ||
      !bench::WriteBenchFile("BENCH_failover_metrics.prom",
                             snapshot.ToPrometheus())) {
    return 1;
  }
  const char* const headline[] = {
      "partix_subquery_attempts_total", "partix_subquery_retries_total",
      "partix_subquery_failovers_total", "partix_breaker_opens_total",
      "partix_breaker_half_open_probes_total",
      "partix_corrupt_responses_total", "partix_repairs_total",
      "partix_scrub_divergent_total",
  };
  std::printf("\nkey counters:\n");
  for (const char* name : headline) {
    auto it = snapshot.counters.find(name);
    std::printf("  %-40s %llu\n", name,
                it == snapshot.counters.end()
                    ? 0ull
                    : static_cast<unsigned long long>(it->second));
  }
  return identical && healed ? 0 : 1;
}
