// Query latency under injected transient faults.
//
// The fault-tolerance PR claims failover is cheap: with replicated
// fragments, retries + replica re-routing absorb transient node errors
// without changing the answer. This bench quantifies the claim. It
// deploys the Fig. 7(a) horizontal workload at replication factor 2,
// injects seeded transient-error rates of 0% / 5% / 20% into every node
// (ClusterSim::SetFaultProfile), and reports per-query wall-clock,
// retries, and failovers at each rate — plus a byte-identity check of
// every composed result against the fault-free baseline.
//
// Output goes to stdout as a table and to BENCH_failover.json (schema
// below) so the perf trajectory is machine-readable:
//
//   { "bench": "failover", "replication_factor": 2, "nodes": N,
//     "fragments": N, "runs": R,
//     "series": [ { "error_rate": 0.05,
//                   "queries": [ { "id": "Q1", "wall_ms": 1.2,
//                                  "retries": 3, "failovers": 1,
//                                  "ok": true } ],
//                   "total_wall_ms": ..., "total_retries": ...,
//                   "total_failovers": ... } ],
//     "identical_across_rates": true }
//
// Set PARTIX_SCALE to grow the database, PARTIX_RUNS for repetitions.

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "bench_out.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace {

using partix::middleware::DistributedResult;
using partix::middleware::ExecutionOptions;
using partix::middleware::FaultProfile;

constexpr size_t kFragments = 4;
constexpr size_t kReplicationFactor = 2;
const double kErrorRates[] = {0.0, 0.05, 0.20};

struct QueryCell {
  std::string id;
  double wall_ms = 0.0;  // averaged over runs
  size_t retries = 0;    // summed over runs
  size_t failovers = 0;  // summed over runs
  bool ok = true;
  std::string serialized;  // first successful run (identity check)
};

struct Series {
  double error_rate = 0.0;
  std::vector<QueryCell> queries;
};

/// Installs `error_rate` on every node with a per-node seed derived from
/// the series index, so reruns of the bench draw identical fault
/// sequences.
void InjectFaults(partix::middleware::ClusterSim* cluster,
                  double error_rate, size_t series_index) {
  for (size_t node = 0; node < cluster->node_count(); ++node) {
    FaultProfile profile;
    profile.transient_error_rate = error_rate;
    profile.seed = 9000 + series_index * 131 + node * 17;
    cluster->SetFaultProfile(node, profile);
  }
  cluster->executor().ResetBreakers();
}

partix::Result<QueryCell> MeasureQuery(
    partix::workload::Deployment* deployment,
    const partix::workload::QuerySpec& query, size_t runs) {
  ExecutionOptions options;
  options.parallelism = 1;  // sequential: isolates retry/failover cost
  options.retry.max_attempts = 6;
  options.retry.base_backoff_ms = 0.05;
  options.retry.max_backoff_ms = 1.0;
  options.retry.seed = 20060101;

  QueryCell cell;
  cell.id = query.id;
  for (size_t run = 0; run <= runs; ++run) {
    auto result = deployment->service().Execute(query.text, options);
    if (run == 0) {
      // Warm-up primes node caches; its faults still advance the
      // per-node RNGs, which is fine — series are compared by result
      // bytes, not by fault placement.
      if (result.ok()) cell.serialized = result->serialized;
      continue;
    }
    if (!result.ok()) {
      cell.ok = false;
      std::fprintf(stderr, "%s failed despite retries: %s\n",
                   query.id.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    if (cell.serialized.empty()) cell.serialized = result->serialized;
    cell.wall_ms += result->wall_ms;
    cell.retries += result->retries;
    cell.failovers += result->failovers;
  }
  cell.wall_ms /= static_cast<double>(runs);
  return cell;
}

void AppendJsonSeries(const Series& series, std::string* out) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "    { \"error_rate\": %.2f,\n      \"queries\": [\n",
                series.error_rate);
  *out += buffer;
  double total_wall = 0.0;
  size_t total_retries = 0;
  size_t total_failovers = 0;
  for (size_t q = 0; q < series.queries.size(); ++q) {
    const QueryCell& cell = series.queries[q];
    total_wall += cell.wall_ms;
    total_retries += cell.retries;
    total_failovers += cell.failovers;
    std::snprintf(buffer, sizeof(buffer),
                  "        { \"id\": \"%s\", \"wall_ms\": %.3f, "
                  "\"retries\": %zu, \"failovers\": %zu, \"ok\": %s }%s\n",
                  cell.id.c_str(), cell.wall_ms, cell.retries,
                  cell.failovers, cell.ok ? "true" : "false",
                  q + 1 < series.queries.size() ? "," : "");
    *out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "      ],\n      \"total_wall_ms\": %.3f, "
                "\"total_retries\": %zu, \"total_failovers\": %zu }",
                total_wall, total_retries, total_failovers);
  *out += buffer;
}

}  // namespace

int main() {
  using namespace partix;

  const double scale = workload::ScaleFromEnv();
  const uint64_t target_bytes =
      static_cast<uint64_t>((uint64_t{1} << 20) * scale);
  const size_t runs = workload::RunsFromEnv(3);

  gen::ItemsGenOptions gen_options;
  gen_options.seed = 20060101;
  auto items = gen::GenerateItemsBySize(gen_options, target_bytes, nullptr);
  if (!items.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 items.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::SectionHorizontalSchema(
      items->name(), gen_options.sections, kFragments);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  auto deployment = workload::Deployment::Fragmented(
      *items, *schema, xdb::DatabaseOptions(), middleware::NetworkModel(),
      kReplicationFactor);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Failover bench - %zu fragments rf=%zu on %zu nodes\n"
      "database: %zu documents, %s serialized; runs: %zu\n",
      kFragments, kReplicationFactor, deployment->get()->node_count(),
      items->size(), HumanBytes(items->ApproxBytes()).c_str(), runs);

  const std::vector<workload::QuerySpec> queries =
      workload::HorizontalQueries(items->name());

  // Record the whole bench in the global metrics registry; the snapshot
  // written at the end carries the aggregate retry/failover/breaker and
  // parse-cache story alongside the per-query table.
  telemetry::MetricsRegistry::Global().set_enabled(true);
  telemetry::MetricsRegistry::Global().Reset();

  std::vector<Series> series;
  bool identical = true;
  for (size_t s = 0; s < std::size(kErrorRates); ++s) {
    Series current;
    current.error_rate = kErrorRates[s];
    InjectFaults(&deployment->get()->cluster(), kErrorRates[s], s);
    for (const auto& query : queries) {
      auto cell = MeasureQuery(deployment->get(), query, runs);
      if (!cell.ok()) {
        std::fprintf(stderr, "measurement failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      if (!series.empty()) {
        const QueryCell& baseline =
            series.front().queries[current.queries.size()];
        if (cell->ok && cell->serialized != baseline.serialized) {
          identical = false;
          std::fprintf(stderr,
                       "MISMATCH: %s composed differently at rate %.2f\n",
                       query.id.c_str(), kErrorRates[s]);
        }
      }
      current.queries.push_back(std::move(*cell));
    }
    series.push_back(std::move(current));
  }
  // Leave the cluster healthy.
  InjectFaults(&deployment->get()->cluster(), 0.0, 0);

  std::printf("\n%-5s", "query");
  for (double rate : kErrorRates)
    std::printf("  %8s%.0f%%  %5s  %5s", "wall@", rate * 100, "retry",
                "failo");
  std::printf("\n");
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("%-5s", queries[q].id.c_str());
    for (const Series& s : series) {
      const QueryCell& cell = s.queries[q];
      std::printf("  %8.2f ms  %5zu  %5zu", cell.wall_ms, cell.retries,
                  cell.failovers);
    }
    std::printf("\n");
  }
  std::printf("results byte-identical across fault rates: %s\n",
              identical ? "yes" : "NO");

  std::string json;
  json += "{\n  \"bench\": \"failover\",\n";
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "  \"replication_factor\": %zu,\n  \"nodes\": %zu,\n"
                "  \"fragments\": %zu,\n  \"runs\": %zu,\n  \"series\": [\n",
                kReplicationFactor, deployment->get()->node_count(),
                kFragments, runs);
  json += buffer;
  for (size_t s = 0; s < series.size(); ++s) {
    AppendJsonSeries(series[s], &json);
    json += s + 1 < series.size() ? ",\n" : "\n";
  }
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"identical_across_rates\": %s\n}\n",
                identical ? "true" : "false");
  json += buffer;

  std::printf("\n");
  if (!bench::WriteBenchFile("BENCH_failover.json", json)) return 1;

  // Metrics snapshot (JSON + Prometheus text exposition) of everything
  // the bench just did: attempts/retries/failovers, breaker transitions,
  // backoff sleeps, engine time, parse-cache traffic.
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  if (!bench::WriteBenchFile("BENCH_failover_metrics.json",
                             snapshot.ToJson()) ||
      !bench::WriteBenchFile("BENCH_failover_metrics.prom",
                             snapshot.ToPrometheus())) {
    return 1;
  }
  const char* const headline[] = {
      "partix_subquery_attempts_total", "partix_subquery_retries_total",
      "partix_subquery_failovers_total", "partix_breaker_opens_total",
      "partix_breaker_half_open_probes_total",
      "partix_store_cache_hits_total", "partix_store_cache_misses_total",
  };
  std::printf("\nkey counters:\n");
  for (const char* name : headline) {
    auto it = snapshot.counters.find(name);
    std::printf("  %-40s %llu\n", name,
                it == snapshot.counters.end()
                    ? 0ull
                    : static_cast<unsigned long long>(it->second));
  }
  return identical ? 0 : 1;
}
