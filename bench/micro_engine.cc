// Engine-level micro-benchmarks (google-benchmark): XML parsing and
// serialization, path evaluation, index probes, query compilation, the
// fragmentation operators, and the parse-cache ablation the design calls
// out (DESIGN.md "ablation candidates").

#include <benchmark/benchmark.h>

#include <memory>

#include "engine/database.h"
#include "fragmentation/algebra.h"
#include "fragmentation/correctness.h"
#include "fragmentation/fragmenter.h"
#include "partix/decomposer.h"
#include "gen/virtual_store.h"
#include "storage/document_store.h"
#include "storage/indexes.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xquery/parser.h"

namespace {

using namespace partix;  // bench binary: brevity over style here

/// One mid-sized Item document reused across benchmarks.
std::string SampleItemXml() {
  gen::ItemsGenOptions options;
  options.doc_count = 1;
  options.large_docs = true;
  options.seed = 11;
  auto coll = gen::GenerateItems(options, nullptr);
  return xml::Serialize(*coll->docs()[0]);
}

void BM_ParseXml(benchmark::State& state) {
  auto pool = std::make_shared<xml::NamePool>();
  std::string xml = SampleItemXml();
  for (auto _ : state) {
    auto doc = xml::ParseXml(pool, "bench", xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(xml.size()));
}
BENCHMARK(BM_ParseXml);

void BM_SerializeXml(benchmark::State& state) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = xml::ParseXml(pool, "bench", SampleItemXml());
  for (auto _ : state) {
    std::string out = xml::Serialize(**doc);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SerializeXml);

void BM_PathEvalChild(benchmark::State& state) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = xml::ParseXml(pool, "bench", SampleItemXml());
  auto path = xpath::Path::Parse("/Item/PictureList/Picture");
  for (auto _ : state) {
    auto nodes = xpath::EvalPath(**doc, *path);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_PathEvalChild);

void BM_PathEvalDescendant(benchmark::State& state) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = xml::ParseXml(pool, "bench", SampleItemXml());
  auto path = xpath::Path::Parse("//Description");
  for (auto _ : state) {
    auto nodes = xpath::EvalPath(**doc, *path);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_PathEvalDescendant);

void BM_QueryParse(benchmark::State& state) {
  const std::string query =
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" and contains($i/Description, \"good\") "
      "return <r>{ $i/Name }{ count($i/Characteristics) }</r>";
  for (auto _ : state) {
    auto ast = xquery::ParseQuery(query);
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_QueryParse);

void BM_TextIndexProbe(benchmark::State& state) {
  gen::ItemsGenOptions options;
  options.doc_count = 256;
  options.seed = 12;
  auto coll = gen::GenerateItems(options, nullptr);
  storage::TextIndex index;
  for (size_t i = 0; i < coll->docs().size(); ++i) {
    index.AddDocument(storage::DocSlot(i), *coll->docs()[i]);
  }
  for (auto _ : state) {
    auto candidates = index.CandidatesForContains("good");
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_TextIndexProbe);

void BM_ProjectDocument(benchmark::State& state) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = xml::ParseXml(pool, "bench", SampleItemXml());
  auto path = xpath::Path::Parse("/Item");
  auto prune = xpath::Path::Parse("/Item/PictureList");
  for (auto _ : state) {
    auto projected = frag::ProjectDocument(**doc, *path, {*prune}, "f");
    benchmark::DoNotOptimize(projected);
  }
}
BENCHMARK(BM_ProjectDocument);

/// Ablation: the same scan query with the parse cache enabled vs disabled
/// — the cost model behind the FragMode1/FragMode2 result.
void BM_ScanQuery(benchmark::State& state) {
  const bool cache = state.range(0) != 0;
  xdb::DatabaseOptions options;
  options.cache_capacity_bytes = cache ? (size_t{64} << 20) : 0;
  xdb::Database db(options);
  (void)db.CreateCollection("items");
  gen::ItemsGenOptions gen_options;
  gen_options.doc_count = 128;
  gen_options.seed = 13;
  auto coll = gen::GenerateItems(gen_options, nullptr);
  for (const auto& doc : coll->docs()) {
    (void)db.StoreDocument("items", *doc);
  }
  const std::string query =
      "count(for $i in collection(\"items\")/Item "
      "where $i/Code >= 0 return $i)";
  for (auto _ : state) {
    auto result = db.Execute(query);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(cache ? "parse-cache=on" : "parse-cache=off");
}
BENCHMARK(BM_ScanQuery)->Arg(1)->Arg(0);

void BM_ApplyFragmentation(benchmark::State& state) {
  gen::ItemsGenOptions options;
  options.doc_count = 256;
  options.seed = 14;
  auto coll = gen::GenerateItems(options, nullptr);
  frag::FragmentationSchema schema;
  schema.collection = "items";
  auto mu_cd = xpath::Conjunction::Parse("/Item/Section = \"CD\"");
  auto mu_rest = xpath::Conjunction::Parse("/Item/Section != \"CD\"");
  schema.fragments.emplace_back(frag::HorizontalDef{"f1", *mu_cd});
  schema.fragments.emplace_back(frag::HorizontalDef{"f2", *mu_rest});
  for (auto _ : state) {
    auto fragments = frag::ApplyFragmentation(*coll, schema);
    benchmark::DoNotOptimize(fragments);
  }
}
BENCHMARK(BM_ApplyFragmentation);

void BM_DecomposeQuery(benchmark::State& state) {
  middleware::DistributionCatalog catalog;
  frag::FragmentationSchema schema;
  schema.collection = "items";
  std::vector<middleware::FragmentPlacement> placements;
  for (int f = 0; f < 8; ++f) {
    auto mu = xpath::Conjunction::Parse(
        "/Item/Code >= " + std::to_string(f * 100) + " and /Item/Code < " +
        std::to_string((f + 1) * 100));
    schema.fragments.emplace_back(
        frag::HorizontalDef{"f" + std::to_string(f), *mu});
    placements.push_back(
        middleware::FragmentPlacement{"f" + std::to_string(f),
                                      static_cast<size_t>(f)});
  }
  (void)catalog.Register(schema, placements);
  middleware::QueryDecomposer decomposer(&catalog);
  const std::string query =
      "for $i in collection(\"items\")/Item "
      "where $i/Code >= 250 and $i/Code < 320 return $i/Name";
  for (auto _ : state) {
    auto plan = decomposer.Decompose(query);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_DecomposeQuery);

void BM_CorrectnessCheck(benchmark::State& state) {
  gen::ItemsGenOptions options;
  options.doc_count = 128;
  options.seed = 15;
  options.large_docs = true;
  auto coll = gen::GenerateItems(options, nullptr);
  frag::FragmentationSchema schema;
  schema.collection = "items";
  auto item = xpath::Path::Parse("/Item");
  auto pics = xpath::Path::Parse("/Item/PictureList");
  schema.fragments.emplace_back(frag::VerticalDef{"f1", *item, {*pics}});
  schema.fragments.emplace_back(frag::VerticalDef{"f2", *pics, {}});
  for (auto _ : state) {
    auto report = frag::CheckCorrectness(*coll, schema);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CorrectnessCheck);

}  // namespace

BENCHMARK_MAIN();
