// Reproduces paper Fig. 7(d): query response times on database StoreHyb
// (the Cstore SD document), hybrid-fragmented into 4 per-section Item
// fragments plus the pruned store fragment, in both materializations:
//
//   FragMode1: each selected Item stored as an independent document
//   FragMode2: a single pruned document per fragment
//
// and both with (-T) and without (-NT) the transmission-time model, versus
// the centralized database — the series of the paper's figure.
//
// Shapes to reproduce: FragMode1 loses badly on parse-heavy access
// (hundreds of small documents); FragMode2 beats centralized in most
// cases; queries returning whole items (Q6, Q7) are transmission-bound;
// Q9/Q10 (pruned fragment) and Q11 (aggregation) always win.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

using namespace partix;  // bench binary: brevity over style here

int main() {
  const double scale = workload::ScaleFromEnv();
  gen::StoreGenOptions options;
  options.seed = 20060104;
  options.large_items = true;
  auto store = gen::GenerateStoreBySize(
      options, static_cast<uint64_t>((uint64_t{8} << 20) * scale), nullptr);
  if (!store.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Fig 7(d) - StoreHyb, hybrid fragmentation, FragMode1 vs FragMode2, "
      "with (T) and without (NT) transmission\ndatabase: 1 store document, "
      "%s\n",
      HumanBytes(store->ApproxBytes()).c_str());

  const std::vector<workload::QuerySpec> queries =
      workload::HybridQueries(store->name());
  const size_t runs = workload::RunsFromEnv(3);

  xdb::DatabaseOptions node_options;
  // The paper's memory regime: the centralized database exceeds the parse
  // cache; fragments fit (see EXPERIMENTS.md).
  node_options.cache_capacity_bytes =
      std::max<uint64_t>(uint64_t{1} << 20, static_cast<uint64_t>((uint64_t{8} << 20) * scale) / 3);
  middleware::NetworkModel network;

  std::vector<std::string> series_names;
  std::vector<std::vector<workload::Measurement>> series;

  auto run_series = [&](const std::string& name,
                        workload::Deployment* deployment,
                        bool transmission) -> bool {
    workload::MeasureOptions m;
    m.runs = runs;
    m.include_transmission = transmission;
    // Cold runs: every query pays document materialization, exposing the
    // per-document overhead that makes FragMode1 "very inefficient" in the
    // paper ("the query processor has to parse hundreds of small
    // documents").
    m.cold = true;
    std::vector<workload::Measurement> row;
    for (const workload::QuerySpec& q : queries) {
      auto result = workload::Measure(deployment, q, m);
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", name.c_str(),
                     q.id.c_str(), result.status().ToString().c_str());
        return false;
      }
      row.push_back(*result);
    }
    series_names.push_back(name);
    series.push_back(std::move(row));
    return true;
  };

  auto central =
      workload::Deployment::Centralized(*store, node_options, network);
  if (!central.ok() ||
      !run_series("centralized", central->get(), true)) {
    return 1;
  }

  for (frag::HybridMode mode : {frag::HybridMode::kOneDocPerSubtree,
                                frag::HybridMode::kSinglePrunedDoc}) {
    auto schema = workload::StoreHybridSchema(store->name(),
                                              options.sections, 4, mode);
    if (!schema.ok()) {
      std::fprintf(stderr, "schema failed: %s\n",
                   schema.status().ToString().c_str());
      return 1;
    }
    auto deployment = workload::Deployment::Fragmented(
        *store, *schema, node_options, network);
    if (!deployment.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   deployment.status().ToString().c_str());
      return 1;
    }
    const char* base =
        mode == frag::HybridMode::kOneDocPerSubtree ? "FragMode1"
                                                    : "FragMode2";
    if (!run_series(std::string(base) + "-T", deployment->get(), true) ||
        !run_series(std::string(base) + "-NT", deployment->get(), false)) {
      return 1;
    }
  }

  workload::PrintTable("Fig 7(d) - hybrid fragmentation over the SD store",
                       series_names, series, queries);
  std::printf("\nqueries:\n");
  for (const workload::QuerySpec& q : queries) {
    std::printf("  %-4s %s\n", q.id.c_str(), q.description.c_str());
  }
  return 0;
}
