// Reproduces paper Fig. 7(b): query response times on database ItemsLHor
// (Citems with ~80 KB documents including PictureList and PricesHistory),
// horizontally fragmented by /Item/Section into 2/4/8 fragments, versus
// the centralized database.
//
// The paper's observation to reproduce: with large documents the engine
// pays far fewer per-document parse overheads, so the centralized baseline
// is much faster than ItemsSHor at equal database size, and fewer
// fragments already capture most of the gain.

#include "bench/horizontal_common.h"

int main() {
  partix::gen::ItemsGenOptions options;
  options.seed = 20060102;
  options.large_docs = true;
  return partix::bench::RunHorizontalExperiment(
      "Fig 7(b) - ItemsLHor, horizontal fragmentation, large (~80KB) "
      "documents",
      options, uint64_t{8} << 20);
}
