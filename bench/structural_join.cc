// Structural labeling index bench (see docs/structural-index.md).
//
// Two comparisons, both against the paper's Fig. 7(c) vertical setting —
// the Q8/Q9 negative result where reconstruction dominates:
//
//   1. Query evaluation: the vertical workload over a fragmented
//      deployment with DatabaseOptions::enable_structural_index on vs
//      off. "On" answers descendant/child steps with sorted label-range
//      scans; "off" is the navigational baseline. Results must be
//      byte-identical.
//
//   2. Reconstruction: JoinFragments (label merge over origin preorder
//      ids) vs JoinFragmentsValueJoin (the id-keyed map the paper's
//      vertical composition degenerates into), rebuilding every source
//      article from its vertical fragments. Outputs must be
//      byte-identical.
//
// Output: stdout tables plus BENCH_structural_join.json in bench-out/.
// Env knobs: PARTIX_SCALE (database size multiplier), PARTIX_RUNS
// (hot-loop repetitions), PARTIX_SMOKE=1 (tiny quick run).
// Exits non-zero on any byte mismatch.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_out.h"
#include "common/strings.h"
#include "engine/database.h"
#include "fragmentation/algebra.h"
#include "fragmentation/fragmenter.h"
#include "gen/xbench.h"
#include "telemetry/metrics.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xml/serializer.h"

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                   start)
      .count();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

struct QueryCell {
  std::string id;
  double on_ms = 0.0;    // structural index enabled
  double off_ms = 0.0;   // navigational baseline
  uint64_t range_scans = 0;
  uint64_t range_hits = 0;
  bool identical = true;
};

}  // namespace

int main() {
  using namespace partix;

  const bool smoke = [] {
    const char* env = std::getenv("PARTIX_SMOKE");
    return env != nullptr && env[0] == '1';
  }();
  const double scale = workload::ScaleFromEnv();
  const size_t runs = workload::RunsFromEnv(smoke ? 2 : 5);

  gen::XBenchGenOptions gen_options;
  gen_options.seed = 20060106;
  gen_options.doc_count = smoke ? 4 : 12;
  gen_options.target_doc_bytes = static_cast<uint64_t>(
      (smoke ? 20 * 1024 : 160 * 1024) * (scale > 0 ? scale : 1.0));
  auto articles = gen::GenerateArticles(gen_options, nullptr);
  if (!articles.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 articles.status().ToString().c_str());
    return 1;
  }
  auto schema = workload::ArticleVerticalSchema(articles->name());
  if (!schema.ok()) {
    std::fprintf(stderr, "schema failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Structural-join bench - vertical design, %zu fragments\n"
      "database: %zu articles, %s serialized, %zu run(s)\n\n",
      schema->fragments.size(), articles->size(),
      HumanBytes(articles->ApproxBytes()).c_str(), runs);

  telemetry::MetricsRegistry::Global().set_enabled(true);
  telemetry::MetricsRegistry::Global().Reset();

  // ---- Part 1: index-backed vs navigational query evaluation ----------

  xdb::DatabaseOptions with_index;
  with_index.enable_structural_index = true;
  xdb::DatabaseOptions without_index;
  without_index.enable_structural_index = false;

  auto indexed = workload::Deployment::Fragmented(
      *articles, *schema, with_index, middleware::NetworkModel());
  auto navigational = workload::Deployment::Fragmented(
      *articles, *schema, without_index, middleware::NetworkModel());
  if (!indexed.ok() || !navigational.ok()) {
    std::fprintf(stderr, "deploy failed\n");
    return 1;
  }

  bool all_identical = true;
  std::vector<QueryCell> cells;
  for (const workload::QuerySpec& q :
       workload::VerticalQueries(articles->name())) {
    QueryCell cell;
    cell.id = q.id;
    std::string on_bytes;
    std::string off_bytes;
    for (size_t run = 0; run <= runs; ++run) {
      auto start = SteadyClock::now();
      auto on = (*indexed)->service().Execute(q.text);
      const double on_ms = MsSince(start);
      start = SteadyClock::now();
      auto off = (*navigational)->service().Execute(q.text);
      const double off_ms = MsSince(start);
      if (!on.ok() || !off.ok()) {
        std::fprintf(stderr, "%s failed: %s / %s\n", q.id.c_str(),
                     on.status().ToString().c_str(),
                     off.status().ToString().c_str());
        return 1;
      }
      if (run == 0) {  // warm-up primes store caches on both sides
        on_bytes = on->serialized;
        off_bytes = off->serialized;
        continue;
      }
      cell.on_ms += on_ms;
      cell.off_ms += off_ms;
    }
    cell.on_ms /= static_cast<double>(runs);
    cell.off_ms /= static_cast<double>(runs);
    cell.identical = on_bytes == off_bytes;
    if (!cell.identical) {
      all_identical = false;
      std::fprintf(stderr, "MISMATCH: %s differs with index on vs off\n",
                   q.id.c_str());
    }
    cells.push_back(cell);
  }

  std::printf("%-5s  %12s  %12s  %8s  %s\n", "query", "index on",
              "index off", "speedup", "identical");
  double on_total = 0.0;
  double off_total = 0.0;
  for (const QueryCell& cell : cells) {
    on_total += cell.on_ms;
    off_total += cell.off_ms;
    std::printf("%-5s  %9.3f ms  %9.3f ms  %7.2fx  %s\n", cell.id.c_str(),
                cell.on_ms, cell.off_ms,
                cell.on_ms > 0 ? cell.off_ms / cell.on_ms : 0.0,
                cell.identical ? "yes" : "NO");
  }
  const double query_speedup = on_total > 0 ? off_total / on_total : 0.0;
  std::printf("total  %9.3f ms  %9.3f ms  %7.2fx\n\n", on_total, off_total,
              query_speedup);

  // ---- Part 1b: engine-level axis steps, index on vs off --------------
  //
  // The middleware rows above fold decomposition, the network model and
  // composition into every measurement; this part isolates the axis join
  // itself: one engine holding every article, descendant-heavy queries,
  // hot loop. "On" answers the descendant step from the document's sorted
  // name-occurrence list; "off" walks the whole subtree.

  struct EngineCell {
    std::string text;
    double on_ms = 0.0;
    double off_ms = 0.0;
    bool identical = true;
  };
  std::vector<EngineCell> engine_cells;
  {
    const std::string c = articles->name();
    const std::vector<std::string> engine_queries = {
        "count(collection(\"" + c + "\")//paragraph)",
        "collection(\"" + c + "\")//author/name",
        "count(collection(\"" + c + "\")//section/heading)",
        "count(collection(\"" + c + "\")/article/body/section)",
    };
    xdb::Database on_db(with_index);
    xdb::Database off_db(without_index);
    if (!on_db.StoreCollection(*articles).ok() ||
        !off_db.StoreCollection(*articles).ok()) {
      std::fprintf(stderr, "engine store failed\n");
      return 1;
    }
    for (const std::string& text : engine_queries) {
      EngineCell cell;
      cell.text = text;
      std::string on_bytes;
      std::string off_bytes;
      for (size_t run = 0; run <= runs; ++run) {
        auto start = SteadyClock::now();
        auto on = on_db.Execute(text);
        const double on_ms = MsSince(start);
        start = SteadyClock::now();
        auto off = off_db.Execute(text);
        const double off_ms = MsSince(start);
        if (!on.ok() || !off.ok()) {
          std::fprintf(stderr, "engine query failed: %s\n", text.c_str());
          return 1;
        }
        if (run == 0) {
          on_bytes = on->serialized;
          off_bytes = off->serialized;
          continue;
        }
        cell.on_ms += on_ms;
        cell.off_ms += off_ms;
      }
      cell.on_ms /= static_cast<double>(runs);
      cell.off_ms /= static_cast<double>(runs);
      cell.identical = on_bytes == off_bytes;
      if (!cell.identical) {
        all_identical = false;
        std::fprintf(stderr, "MISMATCH: engine query %s\n", text.c_str());
      }
      engine_cells.push_back(cell);
    }
  }
  std::printf("engine-level axis steps (one node, whole collection):\n");
  double engine_on_total = 0.0;
  double engine_off_total = 0.0;
  for (const EngineCell& cell : engine_cells) {
    engine_on_total += cell.on_ms;
    engine_off_total += cell.off_ms;
    std::printf("  %-52s  %8.3f ms  %8.3f ms  %6.2fx  %s\n",
                cell.text.c_str(), cell.on_ms, cell.off_ms,
                cell.on_ms > 0 ? cell.off_ms / cell.on_ms : 0.0,
                cell.identical ? "yes" : "NO");
  }
  const double engine_speedup =
      engine_on_total > 0 ? engine_off_total / engine_on_total : 0.0;
  std::printf("  total %60.3f ms  %8.3f ms  %6.2fx\n\n", engine_on_total,
              engine_off_total, engine_speedup);

  // ---- Part 2: label-merge vs value-join reconstruction ---------------

  auto fragments = frag::ApplyFragmentation(*articles, *schema);
  if (!fragments.ok()) {
    std::fprintf(stderr, "fragmentation failed: %s\n",
                 fragments.status().ToString().c_str());
    return 1;
  }
  // Group the fragment documents by source article, as ReconstructVertical
  // does, so the two join implementations see identical inputs.
  std::map<std::string, std::vector<xml::DocumentPtr>> groups;
  for (const xml::Collection& fragment : *fragments) {
    for (const xml::DocumentPtr& doc : fragment.docs()) {
      groups[doc->origin_doc()].push_back(doc);
    }
  }
  auto pool = articles->docs()[0]->pool();

  double merge_ms = 0.0;
  double join_ms = 0.0;
  bool joins_identical = true;
  for (size_t run = 0; run < runs; ++run) {
    std::vector<std::string> merge_bytes;
    auto start = SteadyClock::now();
    for (const auto& [source, docs] : groups) {
      auto rebuilt = frag::JoinFragments(docs, pool);
      if (!rebuilt.ok()) {
        std::fprintf(stderr, "label merge failed: %s\n",
                     rebuilt.status().ToString().c_str());
        return 1;
      }
      merge_bytes.push_back(xml::Serialize(**rebuilt));
    }
    merge_ms += MsSince(start);

    std::vector<std::string> join_bytes;
    start = SteadyClock::now();
    for (const auto& [source, docs] : groups) {
      auto rebuilt = frag::JoinFragmentsValueJoin(docs, pool);
      if (!rebuilt.ok()) {
        std::fprintf(stderr, "value join failed: %s\n",
                     rebuilt.status().ToString().c_str());
        return 1;
      }
      join_bytes.push_back(xml::Serialize(**rebuilt));
    }
    join_ms += MsSince(start);

    if (merge_bytes != join_bytes) {
      joins_identical = false;
      all_identical = false;
      std::fprintf(stderr,
                   "MISMATCH: label merge and value join diverge\n");
    }
  }
  merge_ms /= static_cast<double>(runs);
  join_ms /= static_cast<double>(runs);
  const double join_speedup = merge_ms > 0 ? join_ms / merge_ms : 0.0;

  std::printf("reconstruction of %zu article(s) from %zu fragment(s):\n",
              groups.size(), schema->fragments.size());
  std::printf("  label merge  %9.3f ms\n  value join   %9.3f ms\n"
              "  speedup      %8.2fx   identical: %s\n\n",
              merge_ms, join_ms, join_speedup,
              joins_identical ? "yes" : "NO");

  // ---- JSON artifact --------------------------------------------------

  std::string json;
  json += "{\n  \"bench\": \"structural_join\",\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  \"articles\": %zu,\n  \"fragments\": %zu,\n"
                "  \"runs\": %zu,\n  \"queries\": [\n",
                articles->size(), schema->fragments.size(), runs);
  json += buffer;
  for (size_t i = 0; i < cells.size(); ++i) {
    const QueryCell& cell = cells[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    { \"id\": \"%s\", \"index_on_ms\": %.3f, "
                  "\"index_off_ms\": %.3f, \"identical\": %s }%s\n",
                  cell.id.c_str(), cell.on_ms, cell.off_ms,
                  cell.identical ? "true" : "false",
                  i + 1 < cells.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n  \"engine_queries\": [\n";
  for (size_t i = 0; i < engine_cells.size(); ++i) {
    const EngineCell& cell = engine_cells[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    { \"query\": \"%s\", \"index_on_ms\": %.3f, "
                  "\"index_off_ms\": %.3f, \"identical\": %s }%s\n",
                  EscapeJson(cell.text).c_str(), cell.on_ms, cell.off_ms,
                  cell.identical ? "true" : "false",
                  i + 1 < engine_cells.size() ? "," : "");
    json += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"query_speedup\": %.3f,\n"
                "  \"engine_step_speedup\": %.3f,\n"
                "  \"label_merge_ms\": %.3f,\n  \"value_join_ms\": %.3f,\n"
                "  \"reconstruction_speedup\": %.3f,\n"
                "  \"identical\": %s\n}\n",
                query_speedup, engine_speedup, merge_ms, join_ms,
                join_speedup, all_identical ? "true" : "false");
  json += buffer;
  if (!bench::WriteBenchFile("BENCH_structural_join.json", json)) return 1;

  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  std::printf("\nkey counters:\n");
  for (const char* name : {"partix_structural_index_probes_total",
                           "partix_structural_index_hits_total"}) {
    auto it = snapshot.counters.find(name);
    std::printf("  %-42s %llu\n", name,
                it == snapshot.counters.end()
                    ? 0ull
                    : static_cast<unsigned long long>(it->second));
  }
  return all_identical ? 0 : 1;
}
