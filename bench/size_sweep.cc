// Reproduces the paper's database-size sweep (§5 ran every experiment at
// 5/20/100/250 MB, plus 500 MB for ItemsLHor/StoreHyb, and observed that
// "in small databases the performance gain obtained is not enough to
// justify the use of fragmentation").
//
// This bench runs two representative horizontal queries (Q2: localized
// selection; Q8: count over a text search) at a geometric ladder of
// database sizes and prints the speed-up of a 4-fragment deployment over
// centralized at each size — the gain should grow with the database.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"

using namespace partix;  // bench binary: brevity over style here

int main() {
  const double scale = workload::ScaleFromEnv();
  const std::vector<uint64_t> sizes = {
      static_cast<uint64_t>((uint64_t{64} << 10) * scale),
      static_cast<uint64_t>((uint64_t{256} << 10) * scale),
      static_cast<uint64_t>((uint64_t{1} << 20) * scale),
      static_cast<uint64_t>((uint64_t{4} << 20) * scale),
      static_cast<uint64_t>((uint64_t{16} << 20) * scale),
  };

  std::printf("Database-size sweep - ItemsSHor, 4 horizontal fragments\n");
  std::printf("%-10s %14s %14s %10s %14s %14s %10s\n", "size",
              "Q2 central", "Q2 4-frag", "Q2 gain", "Q8 central",
              "Q8 4-frag", "Q8 gain");

  workload::MeasureOptions measure;
  measure.runs = workload::RunsFromEnv(3);
  middleware::NetworkModel network;

  for (uint64_t size : sizes) {
    gen::ItemsGenOptions options;
    options.seed = 20060106;
    options.large_docs = false;
    auto items = gen::GenerateItemsBySize(options, size, nullptr);
    xdb::DatabaseOptions node_options;
    // Proportional cache (no floor): keeps cache behaviour scale-invariant
    // so the small-database end isolates the fixed distributed overheads.
    node_options.cache_capacity_bytes =
        std::max<uint64_t>(uint64_t{64} << 10, size / 6);
    if (!items.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    const std::vector<workload::QuerySpec> queries =
        workload::HorizontalQueries(items->name());
    const workload::QuerySpec* q2 = workload::FindQuery(queries, "Q2");
    const workload::QuerySpec* q8 = workload::FindQuery(queries, "Q8");

    auto central =
        workload::Deployment::Centralized(*items, node_options, network);
    auto schema = workload::SectionHorizontalSchema(
        items->name(), options.sections, 4);
    if (!central.ok() || !schema.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    auto fragmented = workload::Deployment::Fragmented(
        *items, *schema, node_options, network);
    if (!fragmented.ok()) {
      std::fprintf(stderr, "deploy failed\n");
      return 1;
    }

    auto mc2 = workload::Measure(central->get(), *q2, measure);
    auto mf2 = workload::Measure(fragmented->get(), *q2, measure);
    auto mc8 = workload::Measure(central->get(), *q8, measure);
    auto mf8 = workload::Measure(fragmented->get(), *q8, measure);
    if (!mc2.ok() || !mf2.ok() || !mc8.ok() || !mf8.ok()) {
      std::fprintf(stderr, "measurement failed\n");
      return 1;
    }
    std::printf("%-10s %11.2f ms %11.2f ms %9.1fx %11.2f ms %11.2f ms "
                "%9.1fx\n",
                HumanBytes(size).c_str(), mc2->response_ms,
                mf2->response_ms,
                mf2->response_ms > 0 ? mc2->response_ms / mf2->response_ms
                                     : 0.0,
                mc8->response_ms, mf8->response_ms,
                mf8->response_ms > 0 ? mc8->response_ms / mf8->response_ms
                                     : 0.0);
  }
  return 0;
}
