#!/usr/bin/env bash
# Tier-1 verification across sanitizer configurations.
#
# Runs the full test suite three times:
#   plain    - the default RelWithDebInfo build (the tier-1 gate)
#   thread   - ThreadSanitizer        (-DPARTIX_SANITIZE=thread)
#   address  - ASan + UBSan composite (-DPARTIX_SANITIZE=address)
#
# Usage: scripts/check.sh [plain|thread|address]...
#   No arguments runs all three. Build trees are build-check-<config>/
#   so an existing build/ directory is left untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(plain thread address)
fi

jobs=$(nproc 2>/dev/null || echo 2)

echo "== markdown link check =="
scripts/check_links.sh

for config in "${configs[@]}"; do
  dir="build-check-${config}"
  flags=()
  case "$config" in
    plain) ;;
    thread) flags+=(-DPARTIX_SANITIZE=thread) ;;
    address) flags+=(-DPARTIX_SANITIZE=address) ;;
    *)
      echo "unknown config: $config (want plain|thread|address)" >&2
      exit 2
      ;;
  esac
  echo "== ${config}: configure + build (${dir}) =="
  cmake -B "$dir" -S . "${flags[@]}" >/dev/null
  cmake --build "$dir" -j "$jobs"
  echo "== ${config}: ctest =="
  # --timeout keeps a hung test (deadlock under TSan, runaway retry loop)
  # from stalling CI forever; 300s is ~100x the healthy full-suite time.
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" --timeout 300
  echo "== ${config}: concurrent scheduler stress (explicit) =="
  # Re-run the multi-threaded admission/execution tests by name so a
  # filter change in the suite can never silently drop the concurrency
  # coverage this config (especially thread) exists for.
  "$dir"/tests/partix_tests \
    --gtest_filter='*Concurrent*:*Scheduler*:*Fairness*'
  if [ "$config" = plain ]; then
    echo "== ${config}: memory density smoke =="
    # Gates the memory-governance subsystem: >= 30% fewer allocations per
    # parsed document with the arena pool, zero failures under a tiny
    # budget, byte-identical answers with governance on vs off.
    (cd "$dir"/bench && PARTIX_SMOKE=1 ./memory_density)
    echo "== ${config}: intra-node morsel smoke =="
    # Identity gate for intra-node morsel parallelism: localized queries
    # must answer byte-identically at morsels 1/2/4/8 (the 2x speedup
    # gate runs only in full mode on multi-core hosts).
    (cd "$dir"/bench && PARTIX_SMOKE=1 ./intra_node_speedup)
    echo "== ${config}: streaming TTFB smoke =="
    # Gates the streaming result pipeline: byte-identical answers
    # streaming vs materialized, streaming TTFB p50 strictly below the
    # materialized wall on the union workload, and peak governed bytes
    # below 80% of the double-charge baseline.
    (cd "$dir"/bench && PARTIX_SMOKE=1 ./streaming_ttfb)
  fi
done

echo "== all configs passed: ${configs[*]} =="
