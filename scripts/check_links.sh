#!/usr/bin/env bash
# Markdown link checker: every relative link target in the tracked
# markdown pages must resolve to an existing file or directory.
#
# Scope: *.md at the repository root plus docs/*.md. External links
# (http/https/mailto) and pure in-page anchors (#...) are skipped;
# a trailing #anchor on a file link is stripped before the existence
# check. No dependencies beyond bash + grep.
set -euo pipefail

cd "$(dirname "$0")/.."

failures=0
checked=0

for md in ./*.md docs/*.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Inline links: capture the (...) target of [text](target). Reference
  # definitions ([id]: target) are rare here; grep them separately.
  targets=$(
    { grep -oE '\]\([^)]+\)' "$md" || true; } | sed -e 's/^](//' -e 's/)$//'
    { grep -oE '^\[[^]]+\]:[[:space:]]+[^[:space:]]+' "$md" || true; } |
      sed -E 's/^\[[^]]+\]:[[:space:]]+//'
  )
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;   # external
      '#'*) continue ;;                          # in-page anchor
    esac
    path="${target%%#*}"                         # strip #anchor
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target" >&2
      failures=$((failures + 1))
    fi
    checked=$((checked + 1))
  done <<<"$targets"
done

if [ "$failures" -ne 0 ]; then
  echo "markdown link check: $failures broken link(s)" >&2
  exit 1
fi
echo "markdown link check: $checked relative link(s) OK"
