#include "xpath/path.h"

#include <cctype>

#include "common/strings.h"

namespace partix::xpath {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

StepStrategy StaticStepStrategy(const Step& step) {
  if (step.wildcard || step.position > 0) return StepStrategy::kNavigate;
  if (step.axis == Axis::kDescendant) return StepStrategy::kLabelRange;
  return StepStrategy::kDynamic;
}

Result<Path> Path::Parse(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty() || text[0] != '/') {
    return Status::InvalidArgument("path must start with '/': '" +
                                   std::string(text) + "'");
  }
  std::vector<Step> steps;
  size_t i = 0;
  while (i < text.size()) {
    Step step;
    // Axis.
    if (text[i] != '/') {
      return Status::InvalidArgument("expected '/' in path: '" +
                                     std::string(text) + "'");
    }
    ++i;
    if (i < text.size() && text[i] == '/') {
      step.axis = Axis::kDescendant;
      ++i;
    }
    if (i >= text.size()) {
      return Status::InvalidArgument("path ends with '/': '" +
                                     std::string(text) + "'");
    }
    // Node test.
    if (text[i] == '@') {
      step.is_attribute = true;
      ++i;
    }
    if (i < text.size() && text[i] == '*') {
      step.wildcard = true;
      ++i;
    } else {
      size_t start = i;
      while (i < text.size() && IsNameChar(text[i])) ++i;
      if (i == start) {
        return Status::InvalidArgument("expected a name in path: '" +
                                       std::string(text) + "'");
      }
      step.name = std::string(text.substr(start, i - start));
    }
    // Optional positional filter.
    if (i < text.size() && text[i] == '[') {
      size_t close = text.find(']', i);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated '[' in path: '" +
                                       std::string(text) + "'");
      }
      int64_t pos = 0;
      if (!ParseInt64(text.substr(i + 1, close - i - 1), &pos) || pos < 1) {
        return Status::InvalidArgument(
            "positional filter must be a positive integer: '" +
            std::string(text) + "'");
      }
      if (step.is_attribute) {
        return Status::InvalidArgument(
            "positional filter not allowed on attributes: '" +
            std::string(text) + "'");
      }
      step.position = static_cast<int>(pos);
      i = close + 1;
    }
    if (step.is_attribute && i < text.size()) {
      return Status::InvalidArgument(
          "attribute test must be the last step: '" + std::string(text) +
          "'");
    }
    steps.push_back(std::move(step));
  }
  if (steps.empty()) {
    return Status::InvalidArgument("empty path");
  }
  return Path(std::move(steps));
}

std::string Path::ToString() const {
  std::string out;
  for (const Step& s : steps_) {
    out += s.axis == Axis::kDescendant ? "//" : "/";
    if (s.is_attribute) out += "@";
    out += s.wildcard ? "*" : s.name;
    if (s.position > 0) {
      out += "[" + std::to_string(s.position) + "]";
    }
  }
  return out;
}

bool Path::IsPrefixOf(const Path& other) const {
  if (steps_.size() > other.steps_.size()) return false;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (!(steps_[i] == other.steps_[i])) return false;
  }
  return true;
}

Path Path::Suffix(size_t from) const {
  if (from >= steps_.size()) return Path();
  return Path(std::vector<Step>(steps_.begin() + from, steps_.end()));
}

std::string Path::LastName() const {
  if (steps_.empty()) return "";
  const Step& s = steps_.back();
  return s.wildcard ? "*" : s.name;
}

}  // namespace partix::xpath
