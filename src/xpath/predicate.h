#ifndef PARTIX_XPATH_PREDICATE_H_
#define PARTIX_XPATH_PREDICATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/document.h"
#include "xpath/path.h"

namespace partix::xpath {

/// Comparison operators θ ∈ {=, ≠, <, ≤, >, ≥} of simple predicates.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

/// A simple predicate p (paper §3.1):
///   p := P θ value | φv(P) θ value | φb(P) | Q
/// where P is a terminal path expression and Q an arbitrary path
/// (existential test). Supported boolean functions: contains(P, s) and
/// empty(P); `negated` wraps the predicate in not(...), so empty(P) is
/// represented as a negated existential test.
class Predicate {
 public:
  enum class Kind {
    kCompare,   // P θ value
    kContains,  // contains(P, "s")
    kExists,    // Q  (existential test)
  };

  /// P θ "value" (string or numeric comparison; if both sides parse as
  /// numbers the comparison is numeric).
  static Predicate Compare(Path path, CompareOp op, std::string value);

  /// contains(P, "needle") — substring containment on the string value.
  static Predicate Contains(Path path, std::string needle);

  /// not(contains(P, "needle")).
  static Predicate NotContains(Path path, std::string needle);

  /// Existential test: true iff P selects at least one node.
  static Predicate Exists(Path path);

  /// empty(P) == not(exists P).
  static Predicate Empty(Path path);

  /// Parses the textual forms used by fragment catalogs:
  ///   /Item/Section = "CD"
  ///   /Item/Code >= 100
  ///   contains(//Description, "good")
  ///   not(contains(//Description, "good"))
  ///   /Item/PictureList
  ///   empty(/Item/PictureList)
  static Result<Predicate> Parse(std::string_view text);

  /// Evaluates against a whole document (paths are absolute).
  /// Comparison/contains semantics are existential over the nodes P
  /// selects, matching XPath general comparisons.
  bool Eval(const xml::Document& doc) const;

  /// Evaluates with paths interpreted relative to `context`.
  bool EvalFrom(const xml::Document& doc, xml::NodeId context) const;

  /// Evaluates with paths interpreted as absolute over the subtree rooted
  /// at `root` (hybrid-fragmentation instance semantics).
  bool EvalRootedAt(const xml::Document& doc, xml::NodeId root) const;

  Kind kind() const { return kind_; }
  const Path& path() const { return path_; }
  CompareOp op() const { return op_; }
  const std::string& value() const { return value_; }
  bool negated() const { return negated_; }

  /// Returns the logical complement (toggles `negated`; for kCompare,
  /// flips the operator instead, e.g. = becomes ≠).
  Predicate Complement() const;

  std::string ToString() const;

  bool operator==(const Predicate& other) const;

 private:
  Predicate() = default;

  bool EvalOnNodes(const xml::Document& doc,
                   const std::vector<xml::NodeId>& nodes) const;

  Kind kind_ = Kind::kExists;
  Path path_;
  CompareOp op_ = CompareOp::kEq;
  std::string value_;
  bool negated_ = false;
};

/// A conjunction μ of simple predicates — the selection condition of a
/// horizontal fragment. An empty conjunction is `true`.
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<Predicate> preds)
      : preds_(std::move(preds)) {}

  /// Parses "p1 and p2 and ..." (see Predicate::Parse), or "true".
  static Result<Conjunction> Parse(std::string_view text);

  void Add(Predicate p) { preds_.push_back(std::move(p)); }

  const std::vector<Predicate>& predicates() const { return preds_; }
  bool IsTrue() const { return preds_.empty(); }

  bool Eval(const xml::Document& doc) const;
  bool EvalFrom(const xml::Document& doc, xml::NodeId context) const;
  bool EvalRootedAt(const xml::Document& doc, xml::NodeId root) const;

  std::string ToString() const;

 private:
  std::vector<Predicate> preds_;
};

}  // namespace partix::xpath

#endif  // PARTIX_XPATH_PREDICATE_H_
