#include "xpath/predicate.h"

#include "common/strings.h"
#include "xpath/eval.h"

namespace partix::xpath {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Predicate Predicate::Compare(Path path, CompareOp op, std::string value) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.path_ = std::move(path);
  p.op_ = op;
  p.value_ = std::move(value);
  return p;
}

Predicate Predicate::Contains(Path path, std::string needle) {
  Predicate p;
  p.kind_ = Kind::kContains;
  p.path_ = std::move(path);
  p.value_ = std::move(needle);
  return p;
}

Predicate Predicate::NotContains(Path path, std::string needle) {
  Predicate p = Contains(std::move(path), std::move(needle));
  p.negated_ = true;
  return p;
}

Predicate Predicate::Exists(Path path) {
  Predicate p;
  p.kind_ = Kind::kExists;
  p.path_ = std::move(path);
  return p;
}

Predicate Predicate::Empty(Path path) {
  Predicate p = Exists(std::move(path));
  p.negated_ = true;
  return p;
}

namespace {

bool CompareValues(std::string_view node_value, CompareOp op,
                   std::string_view rhs) {
  double a = 0.0;
  double b = 0.0;
  int cmp;
  if (partix::ParseDouble(node_value, &a) && partix::ParseDouble(rhs, &b)) {
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    cmp = node_value.compare(rhs);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

bool Predicate::EvalOnNodes(const xml::Document& doc,
                            const std::vector<xml::NodeId>& nodes) const {
  bool result;
  switch (kind_) {
    case Kind::kExists:
      result = !nodes.empty();
      break;
    case Kind::kCompare: {
      result = false;
      for (xml::NodeId n : nodes) {
        if (CompareValues(doc.StringValue(n), op_, value_)) {
          result = true;
          break;
        }
      }
      break;
    }
    case Kind::kContains: {
      result = false;
      for (xml::NodeId n : nodes) {
        if (partix::Contains(doc.StringValue(n), value_)) {
          result = true;
          break;
        }
      }
      break;
    }
    default:
      result = false;
  }
  return negated_ ? !result : result;
}

bool Predicate::Eval(const xml::Document& doc) const {
  return EvalOnNodes(doc, EvalPath(doc, path_));
}

bool Predicate::EvalFrom(const xml::Document& doc,
                         xml::NodeId context) const {
  return EvalOnNodes(doc, EvalPathFrom(doc, context, path_));
}

bool Predicate::EvalRootedAt(const xml::Document& doc,
                             xml::NodeId root) const {
  return EvalOnNodes(doc, EvalPathRootedAt(doc, root, path_));
}

Predicate Predicate::Complement() const {
  Predicate p = *this;
  if (kind_ == Kind::kCompare && !negated_) {
    switch (op_) {
      case CompareOp::kEq:
        p.op_ = CompareOp::kNe;
        return p;
      case CompareOp::kNe:
        p.op_ = CompareOp::kEq;
        return p;
      case CompareOp::kLt:
        p.op_ = CompareOp::kGe;
        return p;
      case CompareOp::kLe:
        p.op_ = CompareOp::kGt;
        return p;
      case CompareOp::kGt:
        p.op_ = CompareOp::kLe;
        return p;
      case CompareOp::kGe:
        p.op_ = CompareOp::kLt;
        return p;
    }
  }
  p.negated_ = !p.negated_;
  return p;
}

std::string Predicate::ToString() const {
  std::string inner;
  switch (kind_) {
    case Kind::kCompare:
      inner = path_.ToString() + " " + CompareOpName(op_) + " \"" + value_ +
              "\"";
      break;
    case Kind::kContains:
      inner = "contains(" + path_.ToString() + ", \"" + value_ + "\")";
      break;
    case Kind::kExists:
      if (negated_) return "empty(" + path_.ToString() + ")";
      return path_.ToString();
  }
  return negated_ ? "not(" + inner + ")" : inner;
}

bool Predicate::operator==(const Predicate& other) const {
  return kind_ == other.kind_ && path_ == other.path_ && op_ == other.op_ &&
         value_ == other.value_ && negated_ == other.negated_;
}

namespace {

/// Extracts a balanced "f(...)" argument list given `text` positioned right
/// after the opening parenthesis; returns the inside and consumes through
/// the matching close.
Result<std::string_view> BalancedParens(std::string_view text) {
  int depth = 1;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) return text.substr(0, i);
    }
  }
  return Status::InvalidArgument("unbalanced parentheses in predicate");
}

Result<std::string> ParseQuotedString(std::string_view text) {
  text = StripWhitespace(text);
  if (text.size() < 2 || (text.front() != '"' && text.front() != '\'')) {
    return Status::InvalidArgument("expected a quoted string: '" +
                                   std::string(text) + "'");
  }
  char quote = text.front();
  if (text.back() != quote) {
    return Status::InvalidArgument("unterminated string literal: '" +
                                   std::string(text) + "'");
  }
  return std::string(text.substr(1, text.size() - 2));
}

}  // namespace

Result<Predicate> Predicate::Parse(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty predicate");
  }
  // not( ... )
  if (StartsWith(text, "not(") || StartsWith(text, "not (")) {
    size_t open = text.find('(');
    PARTIX_ASSIGN_OR_RETURN(std::string_view inner,
                            BalancedParens(text.substr(open + 1)));
    if (!StripWhitespace(text.substr(open + 1 + inner.size() + 1)).empty()) {
      return Status::InvalidArgument("trailing content after not(...)");
    }
    PARTIX_ASSIGN_OR_RETURN(Predicate p, Parse(inner));
    return p.Complement();
  }
  // empty( P )
  if (StartsWith(text, "empty(") || StartsWith(text, "empty (")) {
    size_t open = text.find('(');
    PARTIX_ASSIGN_OR_RETURN(std::string_view inner,
                            BalancedParens(text.substr(open + 1)));
    PARTIX_ASSIGN_OR_RETURN(Path p, Path::Parse(inner));
    return Empty(std::move(p));
  }
  // contains( P , "s" )
  if (StartsWith(text, "contains(") || StartsWith(text, "contains (")) {
    size_t open = text.find('(');
    PARTIX_ASSIGN_OR_RETURN(std::string_view inner,
                            BalancedParens(text.substr(open + 1)));
    size_t comma = inner.find(',');
    if (comma == std::string_view::npos) {
      return Status::InvalidArgument("contains() needs two arguments");
    }
    PARTIX_ASSIGN_OR_RETURN(Path p, Path::Parse(inner.substr(0, comma)));
    PARTIX_ASSIGN_OR_RETURN(std::string needle,
                            ParseQuotedString(inner.substr(comma + 1)));
    return Contains(std::move(p), std::move(needle));
  }
  // P θ value  — find a comparison operator outside quotes.
  static constexpr struct {
    const char* text;
    CompareOp op;
  } kOps[] = {
      {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
      {"=", CompareOp::kEq},  {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& candidate : kOps) {
    size_t pos = text.find(candidate.text);
    if (pos == std::string_view::npos) continue;
    std::string_view lhs = text.substr(0, pos);
    std::string_view rhs =
        text.substr(pos + std::string_view(candidate.text).size());
    PARTIX_ASSIGN_OR_RETURN(Path p, Path::Parse(lhs));
    rhs = StripWhitespace(rhs);
    std::string value;
    if (!rhs.empty() && (rhs.front() == '"' || rhs.front() == '\'')) {
      PARTIX_ASSIGN_OR_RETURN(value, ParseQuotedString(rhs));
    } else {
      double num;
      if (!ParseDouble(rhs, &num)) {
        return Status::InvalidArgument("bad comparison value: '" +
                                       std::string(rhs) + "'");
      }
      value = std::string(rhs);
    }
    return Compare(std::move(p), candidate.op, std::move(value));
  }
  // Plain path: existential test.
  PARTIX_ASSIGN_OR_RETURN(Path p, Path::Parse(text));
  return Exists(std::move(p));
}

Result<Conjunction> Conjunction::Parse(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty() || text == "true") return Conjunction();
  std::vector<Predicate> preds;
  // Split on " and " at paren depth 0, outside quotes.
  size_t start = 0;
  int depth = 0;
  char quote = '\0';
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    } else if (depth == 0 && text.substr(i, 5) == " and ") {
      PARTIX_ASSIGN_OR_RETURN(Predicate p,
                              Predicate::Parse(text.substr(start, i - start)));
      preds.push_back(std::move(p));
      i += 4;
      start = i + 1;
    }
  }
  PARTIX_ASSIGN_OR_RETURN(Predicate last,
                          Predicate::Parse(text.substr(start)));
  preds.push_back(std::move(last));
  return Conjunction(std::move(preds));
}

bool Conjunction::Eval(const xml::Document& doc) const {
  for (const Predicate& p : preds_) {
    if (!p.Eval(doc)) return false;
  }
  return true;
}

bool Conjunction::EvalFrom(const xml::Document& doc,
                           xml::NodeId context) const {
  for (const Predicate& p : preds_) {
    if (!p.EvalFrom(doc, context)) return false;
  }
  return true;
}

bool Conjunction::EvalRootedAt(const xml::Document& doc,
                               xml::NodeId root) const {
  for (const Predicate& p : preds_) {
    if (!p.EvalRootedAt(doc, root)) return false;
  }
  return true;
}

std::string Conjunction::ToString() const {
  if (preds_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (i > 0) out += " and ";
    out += preds_[i].ToString();
  }
  return out;
}

}  // namespace partix::xpath
