#include "xpath/eval.h"

#include <algorithm>
#include <optional>

namespace partix::xpath {

namespace {

using xml::Document;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

/// Appends the nodes matching `step` under `ctx` by scanning the name's
/// sorted preorder occurrence list inside the context's descendant interval
/// (pre, sub_max]. Child steps additionally filter on level — a descendant
/// of `ctx` at level(ctx)+1 is necessarily a child of `ctx`. Matches are
/// appended in document (pre-) order. Pre: doc.has_labels(), step has a
/// concrete name and no positional filter.
void MatchLabelRange(const Document& doc, NodeId ctx, const Step& step,
                     std::vector<NodeId>* out) {
  const std::optional<xml::NameId> name_id = doc.pool()->Find(step.name);
  if (!name_id) return;  // name never interned: no node anywhere bears it
  const std::vector<uint32_t>* occ = doc.NameOccurrences(*name_id);
  if (occ == nullptr) return;
  const xml::NodeLabel& c = doc.label(ctx);
  auto lo = std::upper_bound(occ->begin(), occ->end(), c.pre);
  auto hi = std::upper_bound(lo, occ->end(), c.sub_max);
  const NodeKind want =
      step.is_attribute ? NodeKind::kAttribute : NodeKind::kElement;
  const uint32_t child_level = c.level + 1;
  for (auto it = lo; it != hi; ++it) {
    NodeId n = doc.NodeAtPre(*it);
    if (doc.kind(n) != want) continue;
    if (step.axis == Axis::kChild && doc.label(n).level != child_level) {
      continue;
    }
    out->push_back(n);
  }
}

bool StepMatchesName(const Document& doc, NodeId n, const Step& step) {
  if (step.is_attribute) {
    if (doc.kind(n) != NodeKind::kAttribute) return false;
  } else {
    if (doc.kind(n) != NodeKind::kElement) return false;
  }
  return step.wildcard || doc.name(n) == step.name;
}

/// Appends children of `context` matching `step`, honoring the positional
/// filter (i-th matching occurrence within this context).
void MatchChildren(const Document& doc, NodeId context, const Step& step,
                   std::vector<NodeId>* out) {
  int occurrence = 0;
  for (NodeId c = doc.first_child(context); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (!StepMatchesName(doc, c, step)) continue;
    ++occurrence;
    if (step.position > 0) {
      if (occurrence == step.position) {
        out->push_back(c);
        return;
      }
    } else {
      out->push_back(c);
    }
  }
}

/// Appends proper descendants of `context` matching `step`. The positional
/// filter applies per parent (i-th occurrence among its siblings).
void MatchDescendants(const Document& doc, NodeId context, const Step& step,
                      std::vector<NodeId>* out) {
  for (NodeId c = doc.first_child(context); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (doc.kind(c) == NodeKind::kElement) {
      MatchDescendants(doc, c, step, out);
    }
  }
  MatchChildren(doc, context, step, out);
}

std::vector<NodeId> EvalSteps(const Document& doc,
                              std::vector<NodeId> context,
                              const std::vector<Step>& steps,
                              size_t first_step, const EvalOptions& opts) {
  std::vector<NodeId> current = std::move(context);
  for (size_t si = first_step; si < steps.size(); ++si) {
    const Step& step = steps[si];
    std::vector<NodeId> next;
    for (NodeId ctx : current) {
      if (doc.kind(ctx) != NodeKind::kElement) continue;
      if (ChooseStepStrategy(doc, ctx, step, opts) ==
          StepStrategy::kLabelRange) {
        MatchLabelRange(doc, ctx, step, &next);
      } else if (step.axis == Axis::kChild) {
        MatchChildren(doc, ctx, step, &next);
      } else {
        MatchDescendants(doc, ctx, step, &next);
      }
    }
    // Restore document order and uniqueness (descendant steps from
    // overlapping contexts can produce duplicates out of order).
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace

StepStrategy ChooseStepStrategy(const Document& doc, NodeId context,
                                const Step& step, const EvalOptions& opts) {
  if (!opts.use_structural_index || !doc.has_labels()) {
    return StepStrategy::kNavigate;
  }
  const StepStrategy s = StaticStepStrategy(step);
  if (s != StepStrategy::kDynamic) return s;
  // Child axis: navigation costs O(#children); the label range costs
  // O(log n) plus the name's occurrences inside the whole subtree. Prefer
  // the range only when those occurrences are sparse relative to the
  // subtree (they can never outnumber it, so a 4x margin keeps the scan
  // strictly cheaper than a full child walk on mixed-content elements
  // while falling back for flat, same-named record lists).
  const std::optional<xml::NameId> name_id = doc.pool()->Find(step.name);
  if (!name_id) return StepStrategy::kLabelRange;  // empty scan, O(1)
  const std::vector<uint32_t>* occ = doc.NameOccurrences(*name_id);
  if (occ == nullptr) return StepStrategy::kLabelRange;
  const xml::NodeLabel& c = doc.label(context);
  const size_t subtree = c.sub_max - c.pre;  // descendant count
  auto lo = std::upper_bound(occ->begin(), occ->end(), c.pre);
  auto hi = std::upper_bound(lo, occ->end(), c.sub_max);
  const size_t in_range = static_cast<size_t>(hi - lo);
  return in_range * 4 <= subtree ? StepStrategy::kLabelRange
                                 : StepStrategy::kNavigate;
}

std::vector<NodeId> EvalPath(const Document& doc, const Path& path,
                             const EvalOptions& opts) {
  if (doc.empty()) return {};
  return EvalPathRootedAt(doc, doc.root(), path, opts);
}

std::vector<NodeId> EvalPathRootedAt(const Document& doc, NodeId root,
                                     const Path& path,
                                     const EvalOptions& opts) {
  if (doc.empty() || path.empty()) return {};
  const std::vector<Step>& steps = path.steps();
  const Step& first = steps[0];
  std::vector<NodeId> initial;
  if (first.axis == Axis::kChild) {
    // The subtree root is the single "child of the virtual document node".
    if (!first.is_attribute && StepMatchesName(doc, root, first)) {
      // Positional filter on the root: only [1] can match.
      if (first.position <= 1) initial.push_back(root);
    }
  } else {
    // Descendant from the virtual document node: any matching node of the
    // subtree, including the root itself.
    if (StepMatchesName(doc, root, first) && first.position <= 1) {
      initial.push_back(root);
    }
    if (ChooseStepStrategy(doc, root, first, opts) ==
        StepStrategy::kLabelRange) {
      MatchLabelRange(doc, root, first, &initial);
    } else {
      MatchDescendants(doc, root, first, &initial);
    }
    std::sort(initial.begin(), initial.end());
    initial.erase(std::unique(initial.begin(), initial.end()),
                  initial.end());
  }
  return EvalSteps(doc, std::move(initial), steps, 1, opts);
}

std::vector<NodeId> EvalPathFrom(const Document& doc, NodeId context,
                                 const Path& path, const EvalOptions& opts) {
  if (doc.empty() || path.empty()) return {};
  return EvalSteps(doc, {context}, path.steps(), 0, opts);
}

bool PathExists(const Document& doc, const Path& path) {
  return !EvalPath(doc, path).empty();
}

}  // namespace partix::xpath
