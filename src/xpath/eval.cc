#include "xpath/eval.h"

#include <algorithm>

namespace partix::xpath {

namespace {

using xml::Document;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

bool StepMatchesName(const Document& doc, NodeId n, const Step& step) {
  if (step.is_attribute) {
    if (doc.kind(n) != NodeKind::kAttribute) return false;
  } else {
    if (doc.kind(n) != NodeKind::kElement) return false;
  }
  return step.wildcard || doc.name(n) == step.name;
}

/// Appends children of `context` matching `step`, honoring the positional
/// filter (i-th matching occurrence within this context).
void MatchChildren(const Document& doc, NodeId context, const Step& step,
                   std::vector<NodeId>* out) {
  int occurrence = 0;
  for (NodeId c = doc.first_child(context); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (!StepMatchesName(doc, c, step)) continue;
    ++occurrence;
    if (step.position > 0) {
      if (occurrence == step.position) {
        out->push_back(c);
        return;
      }
    } else {
      out->push_back(c);
    }
  }
}

/// Appends proper descendants of `context` matching `step`. The positional
/// filter applies per parent (i-th occurrence among its siblings).
void MatchDescendants(const Document& doc, NodeId context, const Step& step,
                      std::vector<NodeId>* out) {
  for (NodeId c = doc.first_child(context); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (doc.kind(c) == NodeKind::kElement) {
      MatchDescendants(doc, c, step, out);
    }
  }
  MatchChildren(doc, context, step, out);
}

std::vector<NodeId> EvalSteps(const Document& doc,
                              std::vector<NodeId> context,
                              const std::vector<Step>& steps,
                              size_t first_step) {
  std::vector<NodeId> current = std::move(context);
  for (size_t si = first_step; si < steps.size(); ++si) {
    const Step& step = steps[si];
    std::vector<NodeId> next;
    for (NodeId ctx : current) {
      if (doc.kind(ctx) != NodeKind::kElement) continue;
      if (step.axis == Axis::kChild) {
        MatchChildren(doc, ctx, step, &next);
      } else {
        MatchDescendants(doc, ctx, step, &next);
      }
    }
    // Restore document order and uniqueness (descendant steps from
    // overlapping contexts can produce duplicates out of order).
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace

std::vector<NodeId> EvalPath(const Document& doc, const Path& path) {
  if (doc.empty()) return {};
  return EvalPathRootedAt(doc, doc.root(), path);
}

std::vector<NodeId> EvalPathRootedAt(const Document& doc, NodeId root,
                                     const Path& path) {
  if (doc.empty() || path.empty()) return {};
  const std::vector<Step>& steps = path.steps();
  const Step& first = steps[0];
  std::vector<NodeId> initial;
  if (first.axis == Axis::kChild) {
    // The subtree root is the single "child of the virtual document node".
    if (!first.is_attribute && StepMatchesName(doc, root, first)) {
      // Positional filter on the root: only [1] can match.
      if (first.position <= 1) initial.push_back(root);
    }
  } else {
    // Descendant from the virtual document node: any matching node of the
    // subtree, including the root itself.
    if (StepMatchesName(doc, root, first) && first.position <= 1) {
      initial.push_back(root);
    }
    MatchDescendants(doc, root, first, &initial);
    std::sort(initial.begin(), initial.end());
    initial.erase(std::unique(initial.begin(), initial.end()),
                  initial.end());
  }
  return EvalSteps(doc, std::move(initial), steps, 1);
}

std::vector<NodeId> EvalPathFrom(const Document& doc, NodeId context,
                                 const Path& path) {
  if (doc.empty() || path.empty()) return {};
  return EvalSteps(doc, {context}, path.steps(), 0);
}

bool PathExists(const Document& doc, const Path& path) {
  return !EvalPath(doc, path).empty();
}

}  // namespace partix::xpath
