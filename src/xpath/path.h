#ifndef PARTIX_XPATH_PATH_H_
#define PARTIX_XPATH_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace partix::xpath {

/// Navigation axis of a path step. `/e` uses the child axis; `//e` matches
/// `e` at any descendant depth.
enum class Axis {
  kChild,
  kDescendant,
};

/// One step of a path expression P = /e1/.../{ek | @ak}. A step selects
/// elements (or attributes when `is_attribute`) by name, `*` matching any
/// name, with an optional 1-based positional filter `e[i]` that keeps the
/// i-th occurrence among the matching siblings of one context node.
struct Step {
  Axis axis = Axis::kChild;
  bool is_attribute = false;
  bool wildcard = false;
  std::string name;
  int position = 0;  // 0 = no positional filter

  bool operator==(const Step& other) const {
    return axis == other.axis && is_attribute == other.is_attribute &&
           wildcard == other.wildcard && name == other.name &&
           position == other.position;
  }
};

/// How a step should be answered (see docs/structural-index.md):
/// navigationally (first_child/next_sibling walk), by a sorted label-range
/// scan over the document's per-name preorder lists, or decided per
/// (document, context) by the run-time cost rule.
enum class StepStrategy : uint8_t {
  kNavigate = 0,
  kLabelRange = 1,
  kDynamic = 2,
};

/// Static (per-step, document-independent) planner decision. Descendant
/// steps with a concrete name are always label-range candidates: the scan
/// costs O(log n + matches) against O(subtree) for navigation. Wildcard
/// steps visit every node either way and positional filters have per-parent
/// semantics, so both stay navigational. Child steps are kDynamic: whether
/// the name's occurrences in the context interval are sparser than the
/// child list is only known per document.
StepStrategy StaticStepStrategy(const Step& step);

/// A parsed path expression (paper §3.1): a sequence of steps, optionally
/// containing `*` and `//`, ending in an element or attribute test.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<Step> steps) : steps_(std::move(steps)) {}

  /// Parses expressions like "/Store/Items/Item", "//Description",
  /// "/Item/PictureList/Picture[1]", "/Item/@id", "/a/*/b".
  static Result<Path> Parse(std::string_view text);

  const std::vector<Step>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  size_t size() const { return steps_.size(); }

  /// Canonical string form, e.g. "/Store/Items/Item[1]/@id".
  std::string ToString() const;

  /// True if this path is a (syntactic) step-prefix of `other`. Used for
  /// the Γ-containment requirement of vertical fragments: every prune
  /// expression must have the fragment path P as a prefix.
  bool IsPrefixOf(const Path& other) const;

  /// The sub-path formed by steps [from, size()).
  Path Suffix(size_t from) const;

  /// Last step's name ("*" for a wildcard), for diagnostics.
  std::string LastName() const;

  bool operator==(const Path& other) const { return steps_ == other.steps_; }

 private:
  std::vector<Step> steps_;
};

}  // namespace partix::xpath

#endif  // PARTIX_XPATH_PATH_H_
