#ifndef PARTIX_XPATH_EVAL_H_
#define PARTIX_XPATH_EVAL_H_

#include <vector>

#include "xml/document.h"
#include "xpath/path.h"

namespace partix::xpath {

/// Evaluation knobs shared by all entry points. Results are byte-identical
/// whichever way a step is answered; the toggle exists for ablation tests
/// and the structural_join bench.
struct EvalOptions {
  /// Answer eligible axis steps by label-range scans when the document is
  /// sealed (see Document::SealLabels); navigate otherwise.
  bool use_structural_index = true;
};

/// Run-time refinement of StaticStepStrategy for one (document, context,
/// step): resolves kDynamic child steps with the cost rule "use the label
/// range only if the name's occurrences in the context's preorder interval
/// are at most a quarter of the subtree size", and downgrades to kNavigate
/// when the document has no labels. Never returns kDynamic.
StepStrategy ChooseStepStrategy(const xml::Document& doc,
                                xml::NodeId context, const Step& step,
                                const EvalOptions& opts = {});

/// Evaluates an absolute path against a whole document: the first child-
/// axis step must match the root element; a leading descendant step matches
/// any element in the tree. Returns matches in document order without
/// duplicates.
std::vector<xml::NodeId> EvalPath(const xml::Document& doc, const Path& path,
                                  const EvalOptions& opts = {});

/// Evaluates `path` relative to `context`: the first step applies to the
/// children (or descendants) of `context`. Returns matches in document
/// order without duplicates.
std::vector<xml::NodeId> EvalPathFrom(const xml::Document& doc,
                                      xml::NodeId context, const Path& path,
                                      const EvalOptions& opts = {});

/// Evaluates an absolute path against the subtree rooted at `root`, as if
/// that subtree were a standalone document: the first child-axis step must
/// match `root` itself. Used by hybrid fragmentation, whose selection
/// predicates are absolute over each instance subtree (e.g.
/// /Item/Section = "CD" evaluated per Item).
std::vector<xml::NodeId> EvalPathRootedAt(const xml::Document& doc,
                                          xml::NodeId root, const Path& path,
                                          const EvalOptions& opts = {});

/// True if the path selects at least one node of the document.
bool PathExists(const xml::Document& doc, const Path& path);

}  // namespace partix::xpath

#endif  // PARTIX_XPATH_EVAL_H_
