#ifndef PARTIX_XPATH_EVAL_H_
#define PARTIX_XPATH_EVAL_H_

#include <vector>

#include "xml/document.h"
#include "xpath/path.h"

namespace partix::xpath {

/// Evaluates an absolute path against a whole document: the first child-
/// axis step must match the root element; a leading descendant step matches
/// any element in the tree. Returns matches in document order without
/// duplicates.
std::vector<xml::NodeId> EvalPath(const xml::Document& doc, const Path& path);

/// Evaluates `path` relative to `context`: the first step applies to the
/// children (or descendants) of `context`. Returns matches in document
/// order without duplicates.
std::vector<xml::NodeId> EvalPathFrom(const xml::Document& doc,
                                      xml::NodeId context, const Path& path);

/// Evaluates an absolute path against the subtree rooted at `root`, as if
/// that subtree were a standalone document: the first child-axis step must
/// match `root` itself. Used by hybrid fragmentation, whose selection
/// predicates are absolute over each instance subtree (e.g.
/// /Item/Section = "CD" evaluated per Item).
std::vector<xml::NodeId> EvalPathRootedAt(const xml::Document& doc,
                                          xml::NodeId root,
                                          const Path& path);

/// True if the path selects at least one node of the document.
bool PathExists(const xml::Document& doc, const Path& path);

}  // namespace partix::xpath

#endif  // PARTIX_XPATH_EVAL_H_
