#include "storage/document_store.h"

#include <utility>

#include "telemetry/metrics.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace partix::storage {

namespace {

/// Process-wide parse/cache counters, aggregated across every store (the
/// per-store figures stay in StoreMetrics). Registered once; the record
/// path is a relaxed atomic add (see telemetry/metrics.h).
struct StoreTelemetry {
  telemetry::Counter* parses;
  telemetry::Counter* bytes_parsed;
  telemetry::Counter* cache_hits;
  telemetry::Counter* cache_misses;
  telemetry::Counter* cache_evictions;

  static const StoreTelemetry& Get() {
    static const StoreTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      StoreTelemetry out;
      out.parses = registry.GetCounter("partix_store_parses_total");
      out.bytes_parsed =
          registry.GetCounter("partix_store_parse_bytes_total");
      out.cache_hits = registry.GetCounter("partix_store_cache_hits_total");
      out.cache_misses =
          registry.GetCounter("partix_store_cache_misses_total");
      out.cache_evictions =
          registry.GetCounter("partix_store_cache_evictions_total");
      return out;
    }();
    return t;
  }
};

}  // namespace

DocumentStore::DocumentStore(std::shared_ptr<xml::NamePool> pool,
                             size_t cache_capacity_bytes)
    : pool_(std::move(pool)), cache_capacity_(cache_capacity_bytes) {}

DocumentStore::~DocumentStore() { AttachGovernor(nullptr); }

void DocumentStore::AttachGovernor(memory::MemoryGovernor* governor) {
  if (governor_ != nullptr) {
    governor_->UnregisterConsumer(governor_id_);  // releases our charge
    governor_id_ = -1;
  }
  governor_ = governor;
  if (governor_ != nullptr) {
    governor_id_ = governor_->RegisterConsumer(
        "parse_cache", memory::MemoryGovernor::kPriorityParseCache,
        [this](size_t target) { return ShedCacheBytes(target); });
    if (cache_bytes_ > 0) governor_->Charge(governor_id_, cache_bytes_);
  }
}

size_t DocumentStore::ShedCacheBytes(size_t target) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t freed = 0;
  while (freed < target && !lru_.empty()) {
    DocSlot victim = lru_.back();
    freed += docs_[victim].parsed_bytes;
    EvictSlot(victim, nullptr);
  }
  return freed;
}

Result<DocSlot> DocumentStore::Put(const xml::Document& doc) {
  return PutSerialized(doc.doc_name(), xml::Serialize(doc),
                       doc.metadata());
}

Result<DocSlot> DocumentStore::PutSerialized(
    std::string name, std::string xml,
    std::map<std::string, std::string> metadata) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("document '" + name +
                                 "' already exists in store");
  }
  DocSlot slot = static_cast<DocSlot>(docs_.size());
  total_bytes_ += xml.size();
  Entry entry;
  entry.name = name;
  entry.xml = std::move(xml);
  entry.metadata = std::move(metadata);
  docs_.push_back(std::move(entry));
  by_name_.emplace(std::move(name), slot);
  return slot;
}

Result<xml::DocumentPtr> DocumentStore::Get(DocSlot slot,
                                            StoreMetrics* delta) {
  std::string name;
  std::string xml;
  std::map<std::string, std::string> metadata;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot >= docs_.size()) {
      return Status::OutOfRange("document slot out of range");
    }
    Entry& entry = docs_[slot];
    if (entry.cached) {
      ++metrics_.cache_hits;
      if (delta != nullptr) ++delta->cache_hits;
      StoreTelemetry::Get().cache_hits->Add();
      Touch(slot);
      return entry.parsed;
    }
    ++metrics_.cache_misses;
    ++metrics_.parses;
    metrics_.bytes_parsed += entry.xml.size();
    if (delta != nullptr) {
      ++delta->cache_misses;
      ++delta->parses;
      delta->bytes_parsed += entry.xml.size();
    }
    StoreTelemetry::Get().cache_misses->Add();
    StoreTelemetry::Get().parses->Add();
    StoreTelemetry::Get().bytes_parsed->Add(entry.xml.size());
    // Copy the bytes so the (expensive) parse runs outside the lock and
    // concurrent cold reads of different documents overlap.
    name = entry.name;
    xml = entry.xml;
    metadata = entry.metadata;
  }
  PARTIX_ASSIGN_OR_RETURN(std::shared_ptr<xml::Document> doc,
                          xml::ParseXml(pool_, name, xml));
  for (const auto& [key, value] : metadata) {
    doc->SetMetadata(key, value);
  }
  xml::DocumentPtr parsed = std::move(doc);
  size_t charge_bytes = 0;
  if (cache_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = docs_[slot];
    if (entry.cached) {
      // Another thread parsed and cached the same document while we were
      // parsing. Serve its tree (the caches must agree on the instance);
      // our parse cost is already counted above — the work did happen.
      Touch(slot);
      return entry.parsed;
    }
    charge_bytes = InsertIntoCache(slot, parsed);
    EvictIfNeeded(delta);
  }
  // Charge outside mu_: governor pressure may call back into
  // ShedCacheBytes on this very store, which takes the same lock.
  if (charge_bytes > 0 && governor_ != nullptr) {
    governor_->Charge(governor_id_, charge_bytes);
  }
  return parsed;
}

Result<DocSlot> DocumentStore::FindSlot(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("document '" + name + "' not in store");
  }
  return it->second;
}

bool DocumentStore::Contains(const std::string& name) const {
  return by_name_.count(name) != 0;
}

void DocumentStore::Touch(DocSlot slot) {
  Entry& entry = docs_[slot];
  lru_.erase(entry.lru_it);
  lru_.push_front(slot);
  entry.lru_it = lru_.begin();
}

size_t DocumentStore::InsertIntoCache(DocSlot slot, xml::DocumentPtr doc) {
  Entry& entry = docs_[slot];
  entry.parsed_bytes = doc->ApproxBytes();
  entry.parsed = std::move(doc);
  entry.cached = true;
  lru_.push_front(slot);
  entry.lru_it = lru_.begin();
  cache_bytes_ += entry.parsed_bytes;
  return entry.parsed_bytes;
}

void DocumentStore::EvictIfNeeded(StoreMetrics* delta) {
  while (cache_bytes_ > cache_capacity_ && !lru_.empty()) {
    EvictSlot(lru_.back(), delta);
  }
}

void DocumentStore::EvictSlot(DocSlot slot, StoreMetrics* delta) {
  Entry& entry = docs_[slot];
  lru_.erase(entry.lru_it);
  cache_bytes_ -= entry.parsed_bytes;
  if (governor_ != nullptr) {
    // Release never runs eviction callbacks, so it is safe under mu_.
    governor_->Release(governor_id_, entry.parsed_bytes);
  }
  entry.parsed.reset();
  entry.parsed_bytes = 0;
  entry.cached = false;
  ++metrics_.cache_evictions;
  if (delta != nullptr) ++delta->cache_evictions;
  StoreTelemetry::Get().cache_evictions->Add();
}

void DocumentStore::ReplaceSerialized(DocSlot slot, std::string xml) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = docs_[slot];
  total_bytes_ -= entry.xml.size();
  total_bytes_ += xml.size();
  entry.xml = std::move(xml);
  if (entry.cached) {
    lru_.erase(entry.lru_it);
    cache_bytes_ -= entry.parsed_bytes;
    if (governor_ != nullptr) {
      governor_->Release(governor_id_, entry.parsed_bytes);
    }
    entry.parsed.reset();
    entry.parsed_bytes = 0;
    entry.cached = false;
  }
}

void DocumentStore::DropCache() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : docs_) {
    entry.parsed.reset();
    entry.parsed_bytes = 0;
    entry.cached = false;
  }
  lru_.clear();
  if (governor_ != nullptr && cache_bytes_ > 0) {
    governor_->Release(governor_id_, cache_bytes_);
  }
  cache_bytes_ = 0;
}

size_t DocumentStore::cache_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_bytes_;
}

void DocumentStore::set_cache_capacity_bytes(size_t bytes) {
  if (bytes == 0) {
    cache_capacity_ = 0;
    DropCache();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  cache_capacity_ = bytes;
  EvictIfNeeded(nullptr);
}

}  // namespace partix::storage
