#ifndef PARTIX_STORAGE_DOCUMENT_STORE_H_
#define PARTIX_STORAGE_DOCUMENT_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "memory/governor.h"
#include "xml/document.h"
#include "xml/name_pool.h"

namespace partix::storage {

/// Stable identifier of a document within one store (used as the posting
/// unit by the indexes).
using DocSlot = uint32_t;

/// Counters describing store activity. Parse counts and parsed bytes are
/// the store's cost model: like eXist, a document must be materialized
/// (parsed) before a query can navigate it, and that per-document overhead
/// is exactly what the paper's ItemsSHor/ItemsLHor and FragMode1/FragMode2
/// results hinge on.
struct StoreMetrics {
  uint64_t parses = 0;
  uint64_t bytes_parsed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Parsed trees pushed out by LRU pressure (deliberate DropCache calls
  /// are not evictions — cold-start emulation would drown the signal).
  uint64_t cache_evictions = 0;

  void Reset() { *this = StoreMetrics(); }

  /// Field-wise sum: folds another delta into this one. Used by the
  /// engine to aggregate the per-call deltas Get() reports.
  void Merge(const StoreMetrics& other) {
    parses += other.parses;
    bytes_parsed += other.bytes_parsed;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
  }
};

/// Stores documents in serialized (XML text) form and materializes them on
/// demand, keeping an LRU cache of parsed trees bounded by approximate
/// in-memory bytes.
///
/// Thread-safety: Get and ShedCacheBytes are safe to call concurrently —
/// an internal mutex guards the LRU list, the cache byte budget, and the
/// metrics counters (parsing itself happens outside the lock, so
/// concurrent cold reads of *different* documents overlap). Mutating
/// operations (Put/PutSerialized/ReplaceSerialized/DropCache/
/// set_cache_capacity_bytes) take the same mutex but must additionally be
/// externally serialized against readers of the raw-byte accessors
/// (SerializedXml/DocName/Metadata/metrics), which return unguarded
/// references — the owning xdb::Database provides exactly that with its
/// reader-writer lock (stores and DDL are exclusive, queries are shared).
class DocumentStore {
 public:
  /// `pool`: name pool used when parsing. `cache_capacity_bytes`: bound on
  /// the summed ApproxBytes of cached parsed documents; 0 disables caching
  /// entirely (every Get re-parses).
  DocumentStore(std::shared_ptr<xml::NamePool> pool,
                size_t cache_capacity_bytes);
  ~DocumentStore();

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Registers this store's parse cache with `governor` (eviction
  /// priority kPriorityParseCache: parsed trees are re-creatable from
  /// serialized bytes, so they shed first). Every cached byte is charged
  /// to the governor from then on; under pressure the governor calls
  /// back into ShedCacheBytes. Call before first use; pass nullptr to
  /// detach. The governor must outlive the store (in practice the owning
  /// Database owns both).
  void AttachGovernor(memory::MemoryGovernor* governor);

  /// Evicts parsed trees LRU-first until at least `target` cached bytes
  /// are freed (or the cache is empty); returns the bytes freed. This is
  /// what the governor invokes under pressure; benches may call it
  /// directly. Thread-safe.
  size_t ShedCacheBytes(size_t target);

  /// Adds a document, serializing it. The document's out-of-band metadata
  /// is persisted and re-attached on every Get. Fails if the name already
  /// exists.
  Result<DocSlot> Put(const xml::Document& doc);

  /// Adds a document from serialized XML without validating it (it will be
  /// parsed on first access). Fails if the name already exists.
  Result<DocSlot> PutSerialized(
      std::string name, std::string xml,
      std::map<std::string, std::string> metadata = {});

  /// Returns the parsed document, from cache or by parsing. Thread-safe.
  /// When `delta` is non-null the call's own metrics (exactly one hit or
  /// one miss+parse, plus any evictions it triggered) are added to it —
  /// this is how the engine attributes store activity to the query that
  /// caused it without racing other queries on the cumulative counters.
  Result<xml::DocumentPtr> Get(DocSlot slot, StoreMetrics* delta = nullptr);

  /// Looks up a document by name.
  Result<DocSlot> FindSlot(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Serialized size of one document.
  size_t SerializedSize(DocSlot slot) const { return docs_[slot].xml.size(); }

  const std::string& DocName(DocSlot slot) const { return docs_[slot].name; }

  /// Raw serialized XML (what "disk" holds).
  const std::string& SerializedXml(DocSlot slot) const {
    return docs_[slot].xml;
  }

  /// Persisted out-of-band metadata of one document.
  const std::map<std::string, std::string>& Metadata(DocSlot slot) const {
    return docs_[slot].metadata;
  }

  /// Replaces the serialized bytes of one document in place, dropping its
  /// cached parsed tree so the next Get re-parses the new bytes. Indexes
  /// built from the old bytes are NOT touched — this is the storage-level
  /// primitive behind fault injection (silent bit rot corrupts "disk",
  /// not the structures derived from it).
  void ReplaceSerialized(DocSlot slot, std::string xml);

  size_t size() const { return docs_.size(); }
  uint64_t total_serialized_bytes() const { return total_bytes_; }

  /// Cumulative counters since construction (or the last ResetMetrics).
  /// Read while no Get is in flight — the reference is unguarded.
  const StoreMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_.Reset(); }

  /// Drops all cached parsed trees (keeps serialized data). Used by the
  /// benchmarks to emulate a cold start.
  void DropCache();

  size_t cache_capacity_bytes() const { return cache_capacity_; }
  void set_cache_capacity_bytes(size_t bytes);

  /// Summed ApproxBytes of the parsed trees currently cached.
  size_t cache_bytes() const;

 private:
  struct Entry {
    std::string name;
    std::string xml;
    std::map<std::string, std::string> metadata;
    xml::DocumentPtr parsed;  // null when not cached
    size_t parsed_bytes = 0;
    std::list<DocSlot>::iterator lru_it;
    bool cached = false;
  };

  // All four require mu_ held.
  void Touch(DocSlot slot);
  size_t InsertIntoCache(DocSlot slot, xml::DocumentPtr doc);
  void EvictIfNeeded(StoreMetrics* delta);
  void EvictSlot(DocSlot slot, StoreMetrics* delta);

  std::shared_ptr<xml::NamePool> pool_;
  size_t cache_capacity_;
  size_t cache_bytes_ = 0;
  memory::MemoryGovernor* governor_ = nullptr;
  int governor_id_ = -1;
  uint64_t total_bytes_ = 0;
  /// Guards the LRU list, cache byte budget, metrics counters, and the
  /// parsed/cached fields of every Entry. Never held while calling
  /// MemoryGovernor::Charge (whose pressure path re-enters
  /// ShedCacheBytes); Release never runs callbacks and is safe under it.
  mutable std::mutex mu_;
  std::vector<Entry> docs_;
  std::unordered_map<std::string, DocSlot> by_name_;
  std::list<DocSlot> lru_;  // front = most recent
  StoreMetrics metrics_;
};

}  // namespace partix::storage

#endif  // PARTIX_STORAGE_DOCUMENT_STORE_H_
