#ifndef PARTIX_STORAGE_INDEXES_H_
#define PARTIX_STORAGE_INDEXES_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/document_store.h"
#include "xml/document.h"

namespace partix::storage {

/// A sorted list of document slots.
using PostingList = std::vector<DocSlot>;

/// Intersects two sorted posting lists.
PostingList IntersectPostings(const PostingList& a, const PostingList& b);

/// Unions two sorted posting lists.
PostingList UnionPostings(const PostingList& a, const PostingList& b);

/// Structural index: element/attribute name -> documents containing it.
/// The engine uses it to skip documents that cannot match a path's spine,
/// mirroring eXist's automatic structural index.
class ElementIndex {
 public:
  /// Indexes every element and attribute name of `doc`.
  void AddDocument(DocSlot slot, const xml::Document& doc);

  /// Documents containing the name, or null if the name was never seen
  /// (equivalently: an empty posting list).
  const PostingList* Lookup(std::string_view name) const;

  size_t distinct_names() const { return postings_.size(); }

 private:
  std::unordered_map<std::string, PostingList> postings_;
};

/// Full-text index: lowercase word token -> documents containing it in any
/// text or attribute value. Used to prune contains() scans, mirroring
/// eXist's automatic full-text index.
class TextIndex {
 public:
  void AddDocument(DocSlot slot, const xml::Document& doc);

  const PostingList* Lookup(std::string_view token) const;

  /// Candidate documents for contains(_, needle): the intersection of the
  /// postings of every word token of the needle. A needle with no word
  /// tokens yields nullopt (no pruning possible). Note this is a superset
  /// of the true matches (token match does not imply substring match);
  /// callers must still verify.
  std::optional<PostingList> CandidatesForContains(
      std::string_view needle) const;

  size_t distinct_tokens() const { return postings_.size(); }

 private:
  std::unordered_map<std::string, PostingList> postings_;
};

/// Value index: (element name, exact string value) -> documents. Indexes
/// simple-content elements and attributes whose value is at most
/// kMaxValueLength bytes. Used for `P = "literal"` predicates.
class ValueIndex {
 public:
  static constexpr size_t kMaxValueLength = 64;

  void AddDocument(DocSlot slot, const xml::Document& doc);

  /// Documents where element `name` has exact simple-content `value`.
  /// Returns nullptr when nothing was indexed under that key — which also
  /// happens for over-long values, so a null result from an *indexable*
  /// key means "no documents", while callers should not consult the index
  /// at all for values longer than kMaxValueLength.
  const PostingList* Lookup(std::string_view name,
                            std::string_view value) const;

  size_t distinct_keys() const { return postings_.size(); }

 private:
  static std::string Key(std::string_view name, std::string_view value);

  std::unordered_map<std::string, PostingList> postings_;
};

/// Structural label index: element/attribute name -> per-document level
/// summaries of the name's occurrences. Built from the same (pre, post,
/// level) labels the documents carry (see xml::NodeLabel); where the
/// ElementIndex answers "does the name occur", this index answers "does it
/// occur at a depth the path could reach", which prunes documents whose
/// matching names sit at the wrong level — e.g. a child-only spine
/// /Store/Items/Item can skip documents whose only `Item` elements are
/// nested deeper. Like the other indexes: single-writer during loading,
/// immutable and freely shared afterwards.
class StructuralIndex {
 public:
  /// Level summary of one name's occurrences within one document.
  struct LevelPosting {
    DocSlot slot = 0;
    uint32_t min_level = 0;
    uint32_t max_level = 0;
    uint32_t count = 0;
  };

  /// Indexes every element and attribute of `doc` with its level. Uses the
  /// document's labels when sealed and a transient DFS otherwise, so
  /// callers need not seal first.
  void AddDocument(DocSlot slot, const xml::Document& doc);

  /// Level postings for `name`, or nullptr if the name was never seen.
  const std::vector<LevelPosting>* Lookup(std::string_view name) const;

  /// Documents that may contain `name` at an admissible level: exactly
  /// `level` when `exact_level`, at depth >= `level` otherwise. Only the
  /// per-document [min, max] level envelope is consulted, so the result is
  /// a superset of the true matches; evaluation still verifies.
  PostingList LookupWithLevel(std::string_view name, uint32_t level,
                              bool exact_level) const;

  size_t distinct_names() const { return postings_.size(); }

 private:
  std::unordered_map<std::string, std::vector<LevelPosting>> postings_;
};

}  // namespace partix::storage

#endif  // PARTIX_STORAGE_INDEXES_H_
