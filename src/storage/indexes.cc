#include "storage/indexes.h"

#include <algorithm>

#include "common/strings.h"
#include "telemetry/metrics.h"

namespace partix::storage {

namespace {

/// Index probe counters, process-wide across every index instance. One
/// probe = one Lookup call; hits additionally count into *_hits_total, so
/// the hit ratio (the planner's pruning effectiveness) is observable.
struct IndexTelemetry {
  telemetry::Counter* element_probes;
  telemetry::Counter* element_hits;
  telemetry::Counter* text_probes;
  telemetry::Counter* text_hits;
  telemetry::Counter* value_probes;
  telemetry::Counter* value_hits;
  telemetry::Counter* structural_probes;
  telemetry::Counter* structural_hits;

  static const IndexTelemetry& Get() {
    static const IndexTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      IndexTelemetry out;
      out.element_probes =
          registry.GetCounter("partix_index_element_probes_total");
      out.element_hits =
          registry.GetCounter("partix_index_element_hits_total");
      out.text_probes = registry.GetCounter("partix_index_text_probes_total");
      out.text_hits = registry.GetCounter("partix_index_text_hits_total");
      out.value_probes =
          registry.GetCounter("partix_index_value_probes_total");
      out.value_hits = registry.GetCounter("partix_index_value_hits_total");
      out.structural_probes =
          registry.GetCounter("partix_structural_index_probes_total");
      out.structural_hits =
          registry.GetCounter("partix_structural_index_hits_total");
      return out;
    }();
    return t;
  }
};

/// Appends `slot` to the posting list for `key` unless it is already the
/// last entry (slots are added in increasing order, so lists stay sorted
/// and deduplicated).
void Append(std::unordered_map<std::string, PostingList>* postings,
            std::string key, DocSlot slot) {
  PostingList& list = (*postings)[std::move(key)];
  if (list.empty() || list.back() != slot) list.push_back(slot);
}

}  // namespace

PostingList IntersectPostings(const PostingList& a, const PostingList& b) {
  PostingList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

PostingList UnionPostings(const PostingList& a, const PostingList& b) {
  PostingList out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void ElementIndex::AddDocument(DocSlot slot, const xml::Document& doc) {
  if (doc.empty()) return;
  doc.VisitSubtree(doc.root(), [&](xml::NodeId n) {
    if (doc.kind(n) == xml::NodeKind::kText) return;
    Append(&postings_, std::string(doc.name(n)), slot);
  });
}

const PostingList* ElementIndex::Lookup(std::string_view name) const {
  IndexTelemetry::Get().element_probes->Add();
  auto it = postings_.find(std::string(name));
  if (it == postings_.end()) return nullptr;
  IndexTelemetry::Get().element_hits->Add();
  return &it->second;
}

void TextIndex::AddDocument(DocSlot slot, const xml::Document& doc) {
  if (doc.empty()) return;
  doc.VisitSubtree(doc.root(), [&](xml::NodeId n) {
    if (doc.kind(n) == xml::NodeKind::kElement) return;
    for (std::string& token : TokenizeWords(doc.value(n))) {
      Append(&postings_, std::move(token), slot);
    }
  });
}

const PostingList* TextIndex::Lookup(std::string_view token) const {
  IndexTelemetry::Get().text_probes->Add();
  auto it = postings_.find(AsciiLower(token));
  if (it == postings_.end()) return nullptr;
  IndexTelemetry::Get().text_hits->Add();
  return &it->second;
}

std::optional<PostingList> TextIndex::CandidatesForContains(
    std::string_view needle) const {
  std::vector<std::string> tokens = TokenizeWords(needle);
  if (tokens.empty()) return std::nullopt;
  // A substring match can span token boundaries only if each full token of
  // the needle (except possibly a prefix/suffix fragment) appears in the
  // document. We keep the conservative contract simple: only prune when the
  // needle is a single word token that is exactly the needle itself
  // (lowercased); otherwise every interior token must be present.
  PostingList current;
  bool first = true;
  for (const std::string& token : tokens) {
    const PostingList* p = Lookup(token);
    if (p == nullptr) {
      // Token absent everywhere: for a single-token needle no document can
      // contain the word; multi-token needles could still straddle
      // tokenization in odd ways, but word tokens of the needle must appear
      // as word tokens of the text under our tokenizer, so empty is sound.
      return PostingList{};
    }
    current = first ? *p : IntersectPostings(current, *p);
    first = false;
    if (current.empty()) break;
  }
  return current;
}

std::string ValueIndex::Key(std::string_view name, std::string_view value) {
  std::string key;
  key.reserve(name.size() + value.size() + 1);
  key.append(name);
  key.push_back('\0');
  key.append(value);
  return key;
}

void ValueIndex::AddDocument(DocSlot slot, const xml::Document& doc) {
  if (doc.empty()) return;
  doc.VisitSubtree(doc.root(), [&](xml::NodeId n) {
    switch (doc.kind(n)) {
      case xml::NodeKind::kAttribute: {
        std::string_view v = doc.value(n);
        if (v.size() <= kMaxValueLength) {
          Append(&postings_, Key(doc.name(n), v), slot);
        }
        break;
      }
      case xml::NodeKind::kElement: {
        if (!doc.HasSimpleContent(n)) break;
        xml::NodeId child = doc.first_child(n);
        // Simple content: gather the single text child if present.
        std::string_view v;
        bool has_text = false;
        for (xml::NodeId c = child; c != xml::kNullNode;
             c = doc.next_sibling(c)) {
          if (doc.kind(c) == xml::NodeKind::kText) {
            v = doc.value(c);
            has_text = true;
            break;
          }
        }
        if (has_text && v.size() <= kMaxValueLength) {
          Append(&postings_, Key(doc.name(n), v), slot);
        }
        break;
      }
      case xml::NodeKind::kText:
        break;
    }
  });
}

const PostingList* ValueIndex::Lookup(std::string_view name,
                                      std::string_view value) const {
  IndexTelemetry::Get().value_probes->Add();
  auto it = postings_.find(Key(name, value));
  if (it == postings_.end()) return nullptr;
  IndexTelemetry::Get().value_hits->Add();
  return &it->second;
}

void StructuralIndex::AddDocument(DocSlot slot, const xml::Document& doc) {
  if (doc.empty()) return;
  // Per-name level envelope for this document, folded into the postings
  // at the end so each name gets at most one entry per slot.
  std::unordered_map<std::string_view, LevelPosting> local;
  auto record = [&](xml::NodeId n, uint32_t level) {
    if (doc.kind(n) == xml::NodeKind::kText) return;
    LevelPosting& p = local[doc.name(n)];
    if (p.count == 0) {
      p.min_level = p.max_level = level;
    } else {
      p.min_level = std::min(p.min_level, level);
      p.max_level = std::max(p.max_level, level);
    }
    ++p.count;
  };
  if (doc.has_labels()) {
    for (xml::NodeId n = 0; n < doc.node_count(); ++n) {
      record(n, doc.label(n).level);
    }
  } else {
    // Transient DFS; stores index at Put() time, before the parse-on-
    // demand copy (which the parser seals) exists.
    std::vector<std::pair<xml::NodeId, uint32_t>> stack{{doc.root(), 1}};
    while (!stack.empty()) {
      auto [n, level] = stack.back();
      stack.pop_back();
      record(n, level);
      for (xml::NodeId c = doc.first_child(n); c != xml::kNullNode;
           c = doc.next_sibling(c)) {
        stack.push_back({c, level + 1});
      }
    }
  }
  for (const auto& [name, p] : local) {
    std::vector<LevelPosting>& list = postings_[std::string(name)];
    if (list.empty() || list.back().slot != slot) {
      LevelPosting entry = p;
      entry.slot = slot;
      list.push_back(entry);
    }
  }
}

const std::vector<StructuralIndex::LevelPosting>* StructuralIndex::Lookup(
    std::string_view name) const {
  IndexTelemetry::Get().structural_probes->Add();
  auto it = postings_.find(std::string(name));
  if (it == postings_.end()) return nullptr;
  IndexTelemetry::Get().structural_hits->Add();
  return &it->second;
}

PostingList StructuralIndex::LookupWithLevel(std::string_view name,
                                             uint32_t level,
                                             bool exact_level) const {
  PostingList out;
  const std::vector<LevelPosting>* list = Lookup(name);
  if (list == nullptr) return out;
  for (const LevelPosting& p : *list) {
    const bool admissible = exact_level
                                ? level >= p.min_level && level <= p.max_level
                                : level <= p.max_level;
    if (admissible) out.push_back(p.slot);
  }
  return out;
}

}  // namespace partix::storage
