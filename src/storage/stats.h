#ifndef PARTIX_STORAGE_STATS_H_
#define PARTIX_STORAGE_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/document_store.h"
#include "xml/document.h"

namespace partix::storage {

/// Cumulative access-side counters of one collection: how queries
/// actually touched it, as opposed to what it statically contains. The
/// engine folds each query's StoreMetrics delta in after evaluation, so
/// fragmentation decisions (see fragmentation/advisor.h) can weigh real
/// access frequencies instead of guessing from the schema.
struct AccessStats {
  uint64_t queries = 0;  // queries that touched this collection
  uint64_t parses = 0;
  uint64_t bytes_parsed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  /// Fraction of document materializations served from cache (0 when the
  /// collection was never read).
  double CacheHitRatio() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// Aggregate statistics over a stored collection, maintained incrementally
/// as documents are added. Useful for fragmentation design decisions and
/// reported by the experiment harness.
///
/// Thread-compatible: AddDocument and RecordAccess require external
/// synchronization. The engine provides it — AddDocument runs under the
/// Database's exclusive (DDL/store) lock, and RecordAccess runs under a
/// per-collection stats mutex so concurrent shared-lock queries can fold
/// their deltas in without racing. Concurrent reads of a quiescent
/// instance are safe.
class CollectionStats {
 public:
  void AddDocument(const xml::Document& doc, size_t serialized_bytes);

  /// Folds one query's store-metrics delta into the access counters.
  void RecordAccess(const StoreMetrics& delta);

  const AccessStats& access() const { return access_; }

  uint64_t document_count() const { return document_count_; }
  uint64_t total_serialized_bytes() const { return total_serialized_bytes_; }
  uint64_t total_nodes() const { return total_nodes_; }
  uint64_t total_text_bytes() const { return total_text_bytes_; }

  double AvgDocBytes() const {
    return document_count_ == 0
               ? 0.0
               : static_cast<double>(total_serialized_bytes_) /
                     static_cast<double>(document_count_);
  }

  /// Occurrences of each element/attribute name across the collection.
  const std::map<std::string, uint64_t>& element_counts() const {
    return element_counts_;
  }

  /// Human-readable one-line summary.
  std::string Summary() const;

 private:
  uint64_t document_count_ = 0;
  uint64_t total_serialized_bytes_ = 0;
  uint64_t total_nodes_ = 0;
  uint64_t total_text_bytes_ = 0;
  std::map<std::string, uint64_t> element_counts_;
  AccessStats access_;
};

}  // namespace partix::storage

#endif  // PARTIX_STORAGE_STATS_H_
