#ifndef PARTIX_STORAGE_STATS_H_
#define PARTIX_STORAGE_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "xml/document.h"

namespace partix::storage {

/// Aggregate statistics over a stored collection, maintained incrementally
/// as documents are added. Useful for fragmentation design decisions and
/// reported by the experiment harness.
///
/// Thread-compatible: AddDocument requires external synchronization (it
/// runs under the engine's per-node lock at store time); concurrent reads
/// of a quiescent instance are safe.
class CollectionStats {
 public:
  void AddDocument(const xml::Document& doc, size_t serialized_bytes);

  uint64_t document_count() const { return document_count_; }
  uint64_t total_serialized_bytes() const { return total_serialized_bytes_; }
  uint64_t total_nodes() const { return total_nodes_; }
  uint64_t total_text_bytes() const { return total_text_bytes_; }

  double AvgDocBytes() const {
    return document_count_ == 0
               ? 0.0
               : static_cast<double>(total_serialized_bytes_) /
                     static_cast<double>(document_count_);
  }

  /// Occurrences of each element/attribute name across the collection.
  const std::map<std::string, uint64_t>& element_counts() const {
    return element_counts_;
  }

  /// Human-readable one-line summary.
  std::string Summary() const;

 private:
  uint64_t document_count_ = 0;
  uint64_t total_serialized_bytes_ = 0;
  uint64_t total_nodes_ = 0;
  uint64_t total_text_bytes_ = 0;
  std::map<std::string, uint64_t> element_counts_;
};

}  // namespace partix::storage

#endif  // PARTIX_STORAGE_STATS_H_
