#include "storage/stats.h"

#include <cstdio>

#include "common/strings.h"

namespace partix::storage {

void CollectionStats::AddDocument(const xml::Document& doc,
                                  size_t serialized_bytes) {
  ++document_count_;
  total_serialized_bytes_ += serialized_bytes;
  total_nodes_ += doc.node_count();
  if (doc.empty()) return;
  doc.VisitSubtree(doc.root(), [&](xml::NodeId n) {
    if (doc.kind(n) == xml::NodeKind::kText) {
      total_text_bytes_ += doc.value(n).size();
    } else {
      element_counts_[std::string(doc.name(n))] += 1;
    }
  });
}

void CollectionStats::RecordAccess(const StoreMetrics& delta) {
  ++access_.queries;
  access_.parses += delta.parses;
  access_.bytes_parsed += delta.bytes_parsed;
  access_.cache_hits += delta.cache_hits;
  access_.cache_misses += delta.cache_misses;
  access_.cache_evictions += delta.cache_evictions;
}

std::string CollectionStats::Summary() const {
  std::string out = std::to_string(document_count_) + " docs, " +
                    HumanBytes(total_serialized_bytes_) + " serialized, " +
                    std::to_string(total_nodes_) + " nodes, avg doc " +
                    HumanBytes(static_cast<uint64_t>(AvgDocBytes()));
  if (access_.queries > 0) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.0f%%",
                  access_.CacheHitRatio() * 100.0);
    out += "; accessed by " + std::to_string(access_.queries) +
           " queries (" + std::to_string(access_.parses) + " parses, " +
           HumanBytes(access_.bytes_parsed) + " parsed, cache hit " +
           ratio + ")";
  }
  return out;
}

}  // namespace partix::storage
