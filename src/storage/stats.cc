#include "storage/stats.h"

#include "common/strings.h"

namespace partix::storage {

void CollectionStats::AddDocument(const xml::Document& doc,
                                  size_t serialized_bytes) {
  ++document_count_;
  total_serialized_bytes_ += serialized_bytes;
  total_nodes_ += doc.node_count();
  if (doc.empty()) return;
  doc.VisitSubtree(doc.root(), [&](xml::NodeId n) {
    if (doc.kind(n) == xml::NodeKind::kText) {
      total_text_bytes_ += doc.value(n).size();
    } else {
      element_counts_[std::string(doc.name(n))] += 1;
    }
  });
}

std::string CollectionStats::Summary() const {
  return std::to_string(document_count_) + " docs, " +
         HumanBytes(total_serialized_bytes_) + " serialized, " +
         std::to_string(total_nodes_) + " nodes, avg doc " +
         HumanBytes(static_cast<uint64_t>(AvgDocBytes()));
}

}  // namespace partix::storage
