#include "workload/schemas.h"

#include <algorithm>

namespace partix::workload {

namespace {

using frag::FragmentationSchema;
using frag::HorizontalDef;
using frag::HybridDef;
using frag::VerticalDef;
using xpath::CompareOp;
using xpath::Conjunction;
using xpath::Path;
using xpath::Predicate;

Result<Path> P(const std::string& text) { return Path::Parse(text); }

/// Builds range conjunctions over `path_text` that partition the sorted
/// section values into `fragment_count` contiguous groups.
Result<std::vector<Conjunction>> SectionRanges(
    const std::string& path_text, std::vector<std::string> sections,
    size_t fragment_count) {
  if (fragment_count == 0 || sections.empty()) {
    return Status::InvalidArgument("need sections and fragments");
  }
  if (fragment_count > sections.size()) {
    return Status::InvalidArgument(
        "more fragments than section values (" +
        std::to_string(fragment_count) + " > " +
        std::to_string(sections.size()) + ")");
  }
  std::sort(sections.begin(), sections.end());
  PARTIX_ASSIGN_OR_RETURN(Path path, P(path_text));
  std::vector<Conjunction> out;
  // Balanced boundaries: fragment f holds sections
  // [f*n/count, (f+1)*n/count), which is non-empty whenever
  // count <= n (checked above).
  const size_t n = sections.size();
  for (size_t f = 0; f < fragment_count; ++f) {
    Conjunction mu;
    if (f > 0) {
      mu.Add(Predicate::Compare(path, CompareOp::kGe,
                                sections[f * n / fragment_count]));
    }
    if (f + 1 < fragment_count) {
      mu.Add(Predicate::Compare(path, CompareOp::kLt,
                                sections[(f + 1) * n / fragment_count]));
    }
    // The first fragment is open below and the last open above, so every
    // possible section value lands somewhere (completeness by design).
    out.push_back(std::move(mu));
  }
  return out;
}

}  // namespace

Result<FragmentationSchema> SectionHorizontalSchema(
    const std::string& collection, std::vector<std::string> sections,
    size_t fragment_count) {
  PARTIX_ASSIGN_OR_RETURN(
      std::vector<Conjunction> ranges,
      SectionRanges("/Item/Section", std::move(sections), fragment_count));
  FragmentationSchema schema;
  schema.collection = collection;
  for (size_t f = 0; f < ranges.size(); ++f) {
    schema.fragments.emplace_back(HorizontalDef{
        collection + "_h" + std::to_string(f), std::move(ranges[f])});
  }
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  return schema;
}

Result<FragmentationSchema> ArticleVerticalSchema(
    const std::string& collection) {
  FragmentationSchema schema;
  schema.collection = collection;
  PARTIX_ASSIGN_OR_RETURN(Path prolog, P("/article/prolog"));
  PARTIX_ASSIGN_OR_RETURN(Path body, P("/article/body"));
  PARTIX_ASSIGN_OR_RETURN(Path epilog, P("/article/epilog"));
  schema.fragments.emplace_back(
      VerticalDef{collection + "_prolog", std::move(prolog), {}});
  schema.fragments.emplace_back(
      VerticalDef{collection + "_body", std::move(body), {}});
  schema.fragments.emplace_back(
      VerticalDef{collection + "_epilog", std::move(epilog), {}});
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  return schema;
}

Result<FragmentationSchema> StoreHybridSchema(
    const std::string& collection, std::vector<std::string> sections,
    size_t item_fragment_count, frag::HybridMode mode) {
  PARTIX_ASSIGN_OR_RETURN(
      std::vector<Conjunction> ranges,
      SectionRanges("/Item/Section", std::move(sections),
                    item_fragment_count));
  FragmentationSchema schema;
  schema.collection = collection;
  schema.hybrid_mode = mode;
  PARTIX_ASSIGN_OR_RETURN(Path items, P("/Store/Items"));
  PARTIX_ASSIGN_OR_RETURN(Path store, P("/Store"));
  for (size_t f = 0; f < ranges.size(); ++f) {
    schema.fragments.emplace_back(
        HybridDef{collection + "_items" + std::to_string(f), items, {},
                  std::move(ranges[f])});
  }
  schema.fragments.emplace_back(HybridDef{
      collection + "_rest", std::move(store), {items}, Conjunction()});
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  return schema;
}

}  // namespace partix::workload
