#include "workload/harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace partix::workload {

Result<std::unique_ptr<Deployment>> Deployment::Centralized(
    const xml::Collection& data, xdb::DatabaseOptions node_options,
    middleware::NetworkModel network) {
  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->catalog_ = std::make_unique<middleware::DistributionCatalog>();
  deployment->cluster_ =
      std::make_unique<middleware::ClusterSim>(1, node_options, network);
  deployment->publisher_ = std::make_unique<middleware::DataPublisher>(
      deployment->cluster_.get(), deployment->catalog_.get());
  PARTIX_RETURN_IF_ERROR(
      deployment->publisher_->PublishCentralized(data, 0));
  deployment->service_ = std::make_unique<middleware::QueryService>(
      deployment->cluster_.get(), deployment->catalog_.get());
  return deployment;
}

Result<std::unique_ptr<Deployment>> Deployment::Fragmented(
    const xml::Collection& data, const frag::FragmentationSchema& schema,
    xdb::DatabaseOptions node_options, middleware::NetworkModel network,
    size_t replication_factor) {
  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->catalog_ = std::make_unique<middleware::DistributionCatalog>();
  deployment->cluster_ = std::make_unique<middleware::ClusterSim>(
      schema.fragments.size(), node_options, network);
  deployment->publisher_ = std::make_unique<middleware::DataPublisher>(
      deployment->cluster_.get(), deployment->catalog_.get());
  const size_t node_count = schema.fragments.size();
  if (replication_factor == 0 || replication_factor > node_count) {
    return Status::InvalidArgument(
        "replication_factor " + std::to_string(replication_factor) +
        " must be in [1, " + std::to_string(node_count) + "]");
  }
  // One fragment per node: replica r of fragment i -> node (i + r) mod n.
  std::vector<middleware::FragmentPlacement> placements;
  for (size_t i = 0; i < node_count; ++i) {
    middleware::FragmentPlacement p{schema.fragments[i].name(), i};
    for (size_t r = 1; r < replication_factor; ++r) {
      p.backups.push_back((i + r) % node_count);
    }
    placements.push_back(std::move(p));
  }
  PARTIX_RETURN_IF_ERROR(deployment->publisher_->PublishFragmented(
      data, schema, std::move(placements)));
  deployment->service_ = std::make_unique<middleware::QueryService>(
      deployment->cluster_.get(), deployment->catalog_.get());
  return deployment;
}

Result<Measurement> Measure(Deployment* deployment, const QuerySpec& query,
                            const MeasureOptions& options) {
  Measurement out;
  out.query_id = query.id;
  middleware::ExecutionOptions exec;
  exec.include_transmission = options.include_transmission;
  exec.cold_caches = options.cold;
  exec.parallelism = options.parallelism;

  size_t counted = 0;
  for (size_t run = 0; run < options.runs; ++run) {
    PARTIX_ASSIGN_OR_RETURN(
        middleware::DistributedResult result,
        deployment->service().Execute(query.text, exec));
    if (options.discard_first && run == 0 && options.runs > 1) continue;
    ++counted;
    out.response_ms += result.response_ms;
    out.wall_ms += result.wall_ms;
    out.slowest_node_ms += result.slowest_node_ms;
    out.transmission_ms += result.transmission_ms;
    out.composition_ms += result.composition_ms;
    out.result_bytes = result.serialized.size();
    out.subqueries = result.subqueries.size();
    out.pruned_fragments = result.pruned_fragments;
  }
  if (counted > 0) {
    out.response_ms /= static_cast<double>(counted);
    out.wall_ms /= static_cast<double>(counted);
    out.slowest_node_ms /= static_cast<double>(counted);
    out.transmission_ms /= static_cast<double>(counted);
    out.composition_ms /= static_cast<double>(counted);
  }
  return out;
}

double ScaleFromEnv() {
  const char* raw = std::getenv("PARTIX_SCALE");
  if (raw == nullptr) return 1.0;
  double scale = 0.0;
  if (!ParseDouble(raw, &scale) || scale <= 0.0) return 1.0;
  return scale;
}

size_t RunsFromEnv(size_t fallback) {
  const char* raw = std::getenv("PARTIX_RUNS");
  if (raw == nullptr) return fallback;
  int64_t runs = 0;
  if (!ParseInt64(raw, &runs) || runs < 1) return fallback;
  return static_cast<size_t>(runs);
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& series_names,
                const std::vector<std::vector<Measurement>>& series,
                const std::vector<QuerySpec>& queries) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-5s", "query");
  for (const std::string& name : series_names) {
    std::printf("  %14s", name.c_str());
  }
  std::printf("   speedup(best)\n");
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("%-5s", queries[q].id.c_str());
    double base = 0.0;
    double best = 1e300;
    for (size_t s = 0; s < series.size(); ++s) {
      const Measurement& m = series[s][q];
      std::printf("  %11.2f ms", m.response_ms);
      if (s == 0) base = m.response_ms;
      if (s > 0) best = std::min(best, m.response_ms);
    }
    if (series.size() > 1 && best > 0.0) {
      std::printf("   %9.1fx", base / best);
    }
    std::printf("\n");
  }
}

}  // namespace partix::workload
