#include "workload/queries.h"

namespace partix::workload {

namespace {

std::string C(const std::string& collection) {
  return "collection(\"" + collection + "\")";
}

}  // namespace

std::vector<QuerySpec> HorizontalQueries(const std::string& collection) {
  const std::string c = C(collection);
  return {
      {"Q1", "full scan returning every item name",
       "for $i in " + c + "/Item return $i/Name"},
      {"Q2", "selection matching the fragmentation predicate (Section)",
       "for $i in " + c + "/Item where $i/Section = \"CD\" "
       "return $i/Name"},
      {"Q3", "numeric range predicate on Code",
       "for $i in " + c + "/Item where $i/Code >= 100 and $i/Code < 300 "
       "return $i/Name"},
      {"Q4", "aggregation inside the predicate (items with many "
             "characteristics)",
       "for $i in " + c + "/Item where count($i/Characteristics) >= 3 "
       "return $i/Code"},
      {"Q5", "text search on Description",
       "for $i in " + c + "/Item "
       "where contains($i/Description, \"good\") return $i/Code"},
      {"Q6", "text search with a descendant-axis path",
       "for $i in " + c + "/Item "
       "where contains($i//Description, \"good\") return $i/Code"},
      {"Q7", "count aggregation with a section predicate",
       "count(" + c + "/Item[Section = \"DVD\"])"},
      {"Q8", "count aggregation over a text search",
       "count(for $i in " + c + "/Item "
       "where contains($i/Description, \"good\") return $i)"},
  };
}

std::vector<QuerySpec> VerticalQueries(const std::string& collection) {
  const std::string c = C(collection);
  return {
      {"Q1", "every title (prolog fragment only)",
       "for $a in " + c + "/article return $a/prolog/title"},
      {"Q2", "titles of one genre (prolog only)",
       "for $a in " + c + "/article "
       "where $a/prolog/genre = \"survey\" return $a/prolog/title"},
      {"Q3", "all author names (prolog only)",
       c + "/article/prolog/authors/author/name"},
      {"Q4", "title plus reference count (prolog + epilog join)",
       "for $a in " + c + "/article "
       "return <result>{ $a/prolog/title }"
       "<refs>{ count($a/epilog/references/reference) }</refs></result>"},
      {"Q5", "keyword count (prolog only, aggregation)",
       "count(" + c + "/article/prolog/keywords/keyword)"},
      {"Q6", "text search in the body (body only, heavy)",
       "count(for $a in " + c + "/article "
       "where contains($a/body/abstract, \"database\") "
       "return $a/body/abstract)"},
      {"Q7", "titles of heavily-cited articles (prolog + epilog join)",
       "for $a in " + c + "/article "
       "where count($a/epilog/references/reference) >= 25 "
       "return $a/prolog/title"},
      {"Q8", "abstracts of one genre (prolog + body join)",
       "for $a in " + c + "/article "
       "where $a/prolog/genre = \"survey\" return $a/body/abstract"},
      {"Q9", "whole articles of one genre (all fragments join)",
       "for $a in " + c + "/article "
       "where $a/prolog/genre = \"demo\" return $a"},
      {"Q10", "reference count (epilog only, aggregation)",
       "count(" + c + "/article/epilog/references/reference)"},
  };
}

std::vector<QuerySpec> HybridQueries(const std::string& collection) {
  const std::string c = C(collection);
  const std::string items = c + "/Store/Items/Item";
  return {
      {"Q1", "every item name (all instance fragments)",
       "for $i in " + items + " return $i/Name"},
      {"Q2", "names of one section (localized to one fragment)",
       "for $i in " + items + " where $i/Section = \"CD\" "
       "return $i/Name"},
      {"Q3", "section plus text search (one fragment)",
       "for $i in " + items + " where $i/Section = \"DVD\" and "
       "contains($i/Description, \"good\") return $i/Name"},
      {"Q4", "section plus code range (one fragment)",
       "for $i in " + items + " where $i/Section = \"CD\" and "
       "$i/Code < 200 return $i/Code"},
      {"Q5", "text search across all instance fragments",
       "for $i in " + items + " "
       "where contains($i/Description, \"good\") return $i/Code"},
      {"Q6", "whole items of one section (large results)",
       "for $i in " + items + " where $i/Section = \"CD\" return $i"},
      {"Q7", "every whole item (the paper's transmission-bound worst "
             "case)",
       "for $i in " + items + " return $i"},
      {"Q8", "existential test on PictureList",
       "for $i in " + items + " where $i/PictureList return $i/Code"},
      {"Q9", "section catalog (pruned store fragment only)",
       "for $s in " + c + "/Store/Sections/Section return $s/Name"},
      {"Q10", "employee count (pruned store fragment only)",
       "count(" + c + "/Store/Employees/Employee)"},
      {"Q11", "count of all items (decomposable aggregation)",
       "count(" + items + ")"},
  };
}

const QuerySpec* FindQuery(const std::vector<QuerySpec>& set,
                           const std::string& id) {
  for (const QuerySpec& q : set) {
    if (q.id == id) return &q;
  }
  return nullptr;
}

}  // namespace partix::workload
