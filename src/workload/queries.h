#ifndef PARTIX_WORKLOAD_QUERIES_H_
#define PARTIX_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

namespace partix::workload {

/// One workload query. The paper's query texts live in its (unavailable)
/// technical report [3]; these sets are reconstructions that match every
/// property §5 states: "diverse access patterns to XML collections,
/// including the usage of predicates, text searches and aggregation
/// operations", queries matching / not matching the fragmentation
/// predicates, single- vs multi-fragment vertical access, the hybrid
/// queries that return whole Item elements, Q9/Q10 touching the pruned
/// store fragment, and the aggregation query Q11.
struct QuerySpec {
  std::string id;
  std::string description;
  std::string text;
};

/// Horizontal workload Q1–Q8 over the Citems MD collection (documents
/// rooted at <Item>), fragmented by /Item/Section.
std::vector<QuerySpec> HorizontalQueries(const std::string& collection);

/// Vertical workload Q1–Q10 over the XBench article collection, fragmented
/// into prolog / body / epilog.
std::vector<QuerySpec> VerticalQueries(const std::string& collection);

/// Hybrid workload Q1–Q11 over the Cstore SD collection, fragmented into
/// per-section Item fragments plus the pruned store fragment.
std::vector<QuerySpec> HybridQueries(const std::string& collection);

/// Looks up a query by id; returns nullptr when absent.
const QuerySpec* FindQuery(const std::vector<QuerySpec>& set,
                           const std::string& id);

}  // namespace partix::workload

#endif  // PARTIX_WORKLOAD_QUERIES_H_
