#ifndef PARTIX_WORKLOAD_HARNESS_H_
#define PARTIX_WORKLOAD_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "fragmentation/fragment_def.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/queries.h"
#include "xml/collection.h"

namespace partix::workload {

/// One deployed configuration: a cluster holding either the centralized
/// collection or one fragmentation design of it, plus the catalogs and the
/// query service. Bench binaries create one Deployment per series
/// (centralized, 2 fragments, 4 fragments, ...).
class Deployment {
 public:
  /// Centralized: one node holding the whole collection under its own
  /// name.
  static Result<std::unique_ptr<Deployment>> Centralized(
      const xml::Collection& data, xdb::DatabaseOptions node_options,
      middleware::NetworkModel network);

  /// Fragmented: one node per fragment (as the paper simulates), each
  /// holding its fragment. `replication_factor` > 1 additionally stores
  /// replica r of fragment i at node (i + r) mod node_count, giving the
  /// executor failover targets (see docs/fault-tolerance.md).
  static Result<std::unique_ptr<Deployment>> Fragmented(
      const xml::Collection& data,
      const frag::FragmentationSchema& schema,
      xdb::DatabaseOptions node_options, middleware::NetworkModel network,
      size_t replication_factor = 1);

  middleware::QueryService& service() { return *service_; }
  middleware::ClusterSim& cluster() { return *cluster_; }
  size_t node_count() const { return cluster_->node_count(); }

 private:
  Deployment() = default;

  std::unique_ptr<middleware::DistributionCatalog> catalog_;
  std::unique_ptr<middleware::ClusterSim> cluster_;
  std::unique_ptr<middleware::DataPublisher> publisher_;
  std::unique_ptr<middleware::QueryService> service_;
};

/// Measurement protocol knobs. The paper submitted each query 10 times,
/// discarded the first execution, and averaged the rest; benches default
/// to fewer repetitions to stay fast (set PARTIX_RUNS to override).
struct MeasureOptions {
  size_t runs = 4;
  bool discard_first = true;
  bool include_transmission = true;
  /// Drop every node cache before each run (cold). The paper's protocol
  /// is warm (the discarded first run warms the caches).
  bool cold = false;
  /// Executor parallelism (ExecutionOptions::parallelism): sub-queries in
  /// flight at once. 1 = sequential dispatch, 0 = one worker each.
  size_t parallelism = 1;
};

/// Aggregated timings for one query on one deployment.
struct Measurement {
  std::string query_id;
  double response_ms = 0.0;       // modeled, averaged per the protocol
  double wall_ms = 0.0;           // measured wall-clock, averaged
  double slowest_node_ms = 0.0;
  double transmission_ms = 0.0;
  double composition_ms = 0.0;
  uint64_t result_bytes = 0;
  size_t subqueries = 0;
  size_t pruned_fragments = 0;
};

/// Runs one query under the measurement protocol.
Result<Measurement> Measure(Deployment* deployment, const QuerySpec& query,
                            const MeasureOptions& options);

/// Reads the experiment scale factor from PARTIX_SCALE (default 1.0):
/// benches multiply their database target sizes by it.
double ScaleFromEnv();

/// Reads the repetition count from PARTIX_RUNS (default `fallback`).
size_t RunsFromEnv(size_t fallback);

/// Prints a paper-style results table: one row per query, one column per
/// series.
void PrintTable(const std::string& title,
                const std::vector<std::string>& series_names,
                const std::vector<std::vector<Measurement>>& series,
                const std::vector<QuerySpec>& queries);

}  // namespace partix::workload

#endif  // PARTIX_WORKLOAD_HARNESS_H_
