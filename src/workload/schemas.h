#ifndef PARTIX_WORKLOAD_SCHEMAS_H_
#define PARTIX_WORKLOAD_SCHEMAS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"

namespace partix::workload {

/// Builds the horizontal design of the paper's ItemsSHor/ItemsLHor
/// experiments: the Citems collection fragmented on /Item/Section into
/// `fragment_count` fragments. Sections are grouped into contiguous
/// lexicographic ranges so that any fragment count works with conjunctive
/// predicates (fragment k holds sections[k*g .. (k+1)*g)); the final
/// fragment is open-ended so unforeseen values stay complete.
Result<frag::FragmentationSchema> SectionHorizontalSchema(
    const std::string& collection, std::vector<std::string> sections,
    size_t fragment_count);

/// Builds the vertical design of the XBenchVer experiment:
///   F1 := π(/article/prolog), F2 := π(/article/body),
///   F3 := π(/article/epilog).
Result<frag::FragmentationSchema> ArticleVerticalSchema(
    const std::string& collection);

/// Builds the hybrid design of the StoreHyb experiment: F1 prunes
/// /Store/Items out of the store; the remaining fragments partition the
/// Item instances by /Item/Section ranges (like the horizontal design).
Result<frag::FragmentationSchema> StoreHybridSchema(
    const std::string& collection, std::vector<std::string> sections,
    size_t item_fragment_count, frag::HybridMode mode);

}  // namespace partix::workload

#endif  // PARTIX_WORKLOAD_SCHEMAS_H_
