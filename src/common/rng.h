#ifndef PARTIX_COMMON_RNG_H_
#define PARTIX_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace partix {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**).
/// Used by the synthetic data generators so that every experiment is
/// reproducible bit-for-bit from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). Pre: bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with skew parameter `s` (s=0 is
  /// uniform). Used for non-uniform document distributions.
  uint64_t Zipf(uint64_t n, double s);

  /// Picks an index according to `weights` (need not be normalized).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Random lowercase word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len);

  /// Sentence of `words` words drawn from a small vocabulary, optionally
  /// seeded with `inject` as one of the words (used to plant text-search
  /// hits like "good" at a controlled selectivity).
  std::string Sentence(int words, const std::string& inject = "");

 private:
  uint64_t state_[4];
};

}  // namespace partix

#endif  // PARTIX_COMMON_RNG_H_
