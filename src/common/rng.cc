#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace partix {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Small fixed vocabulary for generated prose. Includes the benchmark
// trigger words used by the paper's text-search predicates.
const char* const kVocabulary[] = {
    "item",    "store",   "quality", "product", "cheap",   "fast",
    "durable", "classic", "modern",  "popular", "rare",    "shiny",
    "heavy",   "light",   "compact", "deluxe",  "basic",   "premium",
    "silver",  "golden",  "vintage", "digital", "analog",  "wireless",
    "portable"};
constexpr size_t kVocabularySize =
    sizeof(kVocabulary) / sizeof(kVocabulary[0]);

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) s = SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return NextBelow(n);
  // Inverse-CDF over explicit harmonic weights; n is small in our use
  // (sections, fragment counts), so O(n) is fine.
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::string Rng::Word(int min_len, int max_len) {
  int len = static_cast<int>(UniformInt(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

std::string Rng::Sentence(int words, const std::string& inject) {
  std::string out;
  int inject_at =
      inject.empty() ? -1 : static_cast<int>(NextBelow(uint64_t(words)));
  for (int i = 0; i < words; ++i) {
    if (i > 0) out.push_back(' ');
    if (i == inject_at) {
      out += inject;
    } else {
      out += kVocabulary[NextBelow(kVocabularySize)];
    }
  }
  return out;
}

}  // namespace partix
