#include "common/thread_pool.h"

namespace partix {

void Latch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ > 0 && --count_ == 0) cv_.notify_all();
}

void Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  threads_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::EnsureThreads(size_t thread_count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  // Workers started here block on cv_ until this lock is released; the
  // threads_ vector is only touched under mu_ (WorkerLoop never reads it).
  while (threads_.size() < thread_count) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

size_t ThreadPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  // threads_ is stable from here on: EnsureThreads refuses to grow a
  // shut-down pool, so iterating without mu_ cannot race a reallocation
  // (and joining under mu_ would deadlock with parked workers).
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace partix
