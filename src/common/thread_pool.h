#ifndef PARTIX_COMMON_THREAD_POOL_H_
#define PARTIX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace partix {

/// A one-shot countdown latch: Wait() blocks until CountDown() has been
/// called `count` times. Thread-safe. Used by the executor to gather a
/// fan-out of worker tasks without spinning.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrements the count; wakes all waiters when it reaches zero.
  /// Calling more than `count` times is harmless (the extra calls are
  /// ignored).
  void CountDown();

  /// Blocks until the count reaches zero. Returns immediately if it
  /// already has.
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

/// A pool of worker threads draining a FIFO task queue. The pool starts
/// with `thread_count` workers and can grow (never shrink) on demand via
/// EnsureThreads — this is what lets one process-wide pool serve every
/// executor and every concurrent query instead of each Executor growing a
/// private pool (see partix/scheduler.h for the sharing story).
///
/// Thread-safe: Submit/EnsureThreads may be called from any thread,
/// including from inside a running task. Tasks are plain
/// `std::function<void()>`; in keeping with the codebase's exception-free
/// style, tasks must not throw — fallible work records its
/// `Status`/`Result` into state captured by the closure (see executor.h
/// for the pattern).
///
/// Shutdown (also run by the destructor) stops accepting new work, drains
/// every already-queued task, and joins the workers — so work submitted
/// before Shutdown is never lost.
class ThreadPool {
 public:
  /// Starts `thread_count` workers (at least one).
  explicit ThreadPool(size_t thread_count);

  /// Shuts down (draining queued tasks) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by some worker. Tasks submitted after
  /// Shutdown() are dropped.
  void Submit(std::function<void()> task);

  /// Grows the pool to at least `thread_count` workers. No-op when the
  /// pool is already that large or has shut down. Thread-safe.
  void EnsureThreads(size_t thread_count);

  /// Stops accepting new tasks, finishes all queued ones, joins the
  /// workers. Idempotent.
  void Shutdown();

  size_t thread_count() const;

  /// Tasks submitted but not yet picked up by a worker (backpressure
  /// introspection; racy by nature, use for metrics only).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace partix

#endif  // PARTIX_COMMON_THREAD_POOL_H_
