#ifndef PARTIX_COMMON_STRINGS_H_
#define PARTIX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace partix {

/// Splits `s` on `sep`, keeping empty pieces. Split("a//b", '/') yields
/// {"a", "", "b"}.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-sensitive substring containment, the semantics of XQuery
/// fn:contains.
bool Contains(std::string_view haystack, std::string_view needle);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Lowercases ASCII characters.
std::string AsciiLower(std::string_view s);

/// Tokenizes `text` into lowercase alphanumeric word tokens (for the text
/// index). "Good, CHEAP item-42" -> {"good", "cheap", "item", "42"}.
std::vector<std::string> TokenizeWords(std::string_view text);

/// Parses a decimal double; returns false on malformed input (the whole
/// trimmed string must be consumed).
bool ParseDouble(std::string_view s, double* out);

/// Parses a decimal int64; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats a double the way XQuery serializes numbers: integers without a
/// decimal point, otherwise shortest round-trip representation.
std::string FormatNumber(double v);

/// Escapes XML text content: & < > (quotes are left alone in text).
std::string EscapeXmlText(std::string_view s);

/// Escapes XML attribute values (also escapes double quotes).
std::string EscapeXmlAttr(std::string_view s);

/// Human-readable byte size, e.g. "2.5 MiB".
std::string HumanBytes(uint64_t bytes);

/// 64-bit FNV-1a over `data`, folded into `seed` (pass the previous hash
/// to chain multiple pieces; the default is the canonical offset basis).
/// Used for content digests: response integrity checks and fragment
/// replica scrubbing hash serialized XML with this.
uint64_t Fnv1a64(std::string_view data,
                 uint64_t seed = 14695981039346656037ull);

/// Fixed-width lowercase hex rendering of a 64-bit hash (16 digits).
std::string HashHex(uint64_t value);

/// Parses a lowercase/uppercase hex string (no 0x prefix, 1-16 digits)
/// into a uint64; returns false on malformed input. Inverse of HashHex.
bool ParseHex64(std::string_view s, uint64_t* out);

/// Fault-injection helper: flips one text-content character of `xml`
/// (never markup — the document stays well-formed), choosing the
/// (pick mod eligible)-th eligible character. Returns false when the
/// document has no text content to corrupt. Strings without any markup
/// are treated as pure text.
bool CorruptXmlText(std::string* xml, uint64_t pick);

}  // namespace partix

#endif  // PARTIX_COMMON_STRINGS_H_
