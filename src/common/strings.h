#ifndef PARTIX_COMMON_STRINGS_H_
#define PARTIX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace partix {

/// Splits `s` on `sep`, keeping empty pieces. Split("a//b", '/') yields
/// {"a", "", "b"}.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-sensitive substring containment, the semantics of XQuery
/// fn:contains.
bool Contains(std::string_view haystack, std::string_view needle);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Lowercases ASCII characters.
std::string AsciiLower(std::string_view s);

/// Tokenizes `text` into lowercase alphanumeric word tokens (for the text
/// index). "Good, CHEAP item-42" -> {"good", "cheap", "item", "42"}.
std::vector<std::string> TokenizeWords(std::string_view text);

/// Parses a decimal double; returns false on malformed input (the whole
/// trimmed string must be consumed).
bool ParseDouble(std::string_view s, double* out);

/// Parses a decimal int64; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats a double the way XQuery serializes numbers: integers without a
/// decimal point, otherwise shortest round-trip representation.
std::string FormatNumber(double v);

/// Escapes XML text content: & < > (quotes are left alone in text).
std::string EscapeXmlText(std::string_view s);

/// Escapes XML attribute values (also escapes double quotes).
std::string EscapeXmlAttr(std::string_view s);

/// Human-readable byte size, e.g. "2.5 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace partix

#endif  // PARTIX_COMMON_STRINGS_H_
