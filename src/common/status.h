#ifndef PARTIX_COMMON_STATUS_H_
#define PARTIX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace partix {

/// Canonical error codes used across the PartiX codebase. Modeled after the
/// usual database-engine status vocabulary; libraries never throw, they
/// return `Status` (or `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kCorruption,
  kUnavailable,
  kDeadlineExceeded,
  /// A bounded resource refused the work (admission queue full, quota
  /// spent). Unlike kUnavailable the system is healthy — the caller asked
  /// for more than the configured capacity and may retry later.
  kResourceExhausted,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// A cheap, movable success-or-error value. An OK status carries no message;
/// error statuses carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code_name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>`.
#define PARTIX_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::partix::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a `Result<T>` expression; on error propagates the status, on
/// success assigns the value to `lhs`.
#define PARTIX_ASSIGN_OR_RETURN(lhs, expr)           \
  auto PARTIX_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!PARTIX_CONCAT_(_res_, __LINE__).ok())         \
    return PARTIX_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PARTIX_CONCAT_(_res_, __LINE__)).value()

#define PARTIX_CONCAT_INNER_(a, b) a##b
#define PARTIX_CONCAT_(a, b) PARTIX_CONCAT_INNER_(a, b)

}  // namespace partix

#endif  // PARTIX_COMMON_STATUS_H_
