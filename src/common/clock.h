#ifndef PARTIX_COMMON_CLOCK_H_
#define PARTIX_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace partix {

/// Monotonic wall-clock stopwatch used for all experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  /// Resets the start point.
  void Restart() { start_ = Now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using TimePoint = std::chrono::steady_clock::time_point;
  static TimePoint Now() { return std::chrono::steady_clock::now(); }
  TimePoint start_;
};

}  // namespace partix

#endif  // PARTIX_COMMON_CLOCK_H_
