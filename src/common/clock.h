#ifndef PARTIX_COMMON_CLOCK_H_
#define PARTIX_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace partix {

/// A monotonic time source. The default implementation reads
/// std::chrono::steady_clock; tests and deterministic simulations inject a
/// ManualClock so that every timing the system reports (executor wall
/// times, trace spans, breaker windows) is reproducible.
///
/// Implementations must be thread-safe: executor workers read the clock
/// concurrently.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;

  /// The process-wide steady_clock-backed instance.
  static const Clock* Monotonic();
};

/// The real monotonic clock (steady_clock).
class MonotonicClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

inline const Clock* Clock::Monotonic() {
  static const MonotonicClock clock;
  return &clock;
}

/// A clock that only moves when told to. Thread-safe (atomic time value),
/// so executor workers may read it while a test thread advances it.
///
/// With `set_auto_advance_nanos(step)`, every NowNanos() call additionally
/// moves time forward by `step` *after* reading it — a deterministic
/// stand-in for "time passes while code runs" that lets single-threaded
/// tests drive timeout and deadline paths without real sleeps or a second
/// thread advancing the clock.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_nanos = 0) : nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    const int64_t step = auto_advance_nanos_.load(std::memory_order_relaxed);
    if (step == 0) return nanos_.load(std::memory_order_relaxed);
    return nanos_.fetch_add(step, std::memory_order_relaxed);
  }

  void AdvanceNanos(int64_t delta) {
    nanos_.fetch_add(delta, std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t delta) { AdvanceNanos(delta * 1000); }
  void AdvanceMillis(double delta) {
    AdvanceNanos(static_cast<int64_t>(delta * 1e6));
  }

  /// Every subsequent read returns the current time and then advances it
  /// by `step` nanoseconds. 0 (the default) restores pure manual control.
  void set_auto_advance_nanos(int64_t step) {
    auto_advance_nanos_.store(step, std::memory_order_relaxed);
  }
  void set_auto_advance_millis(double step) {
    set_auto_advance_nanos(static_cast<int64_t>(step * 1e6));
  }

 private:
  mutable std::atomic<int64_t> nanos_;
  std::atomic<int64_t> auto_advance_nanos_{0};
};

/// Monotonic wall-clock stopwatch used for all experiment timing. By
/// default it reads steady_clock directly; constructed with a Clock it
/// reads that instead, so injected time flows through every elapsed-time
/// figure. Copyable; a copy shares the clock and the start point.
class Stopwatch {
 public:
  Stopwatch() : clock_(nullptr), start_nanos_(SteadyNanos()) {}
  explicit Stopwatch(const Clock* clock)
      : clock_(clock), start_nanos_(NowNanos()) {}

  /// Resets the start point.
  void Restart() { start_nanos_ = NowNanos(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(NowNanos() - start_nanos_) * 1e-9;
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  static int64_t SteadyNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  int64_t NowNanos() const {
    return clock_ != nullptr ? clock_->NowNanos() : SteadyNanos();
  }

  const Clock* clock_;
  int64_t start_nanos_;
};

}  // namespace partix

#endif  // PARTIX_COMMON_CLOCK_H_
