#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace partix {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (std::string_view piece : Split(s, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "INF" : "-INF";
  double integral;
  if (std::modf(v, &integral) == 0.0 && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {
std::string EscapeXml(std::string_view s, bool attr) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (attr) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

std::string EscapeXmlText(std::string_view s) { return EscapeXml(s, false); }

std::string EscapeXmlAttr(std::string_view s) { return EscapeXml(s, true); }

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string HashHex(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t value = 0;
  for (char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

bool CorruptXmlText(std::string* xml, uint64_t pick) {
  // Eligible characters: printable text content outside tags. The flip
  // swaps to a distinct printable character that needs no XML escaping,
  // so the document re-parses cleanly and the corruption is only
  // detectable by content comparison (exactly what checksums are for).
  auto eligible = [](char c, bool in_tag) {
    return !in_tag && c != '<' && c != '>' && c != '&' &&
           static_cast<unsigned char>(c) > ' ';
  };
  size_t count = 0;
  bool in_tag = false;
  for (char c : *xml) {
    if (c == '<') in_tag = true;
    if (eligible(c, in_tag)) ++count;
    if (c == '>') in_tag = false;
  }
  if (count == 0) return false;
  size_t target = static_cast<size_t>(pick % count);
  in_tag = false;
  for (char& c : *xml) {
    if (c == '<') in_tag = true;
    if (eligible(c, in_tag)) {
      if (target == 0) {
        c = c == '#' ? '~' : '#';
        return true;
      }
      --target;
    }
    if (c == '>') in_tag = false;
  }
  return false;
}

}  // namespace partix
