#ifndef PARTIX_COMMON_RESULT_H_
#define PARTIX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace partix {

/// A value-or-status holder, the exception-free return type for fallible
/// functions that produce a value. Like absl::StatusOr<T>.
///
/// Invariant: exactly one of {value, error status} is present. A
/// default-constructed Result is an internal error ("uninitialized").
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  /// Implicit conversion from a value, so `return value;` works.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  /// Implicit conversion from a non-OK status, so
  /// `return Status::NotFound(...)` works. An OK status is a programming
  /// error and is converted to an internal error.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("OK status used to construct Result");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace partix

#endif  // PARTIX_COMMON_RESULT_H_
