#include "xquery/compiled_query.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "xquery/parser.h"

namespace partix::xquery {

namespace {

/// Collects literal collection()/doc() names; flags dynamic names.
struct CollectionScan {
  std::vector<std::string> names;
  bool dynamic = false;

  void Walk(const Expr& e) {
    if (e.Is<FunctionCall>()) {
      const auto& f = e.As<FunctionCall>();
      if (f.name == "collection" || f.name == "doc") {
        if (f.args.size() == 1 && f.args[0]->Is<StringLit>()) {
          names.push_back(f.args[0]->As<StringLit>().value);
        } else {
          dynamic = true;
        }
      }
      for (const ExprPtr& arg : f.args) Walk(*arg);
      return;
    }
    if (e.Is<BinaryOp>()) {
      Walk(*e.As<BinaryOp>().lhs);
      Walk(*e.As<BinaryOp>().rhs);
      return;
    }
    if (e.Is<UnaryMinus>()) {
      Walk(*e.As<UnaryMinus>().operand);
      return;
    }
    if (e.Is<PathExpr>()) {
      const auto& p = e.As<PathExpr>();
      if (p.source != nullptr) Walk(*p.source);
      for (const AxisStep& s : p.steps) {
        for (const ExprPtr& pred : s.predicates) Walk(*pred);
      }
      return;
    }
    if (e.Is<FlworExpr>()) {
      const auto& f = e.As<FlworExpr>();
      for (const ForLetClause& clause : f.clauses) Walk(*clause.expr);
      if (f.where != nullptr) Walk(*f.where);
      if (f.order_by != nullptr) Walk(*f.order_by);
      Walk(*f.ret);
      return;
    }
    if (e.Is<ElementCtor>()) {
      for (const ExprPtr& c : e.As<ElementCtor>().content) Walk(*c);
      return;
    }
    if (e.Is<IfExpr>()) {
      const auto& i = e.As<IfExpr>();
      Walk(*i.cond);
      Walk(*i.then_branch);
      Walk(*i.else_branch);
      return;
    }
    if (e.Is<QuantifiedExpr>()) {
      const auto& q = e.As<QuantifiedExpr>();
      for (const ForLetClause& b : q.bindings) Walk(*b.expr);
      Walk(*q.satisfies);
      return;
    }
    // StringLit / NumberLit / VarRef / ContextItem: leaves.
  }
};

/// Runs the shared static analysis over a parsed AST.
void Analyze(CollectionScan* scan, const Expr& ast) { scan->Walk(ast); }

}  // namespace

Result<CompiledQueryPtr> CompiledQuery::Compile(std::string text) {
  Stopwatch watch;
  PARTIX_ASSIGN_OR_RETURN(ExprPtr ast, ParseQuery(text));
  auto compiled = std::shared_ptr<CompiledQuery>(new CompiledQuery());
  compiled->text_ = std::move(text);
  compiled->ast_ = std::move(ast);
  CollectionScan scan;
  Analyze(&scan, *compiled->ast_);
  std::sort(scan.names.begin(), scan.names.end());
  scan.names.erase(std::unique(scan.names.begin(), scan.names.end()),
                   scan.names.end());
  compiled->collections_ = std::move(scan.names);
  compiled->dynamic_collections_ = scan.dynamic;
  compiled->compile_ms_ = watch.ElapsedMillis();
  return CompiledQueryPtr(std::move(compiled));
}

CompiledQueryPtr CompiledQuery::FromAst(std::string text, ExprPtr ast) {
  auto compiled = std::shared_ptr<CompiledQuery>(new CompiledQuery());
  compiled->text_ = std::move(text);
  compiled->ast_ = std::move(ast);
  CollectionScan scan;
  Analyze(&scan, *compiled->ast_);
  std::sort(scan.names.begin(), scan.names.end());
  scan.names.erase(std::unique(scan.names.begin(), scan.names.end()),
                   scan.names.end());
  compiled->collections_ = std::move(scan.names);
  compiled->dynamic_collections_ = scan.dynamic;
  return CompiledQueryPtr(std::move(compiled));
}

}  // namespace partix::xquery
