#include "xquery/parser.h"

#include <cctype>

#include "common/strings.h"

namespace partix::xquery {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

/// Scannerless recursive-descent parser. The lexical grammar of XQuery is
/// context-sensitive ('<' starts either a comparison or an element
/// constructor; '*' is either a wildcard or multiplication), which a
/// scannerless parser resolves naturally by position.
class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  Result<ExprPtr> Parse() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSequence());
    SkipWs();
    if (!AtEnd()) return Error("unexpected trailing content");
    return e;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t off = 0) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }

  void SkipWs() {
    while (!AtEnd()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '(' && Peek(1) == ':') {
        // XQuery comment (: ... :), nestable.
        int depth = 0;
        while (pos_ < text_.size()) {
          if (Peek() == '(' && Peek(1) == ':') {
            ++depth;
            pos_ += 2;
          } else if (Peek() == ':' && Peek(1) == ')') {
            --depth;
            pos_ += 2;
            if (depth == 0) break;
          } else {
            ++pos_;
          }
        }
      } else {
        break;
      }
    }
  }

  Status Error(std::string_view msg) const {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(std::string(msg) + " at line " +
                              std::to_string(line) + ", column " +
                              std::to_string(col));
  }

  bool ConsumeChar(char c) {
    SkipWs();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeSeq(std::string_view seq) {
    SkipWs();
    if (text_.substr(pos_, seq.size()) != seq) return false;
    pos_ += seq.size();
    return true;
  }

  /// Consumes `word` only at a word boundary (not a prefix of a longer
  /// name).
  bool ConsumeKeyword(std::string_view word) {
    SkipWs();
    if (text_.substr(pos_, word.size()) != word) return false;
    char after = pos_ + word.size() < text_.size()
                     ? text_[pos_ + word.size()]
                     : '\0';
    if (IsNameChar(after)) return false;
    pos_ += word.size();
    return true;
  }

  bool PeekKeyword(std::string_view word) {
    size_t save = pos_;
    bool ok = ConsumeKeyword(word);
    pos_ = save;
    return ok;
  }

  Result<std::string> ParseName() {
    SkipWs();
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ParseStringLiteral() {
    SkipWs();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected a string literal");
    }
    char quote = Peek();
    ++pos_;
    std::string out;
    while (!AtEnd() && Peek() != quote) {
      out.push_back(Peek());
      ++pos_;
    }
    if (AtEnd()) return Error("unterminated string literal");
    ++pos_;
    return out;
  }

  // ---- Expression grammar ----

  Result<ExprPtr> ParseExprSequence() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseExprSingle());
    while (ConsumeChar(',')) {
      PARTIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExprSingle());
      lhs = MakeExpr(BinaryOp{BinaryOp::Op::kComma, std::move(lhs),
                              std::move(rhs)});
    }
    return lhs;
  }

  Result<ExprPtr> ParseExprSingle() {
    SkipWs();
    if (PeekKeyword("for") || PeekKeyword("let")) return ParseFlwor();
    if (PeekKeyword("if")) return ParseIf();
    if (PeekKeyword("some") || PeekKeyword("every")) {
      return ParseQuantified();
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseQuantified() {
    QuantifiedExpr quantified;
    if (ConsumeKeyword("every")) {
      quantified.is_every = true;
    } else if (!ConsumeKeyword("some")) {
      return Error("expected 'some' or 'every'");
    }
    while (true) {
      if (!ConsumeChar('$')) return Error("expected '$variable'");
      PARTIX_ASSIGN_OR_RETURN(std::string var, ParseName());
      if (!ConsumeKeyword("in")) return Error("expected 'in'");
      PARTIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
      quantified.bindings.push_back(
          ForLetClause{false, std::move(var), std::move(e)});
      if (!ConsumeChar(',')) break;
    }
    if (!ConsumeKeyword("satisfies")) return Error("expected 'satisfies'");
    PARTIX_ASSIGN_OR_RETURN(quantified.satisfies, ParseExprSingle());
    return MakeExpr(std::move(quantified));
  }

  Result<ExprPtr> ParseFlwor() {
    FlworExpr flwor;
    while (true) {
      bool is_let;
      if (ConsumeKeyword("for")) {
        is_let = false;
      } else if (ConsumeKeyword("let")) {
        is_let = true;
      } else {
        break;
      }
      // One keyword introduces one or more comma-separated bindings.
      while (true) {
        if (!ConsumeChar('$')) return Error("expected '$variable'");
        PARTIX_ASSIGN_OR_RETURN(std::string var, ParseName());
        if (is_let) {
          if (!ConsumeSeq(":=")) return Error("expected ':=' in let");
        } else {
          if (!ConsumeKeyword("in")) return Error("expected 'in' in for");
        }
        PARTIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
        flwor.clauses.push_back(
            ForLetClause{is_let, std::move(var), std::move(e)});
        if (!ConsumeChar(',')) break;
      }
    }
    if (flwor.clauses.empty()) return Error("expected for/let clause");
    if (ConsumeKeyword("where")) {
      PARTIX_ASSIGN_OR_RETURN(flwor.where, ParseExprSingle());
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error("expected 'by' after order");
      PARTIX_ASSIGN_OR_RETURN(flwor.order_by, ParseExprSingle());
      if (ConsumeKeyword("descending")) {
        flwor.order_descending = true;
      } else {
        (void)ConsumeKeyword("ascending");
      }
    }
    if (!ConsumeKeyword("return")) return Error("expected 'return'");
    PARTIX_ASSIGN_OR_RETURN(flwor.ret, ParseExprSingle());
    return MakeExpr(std::move(flwor));
  }

  Result<ExprPtr> ParseIf() {
    if (!ConsumeKeyword("if")) return Error("expected 'if'");
    if (!ConsumeChar('(')) return Error("expected '(' after if");
    PARTIX_ASSIGN_OR_RETURN(ExprPtr cond, ParseExprSequence());
    if (!ConsumeChar(')')) return Error("expected ')' after if condition");
    if (!ConsumeKeyword("then")) return Error("expected 'then'");
    PARTIX_ASSIGN_OR_RETURN(ExprPtr then_branch, ParseExprSingle());
    if (!ConsumeKeyword("else")) return Error("expected 'else'");
    PARTIX_ASSIGN_OR_RETURN(ExprPtr else_branch, ParseExprSingle());
    return MakeExpr(IfExpr{std::move(cond), std::move(then_branch),
                           std::move(else_branch)});
  }

  Result<ExprPtr> ParseOr() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("or")) {
      PARTIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeExpr(
          BinaryOp{BinaryOp::Op::kOr, std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (ConsumeKeyword("and")) {
      PARTIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = MakeExpr(
          BinaryOp{BinaryOp::Op::kAnd, std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    SkipWs();
    BinaryOp::Op op;
    if (ConsumeSeq("!=")) {
      op = BinaryOp::Op::kNe;
    } else if (ConsumeSeq("<=")) {
      op = BinaryOp::Op::kLe;
    } else if (ConsumeSeq(">=")) {
      op = BinaryOp::Op::kGe;
    } else if (ConsumeSeq("=")) {
      op = BinaryOp::Op::kEq;
    } else if (!AtEnd() && Peek() == '<' && Peek(1) != '/' &&
               !IsNameStart(Peek(1)) && ConsumeSeq("<")) {
      op = BinaryOp::Op::kLt;
    } else if (ConsumeSeq(">")) {
      op = BinaryOp::Op::kGt;
    } else {
      return lhs;
    }
    PARTIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeExpr(BinaryOp{op, std::move(lhs), std::move(rhs)});
  }

  Result<ExprPtr> ParseAdditive() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      SkipWs();
      BinaryOp::Op op;
      if (ConsumeChar('+')) {
        op = BinaryOp::Op::kAdd;
      } else if (!AtEnd() && Peek() == '-' && ConsumeChar('-')) {
        op = BinaryOp::Op::kSub;
      } else {
        return lhs;
      }
      PARTIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeExpr(BinaryOp{op, std::move(lhs), std::move(rhs)});
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    PARTIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      SkipWs();
      BinaryOp::Op op;
      if (!AtEnd() && Peek() == '*' && ConsumeChar('*')) {
        op = BinaryOp::Op::kMul;
      } else if (ConsumeKeyword("div")) {
        op = BinaryOp::Op::kDiv;
      } else if (ConsumeKeyword("mod")) {
        op = BinaryOp::Op::kMod;
      } else {
        return lhs;
      }
      PARTIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeExpr(BinaryOp{op, std::move(lhs), std::move(rhs)});
    }
  }

  Result<ExprPtr> ParseUnary() {
    SkipWs();
    if (!AtEnd() && Peek() == '-') {
      ++pos_;
      PARTIX_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeExpr(UnaryMinus{std::move(operand)});
    }
    return ParsePathExpr();
  }

  /// Parses a primary expression and any trailing path steps.
  Result<ExprPtr> ParsePathExpr() {
    SkipWs();
    if (AtEnd()) return Error("unexpected end of query");

    // Absolute path: starts with '/' or '//'.
    if (Peek() == '/') {
      PathExpr path;
      path.source = nullptr;
      PARTIX_RETURN_IF_ERROR(ParseSteps(&path.steps));
      return MakeExpr(std::move(path));
    }

    PARTIX_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
    SkipWs();
    if (AtEnd() || Peek() != '/') return primary;

    PathExpr path;
    path.source = std::move(primary);
    PARTIX_RETURN_IF_ERROR(ParseSteps(&path.steps));
    return MakeExpr(std::move(path));
  }

  Status ParseSteps(std::vector<AxisStep>* steps) {
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '/') return Status::Ok();
      ++pos_;
      AxisStep step;
      if (!AtEnd() && Peek() == '/') {
        step.step.axis = xpath::Axis::kDescendant;
        ++pos_;
      }
      SkipWs();
      if (!AtEnd() && Peek() == '@') {
        step.step.is_attribute = true;
        ++pos_;
      }
      if (!AtEnd() && Peek() == '*') {
        step.step.wildcard = true;
        ++pos_;
      } else {
        PARTIX_ASSIGN_OR_RETURN(step.step.name, ParseName());
      }
      // Bracketed predicates.
      while (ConsumeChar('[')) {
        PARTIX_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSequence());
        if (!ConsumeChar(']')) return Error("expected ']'");
        step.predicates.push_back(std::move(pred));
      }
      steps->push_back(std::move(step));
    }
  }

  Result<ExprPtr> ParsePrimary() {
    SkipWs();
    if (AtEnd()) return Error("unexpected end of query");
    char c = Peek();

    if (c == '"' || c == '\'') {
      PARTIX_ASSIGN_OR_RETURN(std::string s, ParseStringLiteral());
      return MakeExpr(StringLit{std::move(s)});
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        ++pos_;
      }
      double value = 0.0;
      if (!ParseDouble(text_.substr(start, pos_ - start), &value)) {
        return Error("malformed number");
      }
      return MakeExpr(NumberLit{value});
    }
    if (c == '$') {
      ++pos_;
      PARTIX_ASSIGN_OR_RETURN(std::string name, ParseName());
      return MakeExpr(VarRef{std::move(name)});
    }
    if (c == '.') {
      ++pos_;
      return MakeExpr(ContextItem{});
    }
    if (c == '(') {
      ++pos_;
      if (ConsumeChar(')')) {
        // Empty sequence: model as an empty FunctionCall marker.
        return MakeExpr(FunctionCall{"empty-sequence", {}});
      }
      PARTIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSequence());
      if (!ConsumeChar(')')) return Error("expected ')'");
      return e;
    }
    if (c == '<' && IsNameStart(Peek(1))) {
      return ParseElementCtor();
    }
    if (IsNameStart(c)) {
      // Keyword expressions were handled by callers; here a name is either
      // a function call or a relative child-step path.
      size_t save = pos_;
      PARTIX_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWs();
      if (!AtEnd() && Peek() == '(') {
        ++pos_;
        FunctionCall call;
        call.name = std::move(name);
        if (!ConsumeChar(')')) {
          while (true) {
            PARTIX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
            call.args.push_back(std::move(arg));
            if (ConsumeChar(',')) continue;
            if (ConsumeChar(')')) break;
            return Error("expected ',' or ')' in function arguments");
          }
        }
        return MakeExpr(std::move(call));
      }
      // Relative path step from the context item.
      pos_ = save;
      PathExpr path;
      path.source = MakeExpr(ContextItem{});
      AxisStep step;
      PARTIX_ASSIGN_OR_RETURN(step.step.name, ParseName());
      while (ConsumeChar('[')) {
        PARTIX_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSequence());
        if (!ConsumeChar(']')) return Error("expected ']'");
        step.predicates.push_back(std::move(pred));
      }
      path.steps.push_back(std::move(step));
      return MakeExpr(std::move(path));
    }
    if (c == '@') {
      // Relative attribute step from the context item.
      ++pos_;
      PathExpr path;
      path.source = MakeExpr(ContextItem{});
      AxisStep step;
      step.step.is_attribute = true;
      if (!AtEnd() && Peek() == '*') {
        step.step.wildcard = true;
        ++pos_;
      } else {
        PARTIX_ASSIGN_OR_RETURN(step.step.name, ParseName());
      }
      path.steps.push_back(std::move(step));
      return MakeExpr(std::move(path));
    }
    return Error("unexpected character in expression");
  }

  Result<ExprPtr> ParseElementCtor() {
    if (!ConsumeChar('<')) return Error("expected '<'");
    PARTIX_ASSIGN_OR_RETURN(std::string name, ParseName());
    ElementCtor ctor;
    ctor.name = std::move(name);
    // Attributes (literal values only in this subset).
    while (true) {
      SkipWs();
      if (AtEnd()) return Error("unterminated element constructor");
      if (Peek() == '>' || Peek() == '/') break;
      PARTIX_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      if (!ConsumeChar('=')) return Error("expected '=' after attribute");
      PARTIX_ASSIGN_OR_RETURN(std::string attr_value, ParseStringLiteral());
      ctor.attributes.emplace_back(std::move(attr_name),
                                   std::move(attr_value));
    }
    if (ConsumeChar('/')) {
      if (!ConsumeChar('>')) return Error("expected '>'");
      return MakeExpr(std::move(ctor));
    }
    if (!ConsumeChar('>')) return Error("expected '>'");
    // Content: raw text, enclosed {expr}, nested elements.
    std::string text_run;
    auto flush_text = [&]() {
      // Whitespace-only runs between constructs are boundary whitespace;
      // drop them (matches XQuery default).
      if (!StripWhitespace(text_run).empty()) {
        ctor.content.push_back(MakeExpr(StringLit{text_run}));
        ctor.content_is_literal_text.push_back(true);
      }
      text_run.clear();
    };
    while (true) {
      if (AtEnd()) return Error("unterminated element content");
      char ch = Peek();
      if (ch == '{') {
        flush_text();
        ++pos_;
        PARTIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSequence());
        if (!ConsumeChar('}')) return Error("expected '}'");
        ctor.content.push_back(std::move(e));
        ctor.content_is_literal_text.push_back(false);
        continue;
      }
      if (ch == '<') {
        if (Peek(1) == '/') {
          flush_text();
          pos_ += 2;
          PARTIX_ASSIGN_OR_RETURN(std::string end_name, ParseName());
          if (end_name != ctor.name) {
            return Error("mismatched constructor end tag </" + end_name +
                         ">");
          }
          if (!ConsumeChar('>')) return Error("expected '>'");
          return MakeExpr(std::move(ctor));
        }
        flush_text();
        PARTIX_ASSIGN_OR_RETURN(ExprPtr child, ParseElementCtor());
        ctor.content.push_back(std::move(child));
        ctor.content_is_literal_text.push_back(false);
        continue;
      }
      text_run.push_back(ch);
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

namespace {
thread_local uint64_t t_parse_count = 0;
}  // namespace

Result<ExprPtr> ParseQuery(std::string_view text) {
  ++t_parse_count;
  QueryParser parser(text);
  return parser.Parse();
}

uint64_t ThreadParseCount() { return t_parse_count; }

}  // namespace partix::xquery
