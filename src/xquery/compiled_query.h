#ifndef PARTIX_XQUERY_COMPILED_QUERY_H_
#define PARTIX_XQUERY_COMPILED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xquery/ast.h"

namespace partix::xquery {

class CompiledQuery;

/// Compiled queries are immutable once built and always shared const, so
/// one artifact can be handed to many threads, nodes, and retry attempts.
using CompiledQueryPtr = std::shared_ptr<const CompiledQuery>;

/// The immutable parse + static-analysis artifact of one query text: the
/// AST, the collection()/doc() names it references, and the cost of
/// producing it. This is the unit the compile-once pipeline passes between
/// layers — the decomposer compiles the submitted query once, rewritten
/// sub-queries are built from cloned ASTs without re-parsing, and engines
/// execute the AST directly (see engine/plan_cache.h for the engine-side
/// plan built on top of this).
///
/// Thread-safety: deeply immutable after construction; safe to share and
/// read from any number of threads without synchronization. The AST is
/// owned by the artifact and lives exactly as long as it.
class CompiledQuery {
 public:
  /// Parses `text` and analyzes the result. Returns the parse error on
  /// malformed input (never caches failures). `compile_ms()` reports the
  /// measured parse + analysis cost.
  static Result<CompiledQueryPtr> Compile(std::string text);

  /// Wraps an already-built AST (e.g. a decomposer rewrite of a compiled
  /// query) without parsing; `text` must be the rendered form of `ast`.
  /// Analysis still runs, but no parse cost is paid — `compile_ms()` is 0.
  static CompiledQueryPtr FromAst(std::string text, ExprPtr ast);

  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

  /// The query text this artifact was compiled from (plan-cache key and
  /// Explain display form).
  const std::string& text() const { return text_; }
  const Expr& ast() const { return *ast_; }

  /// Collection/doc names referenced through literal collection()/doc()
  /// calls, sorted and deduplicated.
  const std::vector<std::string>& collections() const { return collections_; }

  /// True when some collection()/doc() call takes a non-literal name, so
  /// `collections()` may be incomplete.
  bool has_dynamic_collections() const { return dynamic_collections_; }

  /// Measured parse + analysis cost (ms); 0 for FromAst artifacts.
  double compile_ms() const { return compile_ms_; }

 private:
  CompiledQuery() = default;

  std::string text_;
  ExprPtr ast_;
  std::vector<std::string> collections_;
  bool dynamic_collections_ = false;
  double compile_ms_ = 0.0;
};

}  // namespace partix::xquery

#endif  // PARTIX_XQUERY_COMPILED_QUERY_H_
