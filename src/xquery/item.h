#ifndef PARTIX_XQUERY_ITEM_H_
#define PARTIX_XQUERY_ITEM_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace partix::xquery {

/// A reference to a node inside a (shared, immutable) document. Results
/// keep their documents alive through the shared_ptr.
struct NodeRef {
  xml::DocumentPtr doc;
  xml::NodeId node = xml::kNullNode;

  bool operator==(const NodeRef& other) const {
    return doc.get() == other.doc.get() && node == other.node;
  }
};

/// An XQuery item: a node or an atomic value (string, number, boolean).
class Item {
 public:
  Item() : v_(std::string()) {}
  explicit Item(NodeRef node) : v_(std::move(node)) {}
  explicit Item(std::string s) : v_(std::move(s)) {}
  explicit Item(double n) : v_(n) {}
  explicit Item(bool b) : v_(b) {}

  bool IsNode() const { return std::holds_alternative<NodeRef>(v_); }
  bool IsString() const { return std::holds_alternative<std::string>(v_); }
  bool IsNumber() const { return std::holds_alternative<double>(v_); }
  bool IsBool() const { return std::holds_alternative<bool>(v_); }

  const NodeRef& AsNode() const { return std::get<NodeRef>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  double AsNumber() const { return std::get<double>(v_); }
  bool AsBool() const { return std::get<bool>(v_); }

  /// Atomizes to the item's string value (nodes: concatenated descendant
  /// text; numbers: canonical XQuery formatting).
  std::string StringValue() const;

  /// Atomizes to a number if possible.
  bool TryNumber(double* out) const;

 private:
  std::variant<NodeRef, std::string, double, bool> v_;
};

/// An XQuery sequence (flat, ordered).
using Sequence = std::vector<Item>;

/// XPath/XQuery effective boolean value: empty = false; first item a node =
/// true; singleton atomic by its truthiness. A multi-item atomic sequence
/// is a type error.
Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// Serializes a result sequence the way a query service would ship it to a
/// client: nodes as XML markup, atomics as text, items separated by
/// newlines. Also used to measure transmission sizes.
std::string SerializeSequence(const Sequence& seq);

/// Incremental form of SerializeSequence for streaming: feeding every item
/// of a sequence through one SequenceSerializer (across any number of
/// Append calls and output buffers) produces byte-identical output to
/// SerializeSequence on the whole sequence. The separator rule is a *byte*
/// rule — once any output byte has been emitted, every subsequent item is
/// preceded by '\n' — so the serializer carries that one bit of state
/// between blocks.
class SequenceSerializer {
 public:
  /// Appends `item`'s serialization (plus its separator, when due) to
  /// `*out`.
  void Append(const Item& item, std::string* out);

 private:
  bool emitted_ = false;
};

}  // namespace partix::xquery

#endif  // PARTIX_XQUERY_ITEM_H_
