#include "xquery/ast.h"

#include "common/strings.h"

namespace partix::xquery {

namespace {

const char* OpName(BinaryOp::Op op) {
  switch (op) {
    case BinaryOp::Op::kOr:
      return "or";
    case BinaryOp::Op::kAnd:
      return "and";
    case BinaryOp::Op::kEq:
      return "=";
    case BinaryOp::Op::kNe:
      return "!=";
    case BinaryOp::Op::kLt:
      return "<";
    case BinaryOp::Op::kLe:
      return "<=";
    case BinaryOp::Op::kGt:
      return ">";
    case BinaryOp::Op::kGe:
      return ">=";
    case BinaryOp::Op::kAdd:
      return "+";
    case BinaryOp::Op::kSub:
      return "-";
    case BinaryOp::Op::kMul:
      return "*";
    case BinaryOp::Op::kDiv:
      return "div";
    case BinaryOp::Op::kMod:
      return "mod";
    case BinaryOp::Op::kComma:
      return ",";
  }
  return "?";
}

void StepToString(const AxisStep& s, std::string* out) {
  out->append(s.step.axis == xpath::Axis::kDescendant ? "//" : "/");
  if (s.step.is_attribute) out->push_back('@');
  out->append(s.step.wildcard ? "*" : s.step.name);
  for (const ExprPtr& p : s.predicates) {
    out->push_back('[');
    out->append(ExprToString(*p));
    out->push_back(']');
  }
}

}  // namespace

std::string ExprToString(const Expr& e) {
  std::string out;
  if (e.Is<StringLit>()) {
    out = "\"" + e.As<StringLit>().value + "\"";
  } else if (e.Is<NumberLit>()) {
    out = FormatNumber(e.As<NumberLit>().value);
  } else if (e.Is<VarRef>()) {
    out = "$" + e.As<VarRef>().name;
  } else if (e.Is<ContextItem>()) {
    out = ".";
  } else if (e.Is<BinaryOp>()) {
    const auto& b = e.As<BinaryOp>();
    if (b.op == BinaryOp::Op::kComma) {
      out = "(" + ExprToString(*b.lhs) + ", " + ExprToString(*b.rhs) + ")";
    } else {
      out = "(" + ExprToString(*b.lhs) + " " + OpName(b.op) + " " +
            ExprToString(*b.rhs) + ")";
    }
  } else if (e.Is<UnaryMinus>()) {
    out = "-" + ExprToString(*e.As<UnaryMinus>().operand);
  } else if (e.Is<PathExpr>()) {
    const auto& p = e.As<PathExpr>();
    if (p.source != nullptr) out = ExprToString(*p.source);
    for (const AxisStep& s : p.steps) StepToString(s, &out);
  } else if (e.Is<FunctionCall>()) {
    const auto& f = e.As<FunctionCall>();
    out = f.name + "(";
    for (size_t i = 0; i < f.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToString(*f.args[i]);
    }
    out += ")";
  } else if (e.Is<FlworExpr>()) {
    const auto& f = e.As<FlworExpr>();
    for (const ForLetClause& c : f.clauses) {
      out += c.is_let ? "let $" + c.var + " := " : "for $" + c.var + " in ";
      out += ExprToString(*c.expr) + " ";
    }
    if (f.where != nullptr) out += "where " + ExprToString(*f.where) + " ";
    if (f.order_by != nullptr) {
      out += "order by " + ExprToString(*f.order_by) +
             (f.order_descending ? " descending " : " ");
    }
    out += "return " + ExprToString(*f.ret);
  } else if (e.Is<ElementCtor>()) {
    const auto& c = e.As<ElementCtor>();
    out = "<" + c.name;
    for (const auto& [name, value] : c.attributes) {
      out += " " + name + "=\"" + EscapeXmlAttr(value) + "\"";
    }
    out += ">";
    for (size_t i = 0; i < c.content.size(); ++i) {
      if (c.content_is_literal_text[i]) {
        out += c.content[i]->As<StringLit>().value;
      } else {
        out += "{" + ExprToString(*c.content[i]) + "}";
      }
    }
    out += "</" + c.name + ">";
  } else if (e.Is<QuantifiedExpr>()) {
    const auto& q = e.As<QuantifiedExpr>();
    out = q.is_every ? "every " : "some ";
    for (size_t i = 0; i < q.bindings.size(); ++i) {
      if (i > 0) out += ", ";
      out += "$" + q.bindings[i].var + " in " +
             ExprToString(*q.bindings[i].expr);
    }
    out += " satisfies " + ExprToString(*q.satisfies);
  } else if (e.Is<IfExpr>()) {
    const auto& i = e.As<IfExpr>();
    out = "if (" + ExprToString(*i.cond) + ") then " +
          ExprToString(*i.then_branch) + " else " +
          ExprToString(*i.else_branch);
  }
  return out;
}

ExprPtr CloneExpr(const Expr& e) {
  if (e.Is<StringLit>()) return MakeExpr(StringLit{e.As<StringLit>().value});
  if (e.Is<NumberLit>()) return MakeExpr(NumberLit{e.As<NumberLit>().value});
  if (e.Is<VarRef>()) return MakeExpr(VarRef{e.As<VarRef>().name});
  if (e.Is<ContextItem>()) return MakeExpr(ContextItem{});
  if (e.Is<BinaryOp>()) {
    const auto& b = e.As<BinaryOp>();
    return MakeExpr(BinaryOp{b.op, CloneExpr(*b.lhs), CloneExpr(*b.rhs)});
  }
  if (e.Is<UnaryMinus>()) {
    return MakeExpr(UnaryMinus{CloneExpr(*e.As<UnaryMinus>().operand)});
  }
  if (e.Is<PathExpr>()) {
    const auto& p = e.As<PathExpr>();
    PathExpr copy;
    copy.source = p.source ? CloneExpr(*p.source) : nullptr;
    for (const AxisStep& s : p.steps) {
      AxisStep sc;
      sc.step = s.step;
      for (const ExprPtr& pred : s.predicates) {
        sc.predicates.push_back(CloneExpr(*pred));
      }
      copy.steps.push_back(std::move(sc));
    }
    return MakeExpr(std::move(copy));
  }
  if (e.Is<FunctionCall>()) {
    const auto& f = e.As<FunctionCall>();
    FunctionCall copy;
    copy.name = f.name;
    for (const ExprPtr& a : f.args) copy.args.push_back(CloneExpr(*a));
    return MakeExpr(std::move(copy));
  }
  if (e.Is<FlworExpr>()) {
    const auto& f = e.As<FlworExpr>();
    FlworExpr copy;
    for (const ForLetClause& c : f.clauses) {
      copy.clauses.push_back(
          ForLetClause{c.is_let, c.var, CloneExpr(*c.expr)});
    }
    copy.where = f.where ? CloneExpr(*f.where) : nullptr;
    copy.order_by = f.order_by ? CloneExpr(*f.order_by) : nullptr;
    copy.order_descending = f.order_descending;
    copy.ret = CloneExpr(*f.ret);
    return MakeExpr(std::move(copy));
  }
  if (e.Is<ElementCtor>()) {
    const auto& c = e.As<ElementCtor>();
    ElementCtor copy;
    copy.name = c.name;
    copy.attributes = c.attributes;
    for (const ExprPtr& item : c.content) {
      copy.content.push_back(CloneExpr(*item));
    }
    copy.content_is_literal_text = c.content_is_literal_text;
    return MakeExpr(std::move(copy));
  }
  if (e.Is<QuantifiedExpr>()) {
    const auto& q = e.As<QuantifiedExpr>();
    QuantifiedExpr copy;
    copy.is_every = q.is_every;
    for (const ForLetClause& b : q.bindings) {
      copy.bindings.push_back(
          ForLetClause{b.is_let, b.var, CloneExpr(*b.expr)});
    }
    copy.satisfies = CloneExpr(*q.satisfies);
    return MakeExpr(std::move(copy));
  }
  const auto& i = e.As<IfExpr>();
  return MakeExpr(IfExpr{CloneExpr(*i.cond), CloneExpr(*i.then_branch),
                         CloneExpr(*i.else_branch)});
}

}  // namespace partix::xquery
