#include "xquery/evaluator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "common/strings.h"
#include "xpath/eval.h"
#include "xquery/parser.h"

namespace partix::xquery {

namespace {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

/// Key for order-preserving dedup of node sequences.
struct NodeKey {
  const Document* doc;
  NodeId node;
  bool operator==(const NodeKey& other) const {
    return doc == other.doc && node == other.node;
  }
};
struct NodeKeyHash {
  size_t operator()(const NodeKey& k) const {
    return std::hash<const void*>()(k.doc) * 31 + k.node;
  }
};

bool StepMatches(const Document& doc, NodeId n, const xpath::Step& step) {
  if (step.is_attribute) {
    if (doc.kind(n) != NodeKind::kAttribute) return false;
  } else {
    if (doc.kind(n) != NodeKind::kElement) return false;
  }
  return step.wildcard || doc.name(n) == step.name;
}

}  // namespace

Evaluator::Evaluator(CollectionResolver* resolver,
                     std::shared_ptr<xml::NamePool> pool)
    : resolver_(resolver), pool_(std::move(pool)) {
  if (pool_ == nullptr) pool_ = std::make_shared<xml::NamePool>();
}

void Evaluator::BindVariable(const std::string& name, Sequence value) {
  variables_[name] = std::move(value);
}

void Evaluator::SetContextItem(Item item) {
  context_stack_.clear();
  context_stack_.push_back(std::move(item));
}

Result<Sequence> Evaluator::Eval(const Expr& query) {
  return EvalExpr(query);
}

Result<Sequence> Evaluator::EvalExpr(const Expr& e) {
  if (e.Is<StringLit>()) return Sequence{Item(e.As<StringLit>().value)};
  if (e.Is<NumberLit>()) return Sequence{Item(e.As<NumberLit>().value)};
  if (e.Is<VarRef>()) {
    auto it = variables_.find(e.As<VarRef>().name);
    if (it == variables_.end()) {
      return Status::InvalidArgument("unbound variable $" +
                                     e.As<VarRef>().name);
    }
    return it->second;
  }
  if (e.Is<ContextItem>()) {
    if (context_stack_.empty()) {
      return Status::InvalidArgument("no context item for '.'");
    }
    return Sequence{context_stack_.back()};
  }
  if (e.Is<BinaryOp>()) return EvalBinary(e.As<BinaryOp>());
  if (e.Is<UnaryMinus>()) {
    PARTIX_ASSIGN_OR_RETURN(Sequence v,
                            EvalExpr(*e.As<UnaryMinus>().operand));
    if (v.empty()) return Sequence{};
    double n = 0.0;
    if (v.size() != 1 || !v[0].TryNumber(&n)) {
      return Status::InvalidArgument("unary minus on a non-number");
    }
    return Sequence{Item(-n)};
  }
  if (e.Is<PathExpr>()) return EvalPath(e.As<PathExpr>());
  if (e.Is<FunctionCall>()) return EvalFunction(e.As<FunctionCall>());
  if (e.Is<FlworExpr>()) return EvalFlwor(e.As<FlworExpr>());
  if (e.Is<ElementCtor>()) return EvalElementCtor(e.As<ElementCtor>());
  if (e.Is<IfExpr>()) {
    const auto& ie = e.As<IfExpr>();
    PARTIX_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(*ie.cond));
    PARTIX_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
    return EvalExpr(b ? *ie.then_branch : *ie.else_branch);
  }
  if (e.Is<QuantifiedExpr>()) {
    PARTIX_ASSIGN_OR_RETURN(bool b,
                            EvalQuantified(e.As<QuantifiedExpr>(), 0));
    return Sequence{Item(b)};
  }
  return Status::Internal("unhandled expression kind");
}

Result<Sequence> Evaluator::EvalBinary(const BinaryOp& op) {
  using Op = BinaryOp::Op;
  switch (op.op) {
    case Op::kComma: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(*op.lhs));
      PARTIX_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(*op.rhs));
      for (Item& item : rhs) lhs.push_back(std::move(item));
      return lhs;
    }
    case Op::kOr:
    case Op::kAnd: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lseq, EvalExpr(*op.lhs));
      PARTIX_ASSIGN_OR_RETURN(bool l, EffectiveBooleanValue(lseq));
      if (op.op == Op::kOr && l) return Sequence{Item(true)};
      if (op.op == Op::kAnd && !l) return Sequence{Item(false)};
      PARTIX_ASSIGN_OR_RETURN(Sequence rseq, EvalExpr(*op.rhs));
      PARTIX_ASSIGN_OR_RETURN(bool r, EffectiveBooleanValue(rseq));
      return Sequence{Item(r)};
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(*op.lhs));
      PARTIX_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(*op.rhs));
      PARTIX_ASSIGN_OR_RETURN(bool b, GeneralCompare(op.op, lhs, rhs));
      return Sequence{Item(b)};
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(*op.lhs));
      PARTIX_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(*op.rhs));
      if (lhs.empty() || rhs.empty()) return Sequence{};
      double a = 0.0;
      double b = 0.0;
      if (lhs.size() != 1 || rhs.size() != 1 || !lhs[0].TryNumber(&a) ||
          !rhs[0].TryNumber(&b)) {
        return Status::InvalidArgument("arithmetic on non-numeric operands");
      }
      double result = 0.0;
      switch (op.op) {
        case Op::kAdd:
          result = a + b;
          break;
        case Op::kSub:
          result = a - b;
          break;
        case Op::kMul:
          result = a * b;
          break;
        case Op::kDiv:
          result = a / b;
          break;
        case Op::kMod:
          result = std::fmod(a, b);
          break;
        default:
          break;
      }
      return Sequence{Item(result)};
    }
  }
  return Status::Internal("unhandled binary operator");
}

Result<bool> Evaluator::GeneralCompare(BinaryOp::Op op, const Sequence& lhs,
                                       const Sequence& rhs) {
  // XPath general comparison: existential over all atomized pairs.
  for (const Item& l : lhs) {
    for (const Item& r : rhs) {
      double a = 0.0;
      double b = 0.0;
      int cmp;
      bool numeric = (l.IsNumber() || r.IsNumber())
                         ? (l.TryNumber(&a) && r.TryNumber(&b))
                         : (l.TryNumber(&a) && r.TryNumber(&b));
      if (numeric) {
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        std::string ls = l.StringValue();
        std::string rs = r.StringValue();
        cmp = ls.compare(rs);
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      }
      bool match = false;
      switch (op) {
        case BinaryOp::Op::kEq:
          match = cmp == 0;
          break;
        case BinaryOp::Op::kNe:
          match = cmp != 0;
          break;
        case BinaryOp::Op::kLt:
          match = cmp < 0;
          break;
        case BinaryOp::Op::kLe:
          match = cmp <= 0;
          break;
        case BinaryOp::Op::kGt:
          match = cmp > 0;
          break;
        case BinaryOp::Op::kGe:
          match = cmp >= 0;
          break;
        default:
          return Status::Internal("non-comparison op in GeneralCompare");
      }
      if (match) return true;
    }
  }
  return false;
}

bool Evaluator::MatchStepByLabels(const DocumentPtr& docp, NodeId ctx,
                                  const xpath::Step& step, Sequence* out) {
  const Document& doc = *docp;
  if (!use_structural_index_ || !doc.has_labels()) return false;
  uint32_t lo_pre = 0;
  uint32_t hi_pre = 0;
  uint32_t child_level = 0;  // 0 = no level filter (descendant axis)
  if (ctx == xml::kDocumentNode) {
    // Whole-document scan, root included. Only the descendant axis goes
    // through here; the document node's single child is matched directly.
    if (step.axis != xpath::Axis::kDescendant ||
        xpath::StaticStepStrategy(step) != xpath::StepStrategy::kLabelRange) {
      return false;
    }
    lo_pre = 0;
    hi_pre = static_cast<uint32_t>(doc.node_count());
  } else {
    if (xpath::ChooseStepStrategy(doc, ctx, step) !=
        xpath::StepStrategy::kLabelRange) {
      return false;
    }
    const xml::NodeLabel& c = doc.label(ctx);
    lo_pre = c.pre + 1;
    hi_pre = c.sub_max + 1;
    if (step.axis == xpath::Axis::kChild) child_level = c.level + 1;
  }
  ++stats_.index_range_scans;
  const std::optional<xml::NameId> name_id = doc.pool()->Find(step.name);
  if (!name_id) return true;  // name interned nowhere: empty result
  const std::vector<uint32_t>* occ = doc.NameOccurrences(*name_id);
  if (occ == nullptr) return true;
  auto lo = std::lower_bound(occ->begin(), occ->end(), lo_pre);
  auto hi = std::lower_bound(lo, occ->end(), hi_pre);
  const NodeKind want =
      step.is_attribute ? NodeKind::kAttribute : NodeKind::kElement;
  for (auto it = lo; it != hi; ++it) {
    ++stats_.nodes_visited;
    NodeId n = doc.NodeAtPre(*it);
    if (doc.kind(n) != want) continue;
    if (child_level != 0 && doc.label(n).level != child_level) continue;
    out->push_back(Item(NodeRef{docp, n}));
    ++stats_.index_range_hits;
  }
  return true;
}

Result<Sequence> Evaluator::EvalPath(const PathExpr& path) {
  Sequence context;
  if (path.source != nullptr) {
    PARTIX_ASSIGN_OR_RETURN(context, EvalExpr(*path.source));
  } else {
    // Absolute path: root of the context item's document.
    if (context_stack_.empty() || !context_stack_.back().IsNode()) {
      return Status::InvalidArgument(
          "absolute path with no context document");
    }
    const NodeRef& ctx = context_stack_.back().AsNode();
    context.push_back(Item(NodeRef{ctx.doc, ctx.doc->root()}));
    // The first step of an absolute path matches the root element itself
    // (child axis from the virtual document node) or any element
    // (descendant axis); reuse step evaluation by treating the root as
    // context and matching step 0 specially.
    if (path.steps.empty()) return context;
    const AxisStep& first = path.steps[0];
    Sequence initial;
    const Document& doc = *ctx.doc;
    if (first.step.axis == xpath::Axis::kChild) {
      if (StepMatches(doc, doc.root(), first.step)) {
        initial.push_back(Item(NodeRef{ctx.doc, doc.root()}));
      }
    } else if (!MatchStepByLabels(ctx.doc, xml::kDocumentNode, first.step,
                                  &initial)) {
      doc.VisitSubtree(doc.root(), [&](NodeId n) {
        ++stats_.nodes_visited;
        if (StepMatches(doc, n, first.step)) {
          initial.push_back(Item(NodeRef{ctx.doc, n}));
        }
      });
    }
    for (const ExprPtr& pred : first.predicates) {
      PARTIX_ASSIGN_OR_RETURN(initial,
                              ApplyPredicate(*pred, std::move(initial)));
    }
    return EvalSteps(std::move(initial), path.steps, 1);
  }
  return EvalSteps(std::move(context), path.steps, 0);
}

Result<Sequence> Evaluator::EvalSteps(Sequence context,
                                      const std::vector<AxisStep>& steps,
                                      size_t first) {
  Sequence current = std::move(context);
  for (size_t si = first; si < steps.size(); ++si) {
    const AxisStep& axis_step = steps[si];
    Sequence next;
    std::unordered_set<NodeKey, NodeKeyHash> seen;
    for (const Item& item : current) {
      if (!item.IsNode()) {
        return Status::InvalidArgument(
            "path step applied to an atomic value");
      }
      const NodeRef& ref = item.AsNode();
      const Document& doc = *ref.doc;
      // Collect matches for this context node.
      Sequence matches;
      if (ref.node == xml::kDocumentNode) {
        // The virtual document node: its only child is the root element.
        if (!doc.empty()) {
          if (axis_step.step.axis == xpath::Axis::kChild) {
            ++stats_.nodes_visited;
            if (StepMatches(doc, doc.root(), axis_step.step)) {
              matches.push_back(Item(NodeRef{ref.doc, doc.root()}));
            }
          } else if (!MatchStepByLabels(ref.doc, xml::kDocumentNode,
                                        axis_step.step, &matches)) {
            doc.VisitSubtree(doc.root(), [&](NodeId n) {
              ++stats_.nodes_visited;
              if (StepMatches(doc, n, axis_step.step)) {
                matches.push_back(Item(NodeRef{ref.doc, n}));
              }
            });
          }
        }
      } else if (MatchStepByLabels(ref.doc, ref.node, axis_step.step,
                                   &matches)) {
        // Step answered by a label-range scan; matches already appended
        // in document order.
      } else if (axis_step.step.axis == xpath::Axis::kChild) {
        for (NodeId c = doc.first_child(ref.node); c != kNullNode;
             c = doc.next_sibling(c)) {
          ++stats_.nodes_visited;
          if (StepMatches(doc, c, axis_step.step)) {
            matches.push_back(Item(NodeRef{ref.doc, c}));
          }
        }
      } else {
        doc.VisitSubtree(ref.node, [&](NodeId n) {
          ++stats_.nodes_visited;
          if (n != ref.node && StepMatches(doc, n, axis_step.step)) {
            matches.push_back(Item(NodeRef{ref.doc, n}));
          }
        });
      }
      // Apply predicates per context node (XPath positional semantics).
      for (const ExprPtr& pred : axis_step.predicates) {
        PARTIX_ASSIGN_OR_RETURN(matches,
                                ApplyPredicate(*pred, std::move(matches)));
        if (matches.empty()) break;
      }
      for (Item& m : matches) {
        NodeKey key{m.AsNode().doc.get(), m.AsNode().node};
        if (seen.insert(key).second) next.push_back(std::move(m));
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

Result<Sequence> Evaluator::ApplyPredicate(const Expr& pred,
                                           Sequence matches) {
  // Fast path: a literal number is a positional filter.
  if (pred.Is<NumberLit>()) {
    double want = pred.As<NumberLit>().value;
    size_t idx = static_cast<size_t>(want);
    Sequence out;
    if (want >= 1 && static_cast<double>(idx) == want &&
        idx <= matches.size()) {
      out.push_back(matches[idx - 1]);
    }
    return out;
  }
  Sequence out;
  for (size_t i = 0; i < matches.size(); ++i) {
    context_stack_.push_back(matches[i]);
    position_stack_.emplace_back(i + 1, matches.size());
    Result<Sequence> value = EvalExpr(pred);
    position_stack_.pop_back();
    context_stack_.pop_back();
    if (!value.ok()) return value.status();
    const Sequence& v = *value;
    // A numeric result selects by position.
    if (v.size() == 1 && v[0].IsNumber()) {
      if (static_cast<size_t>(v[0].AsNumber()) == i + 1) {
        out.push_back(matches[i]);
      }
      continue;
    }
    PARTIX_ASSIGN_OR_RETURN(bool keep, EffectiveBooleanValue(v));
    if (keep) out.push_back(matches[i]);
  }
  return out;
}

namespace {

/// Orders FLWOR sort keys: numbers numerically when both sides are
/// numeric, strings otherwise; empty keys sort first.
bool KeyLess(const Item& a, const Item& b) {
  double na = 0.0;
  double nb = 0.0;
  if (a.TryNumber(&na) && b.TryNumber(&nb)) return na < nb;
  return a.StringValue() < b.StringValue();
}

}  // namespace

Result<Sequence> Evaluator::EvalFlwor(const FlworExpr& flwor) {
  Sequence out;
  if (flwor.order_by == nullptr) {
    PARTIX_RETURN_IF_ERROR(
        EvalFlworClauses(flwor, 0, &out, nullptr).status());
    return out;
  }
  std::vector<std::pair<Item, Sequence>> keyed;
  PARTIX_RETURN_IF_ERROR(
      EvalFlworClauses(flwor, 0, nullptr, &keyed).status());
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const auto& a, const auto& b) {
                     return flwor.order_descending
                                ? KeyLess(b.first, a.first)
                                : KeyLess(a.first, b.first);
                   });
  for (auto& [key, chunk] : keyed) {
    for (Item& item : chunk) out.push_back(std::move(item));
  }
  return out;
}

Result<Sequence> Evaluator::EvalFlworClauses(
    const FlworExpr& flwor, size_t clause_idx, Sequence* out,
    std::vector<std::pair<Item, Sequence>>* keyed) {
  if (clause_idx == flwor.clauses.size()) {
    if (flwor.where != nullptr) {
      PARTIX_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(*flwor.where));
      PARTIX_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      if (!b) return Sequence{};
    }
    if (keyed != nullptr) {
      PARTIX_ASSIGN_OR_RETURN(Sequence key_seq,
                              EvalExpr(*flwor.order_by));
      Item key = key_seq.empty() ? Item(std::string()) : key_seq[0];
      PARTIX_ASSIGN_OR_RETURN(Sequence items, EvalExpr(*flwor.ret));
      keyed->emplace_back(std::move(key), std::move(items));
      return Sequence{};
    }
    PARTIX_ASSIGN_OR_RETURN(Sequence items, EvalExpr(*flwor.ret));
    for (Item& item : items) out->push_back(std::move(item));
    return Sequence{};
  }
  const ForLetClause& clause = flwor.clauses[clause_idx];
  PARTIX_ASSIGN_OR_RETURN(Sequence binding, EvalExpr(*clause.expr));
  // Save and restore any shadowed variable.
  auto saved = variables_.find(clause.var);
  bool had_saved = saved != variables_.end();
  Sequence saved_value;
  if (had_saved) saved_value = saved->second;

  Status status = Status::Ok();
  if (clause.is_let) {
    variables_[clause.var] = std::move(binding);
    Result<Sequence> r = EvalFlworClauses(flwor, clause_idx + 1, out, keyed);
    if (!r.ok()) status = r.status();
  } else {
    for (Item& item : binding) {
      variables_[clause.var] = Sequence{item};
      Result<Sequence> r =
          EvalFlworClauses(flwor, clause_idx + 1, out, keyed);
      if (!r.ok()) {
        status = r.status();
        break;
      }
    }
  }
  if (had_saved) {
    variables_[clause.var] = std::move(saved_value);
  } else {
    variables_.erase(clause.var);
  }
  PARTIX_RETURN_IF_ERROR(status);
  return Sequence{};
}

Result<bool> Evaluator::EvalQuantified(const QuantifiedExpr& quantified,
                                       size_t binding_idx) {
  if (binding_idx == quantified.bindings.size()) {
    PARTIX_ASSIGN_OR_RETURN(Sequence value, EvalExpr(*quantified.satisfies));
    return EffectiveBooleanValue(value);
  }
  const ForLetClause& clause = quantified.bindings[binding_idx];
  PARTIX_ASSIGN_OR_RETURN(Sequence binding, EvalExpr(*clause.expr));
  auto saved = variables_.find(clause.var);
  bool had_saved = saved != variables_.end();
  Sequence saved_value;
  if (had_saved) saved_value = saved->second;

  // some: true if any tuple satisfies; every: false if any tuple fails.
  bool result = quantified.is_every;
  Status status = Status::Ok();
  for (Item& item : binding) {
    variables_[clause.var] = Sequence{item};
    Result<bool> r = EvalQuantified(quantified, binding_idx + 1);
    if (!r.ok()) {
      status = r.status();
      break;
    }
    if (*r != quantified.is_every) {
      result = !quantified.is_every;
      break;
    }
  }
  if (had_saved) {
    variables_[clause.var] = std::move(saved_value);
  } else {
    variables_.erase(clause.var);
  }
  PARTIX_RETURN_IF_ERROR(status);
  return result;
}

Status Evaluator::BuildContent(const Sequence& content, bool literal_text,
                               xml::Document* doc, xml::NodeId parent,
                               bool* last_was_atomic) {
  for (const Item& item : content) {
    if (item.IsNode()) {
      const NodeRef& ref = item.AsNode();
      if (ref.node == xml::kDocumentNode) {
        if (!ref.doc->empty()) {
          doc->CopySubtree(*ref.doc, ref.doc->root(), parent);
        }
        *last_was_atomic = false;
        continue;
      }
      if (ref.doc->kind(ref.node) == NodeKind::kAttribute) {
        doc->AppendAttribute(parent, ref.doc->name(ref.node),
                             ref.doc->value(ref.node));
      } else {
        doc->CopySubtree(*ref.doc, ref.node, parent);
      }
      *last_was_atomic = false;
    } else {
      std::string text = item.StringValue();
      if (*last_was_atomic && !literal_text) {
        // Adjacent atomics are joined with a single space (XQuery rule).
        text = " " + text;
      }
      doc->AppendText(parent, text);
      *last_was_atomic = true;
    }
  }
  return Status::Ok();
}

Result<Sequence> Evaluator::EvalElementCtor(const ElementCtor& ctor) {
  auto doc = std::make_shared<Document>(pool_, "(constructed)");
  NodeId root = doc->CreateRoot(ctor.name);
  for (const auto& [name, value] : ctor.attributes) {
    doc->AppendAttribute(root, name, value);
  }
  bool last_was_atomic = false;
  for (size_t i = 0; i < ctor.content.size(); ++i) {
    bool literal = ctor.content_is_literal_text[i];
    PARTIX_ASSIGN_OR_RETURN(Sequence value, EvalExpr(*ctor.content[i]));
    PARTIX_RETURN_IF_ERROR(
        BuildContent(value, literal, doc.get(), root, &last_was_atomic));
    if (literal) last_was_atomic = false;
  }
  ++stats_.elements_constructed;
  // Seal before freezing: constructed content can itself be stepped over
  // by enclosing path expressions.
  doc->SealLabels();
  DocumentPtr frozen = doc;
  return Sequence{Item(NodeRef{frozen, root})};
}

Result<Sequence> Evaluator::EvalFunction(const FunctionCall& call) {
  auto eval_args = [&](std::vector<Sequence>* out) -> Status {
    for (const ExprPtr& arg : call.args) {
      PARTIX_ASSIGN_OR_RETURN(Sequence v, EvalExpr(*arg));
      out->push_back(std::move(v));
    }
    return Status::Ok();
  };

  const std::string& fn = call.name;

  if (fn == "empty-sequence") return Sequence{};

  if (fn == "position" || fn == "last") {
    if (!call.args.empty()) {
      return Status::InvalidArgument(fn + "() takes no arguments");
    }
    if (position_stack_.empty()) {
      return Status::InvalidArgument(fn +
                                     "() outside a predicate context");
    }
    return Sequence{Item(static_cast<double>(
        fn == "position" ? position_stack_.back().first
                         : position_stack_.back().second))};
  }

  if (fn == "collection" || fn == "doc") {
    if (resolver_ == nullptr) {
      return Status::FailedPrecondition("no collection resolver bound");
    }
    std::vector<Sequence> args;
    PARTIX_RETURN_IF_ERROR(eval_args(&args));
    if (args.size() != 1 || args[0].size() != 1) {
      return Status::InvalidArgument(fn + "() takes one string argument");
    }
    std::string name = args[0][0].StringValue();
    ++stats_.collections_resolved;
    PARTIX_ASSIGN_OR_RETURN(std::vector<DocumentPtr> docs,
                            resolver_->Resolve(name));
    if (fn == "doc" && docs.size() != 1) {
      return Status::InvalidArgument("doc('" + name + "') matched " +
                                     std::to_string(docs.size()) +
                                     " documents");
    }
    Sequence out;
    out.reserve(docs.size());
    for (DocumentPtr& d : docs) {
      out.push_back(Item(NodeRef{std::move(d), xml::kDocumentNode}));
    }
    return out;
  }

  std::vector<Sequence> args;
  PARTIX_RETURN_IF_ERROR(eval_args(&args));

  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(fn + "() expects " + std::to_string(n) +
                                     " argument(s), got " +
                                     std::to_string(args.size()));
    }
    return Status::Ok();
  };

  if (fn == "count") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(static_cast<double>(args[0].size()))};
  }
  if (fn == "empty" || fn == "exists") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    bool empty = args[0].empty();
    return Sequence{Item(fn == "empty" ? empty : !empty)};
  }
  if (fn == "not" || fn == "boolean") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    PARTIX_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(args[0]));
    return Sequence{Item(fn == "not" ? !b : b)};
  }
  if (fn == "sum" || fn == "avg" || fn == "min" || fn == "max") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) {
      if (fn == "sum") return Sequence{Item(0.0)};
      return Sequence{};
    }
    double acc = fn == "min" ? 1e308 : (fn == "max" ? -1e308 : 0.0);
    for (const Item& item : args[0]) {
      double v = 0.0;
      if (!item.TryNumber(&v)) {
        return Status::InvalidArgument(fn + "() over a non-numeric item");
      }
      if (fn == "min") {
        acc = std::min(acc, v);
      } else if (fn == "max") {
        acc = std::max(acc, v);
      } else {
        acc += v;
      }
    }
    if (fn == "avg") acc /= static_cast<double>(args[0].size());
    return Sequence{Item(acc)};
  }
  if (fn == "contains" || fn == "starts-with") {
    PARTIX_RETURN_IF_ERROR(require_args(2));
    // Empty first argument: no value to search in.
    if (args[0].empty()) return Sequence{Item(false)};
    std::string needle =
        args[1].empty() ? std::string() : args[1][0].StringValue();
    // Existential over the first sequence, mirroring how eXist applies
    // text predicates to node sets.
    bool found = false;
    for (const Item& item : args[0]) {
      std::string hay = item.StringValue();
      if (fn == "contains" ? Contains(hay, needle)
                           : StartsWith(hay, needle)) {
        found = true;
        break;
      }
    }
    return Sequence{Item(found)};
  }
  if (fn == "string-length") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{Item(0.0)};
    return Sequence{
        Item(static_cast<double>(args[0][0].StringValue().size()))};
  }
  if (fn == "concat") {
    std::string out;
    for (const Sequence& arg : args) {
      for (const Item& item : arg) out += item.StringValue();
    }
    return Sequence{Item(std::move(out))};
  }
  if (fn == "string") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{Item(std::string())};
    return Sequence{Item(args[0][0].StringValue())};
  }
  if (fn == "number") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    double v = 0.0;
    if (args[0].empty() || !args[0][0].TryNumber(&v)) {
      return Sequence{Item(std::nan(""))};
    }
    return Sequence{Item(v)};
  }
  if (fn == "name") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty() || !args[0][0].IsNode()) {
      return Sequence{Item(std::string())};
    }
    const NodeRef& ref = args[0][0].AsNode();
    if (ref.doc->kind(ref.node) == NodeKind::kText) {
      return Sequence{Item(std::string())};
    }
    return Sequence{Item(std::string(ref.doc->name(ref.node)))};
  }
  if (fn == "substring") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::InvalidArgument("substring() takes 2 or 3 arguments");
    }
    std::string s =
        args[0].empty() ? std::string() : args[0][0].StringValue();
    double start = 0.0;
    if (args[1].empty() || !args[1][0].TryNumber(&start)) {
      return Status::InvalidArgument("substring(): bad start");
    }
    // XPath substring is 1-based.
    int64_t begin = static_cast<int64_t>(start) - 1;
    int64_t length = static_cast<int64_t>(s.size());
    if (args.size() == 3) {
      double len = 0.0;
      if (args[2].empty() || !args[2][0].TryNumber(&len)) {
        return Status::InvalidArgument("substring(): bad length");
      }
      length = static_cast<int64_t>(len);
    }
    if (begin < 0) {
      length += begin;
      begin = 0;
    }
    if (begin >= static_cast<int64_t>(s.size()) || length <= 0) {
      return Sequence{Item(std::string())};
    }
    return Sequence{Item(s.substr(static_cast<size_t>(begin),
                                  static_cast<size_t>(length)))};
  }
  if (fn == "string-join") {
    PARTIX_RETURN_IF_ERROR(require_args(2));
    std::string sep =
        args[1].empty() ? std::string() : args[1][0].StringValue();
    std::string out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (i > 0) out += sep;
      out += args[0][i].StringValue();
    }
    return Sequence{Item(std::move(out))};
  }
  if (fn == "normalize-space") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    std::string s =
        args[0].empty() ? std::string() : args[0][0].StringValue();
    std::string out;
    bool in_space = true;  // also strips leading whitespace
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) out.push_back(' ');
        in_space = true;
      } else {
        out.push_back(c);
        in_space = false;
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return Sequence{Item(std::move(out))};
  }
  if (fn == "upper-case" || fn == "lower-case") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    std::string s =
        args[0].empty() ? std::string() : args[0][0].StringValue();
    for (char& c : s) {
      c = fn == "upper-case"
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
              : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return Sequence{Item(std::move(s))};
  }
  if (fn == "distinct-values") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    Sequence out;
    std::unordered_set<std::string> seen;
    for (const Item& item : args[0]) {
      std::string v = item.StringValue();
      if (seen.insert(v).second) out.push_back(Item(std::move(v)));
    }
    return out;
  }
  return Status::Unimplemented("unknown function " + fn + "()");
}

Result<Sequence> EvalQuery(const std::string& query,
                           CollectionResolver* resolver,
                           std::shared_ptr<xml::NamePool> pool) {
  PARTIX_ASSIGN_OR_RETURN(ExprPtr ast, ParseQuery(query));
  Evaluator ev(resolver, std::move(pool));
  return ev.Eval(*ast);
}

}  // namespace partix::xquery
