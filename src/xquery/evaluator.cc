#include "xquery/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "xpath/eval.h"
#include "xquery/parser.h"

namespace partix::xquery {

namespace {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

/// Key for order-preserving dedup of node sequences.
struct NodeKey {
  const Document* doc;
  NodeId node;
  bool operator==(const NodeKey& other) const {
    return doc == other.doc && node == other.node;
  }
};
struct NodeKeyHash {
  size_t operator()(const NodeKey& k) const {
    return std::hash<const void*>()(k.doc) * 31 + k.node;
  }
};

bool StepMatches(const Document& doc, NodeId n, const xpath::Step& step) {
  if (step.is_attribute) {
    if (doc.kind(n) != NodeKind::kAttribute) return false;
  } else {
    if (doc.kind(n) != NodeKind::kElement) return false;
  }
  return step.wildcard || doc.name(n) == step.name;
}

/// Splits [0, n) into `chunks` contiguous ranges whose sizes differ by at
/// most one. Pre: 1 <= chunks <= n.
std::vector<std::pair<size_t, size_t>> PartitionRanges(size_t n,
                                                       size_t chunks) {
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(chunks);
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < rem ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

/// True when the context items are nodes rooting pairwise-disjoint
/// subtrees in document order: whole documents (each appearing once), or
/// sealed elements whose [pre, sub_max] label ranges do not overlap. Under
/// that condition the remaining steps of a path can be evaluated
/// chunk-by-chunk with byte-identical results — every axis this evaluator
/// supports (child/descendant/attribute) stays inside the context node's
/// subtree, so the per-step dedup set never sees a cross-chunk duplicate
/// and chunk-order concatenation equals the sequential append order.
bool DisjointSubtrees(const Sequence& context) {
  // Per document: sub_max of the last accepted subtree (disjoint +
  // ordered iff each next pre is greater).
  std::unordered_map<const Document*, uint32_t> last_sub_max;
  std::unordered_set<const Document*> whole_doc;
  for (const Item& item : context) {
    if (!item.IsNode()) return false;
    const NodeRef& ref = item.AsNode();
    const Document* d = ref.doc.get();
    if (ref.node == xml::kDocumentNode) {
      // A whole document: disjoint from everything except itself.
      if (whole_doc.count(d) != 0 || last_sub_max.count(d) != 0) return false;
      whole_doc.insert(d);
      continue;
    }
    if (whole_doc.count(d) != 0) return false;
    if (ref.doc->kind(ref.node) != NodeKind::kElement) return false;
    if (!ref.doc->has_labels()) return false;
    const xml::NodeLabel& label = ref.doc->label(ref.node);
    auto it = last_sub_max.find(d);
    if (it != last_sub_max.end() && label.pre <= it->second) return false;
    last_sub_max[d] = label.sub_max;
  }
  return true;
}

/// Seeds a morsel worker's context from the coordinator's at the fork
/// point: same dynamic environment, forks disabled below.
EvalContext ForkContext(const EvalContext& ctx) {
  EvalContext out;
  out.variables = ctx.variables;
  out.context_stack = ctx.context_stack;
  out.position_stack = ctx.position_stack;
  out.in_morsel = true;
  return out;
}

}  // namespace

Evaluator::Evaluator(CollectionResolver* resolver,
                     std::shared_ptr<xml::NamePool> pool)
    : resolver_(resolver), pool_(std::move(pool)) {
  // Silent fallback (documented in the header): callers whose results
  // leave the evaluator must pass a shared pool instead.
  if (pool_ == nullptr) pool_ = std::make_shared<xml::NamePool>();
}

void Evaluator::BindVariable(const std::string& name, Sequence value) {
  variables_[name] = std::move(value);
}

void Evaluator::SetContextItem(Item item) {
  context_stack_.clear();
  context_stack_.push_back(std::move(item));
}

Result<Sequence> Evaluator::Eval(const Expr& query) {
  EvalContext ctx;
  ctx.variables = variables_;
  ctx.context_stack = context_stack_;
  Result<Sequence> out = EvalExpr(ctx, query);
  stats_ = ctx.stats;
  return out;
}

Result<EvalStreamPtr> Evaluator::OpenStream(const Expr& query) const {
  auto stream = EvalStreamPtr(new EvalStream(this, &query));
  stream->ctx_.variables = variables_;
  stream->ctx_.context_stack = context_stack_;
  // Lazy only for the relative-path shape: the source (typically
  // collection("...")) is evaluated up front; the steps run per slice.
  // DisjointSubtrees is the same precondition the morsel fork uses, and
  // for the same reason: per-step dedup never crosses disjoint subtrees,
  // so slice-order evaluation of the remaining steps concatenates to the
  // sequential result byte-for-byte.
  if (query.Is<PathExpr>() && query.As<PathExpr>().source != nullptr) {
    const PathExpr& path = query.As<PathExpr>();
    PARTIX_ASSIGN_OR_RETURN(stream->context_,
                            EvalExpr(stream->ctx_, *path.source));
    if (DisjointSubtrees(stream->context_)) {
      stream->lazy_ = true;
      stream->steps_ = &path.steps;
      // One slice still fans out across the morsel workers when enabled.
      stream->slice_ = std::max<size_t>(morsels_, 1);
      return stream;
    }
    // Non-disjoint source: fall through to materialized batches, reusing
    // the already-evaluated source.
    Result<Sequence> all = EvalSteps(stream->ctx_, std::move(stream->context_),
                                     path.steps, 0);
    stream->context_.clear();
    PARTIX_RETURN_IF_ERROR(all.status());
    stream->context_ = std::move(*all);
    stream->lazy_ = true;  // drain context_ as one batch
    stream->steps_ = nullptr;
    stream->slice_ = 0;
    return stream;
  }
  return stream;
}

Result<bool> EvalStream::Next(Sequence* out) {
  out->clear();
  if (done_) return false;
  if (!lazy_) {
    // Whole-expression fallback: one materialized batch.
    done_ = true;
    Result<Sequence> all = eval_->EvalExpr(ctx_, *query_);
    PARTIX_RETURN_IF_ERROR(all.status());
    *out = std::move(*all);
    return !out->empty();
  }
  if (steps_ == nullptr) {
    // Pre-materialized result parked in context_ (non-disjoint source).
    done_ = true;
    *out = std::move(context_);
    context_.clear();
    return !out->empty();
  }
  while (pos_ < context_.size()) {
    const size_t take = std::min(slice_, context_.size() - pos_);
    Sequence slice(context_.begin() + static_cast<ptrdiff_t>(pos_),
                   context_.begin() + static_cast<ptrdiff_t>(pos_ + take));
    pos_ += take;
    Result<Sequence> batch =
        eval_->EvalSteps(ctx_, std::move(slice), *steps_, 0);
    if (!batch.ok()) {
      done_ = true;
      return batch.status();
    }
    if (!batch->empty()) {
      *out = std::move(*batch);
      return true;
    }
  }
  done_ = true;
  return false;
}

void Evaluator::RunMorsels(size_t chunks,
                           std::function<void(size_t)> run) const {
  // Shared by the coordinator and the helper tasks; shared_ptr-owned so a
  // helper that wakes up after the coordinator has already moved on (all
  // chunks claimed) still touches live memory.
  struct Shared {
    Shared(size_t n, std::function<void(size_t)> r)
        : chunks(n), run(std::move(r)), done(n) {}
    std::atomic<size_t> next{0};
    size_t chunks;
    std::function<void(size_t)> run;
    Latch done;
  };
  auto st = std::make_shared<Shared>(chunks, std::move(run));
  auto drain = [st] {
    for (size_t c = st->next.fetch_add(1); c < st->chunks;
         c = st->next.fetch_add(1)) {
      st->run(c);
      st->done.CountDown();
    }
  };
  // Help-while-waiting: the coordinator claims chunks alongside the pool
  // workers, so even a saturated (or shut-down) pool cannot deadlock the
  // fork — worst case the coordinator drains every chunk itself.
  for (size_t i = 1; i < chunks; ++i) morsel_pool_->Submit(drain);
  drain();
  st->done.Wait();
}

Result<Sequence> Evaluator::EvalExpr(EvalContext& ctx, const Expr& e) const {
  if (e.Is<StringLit>()) return Sequence{Item(e.As<StringLit>().value)};
  if (e.Is<NumberLit>()) return Sequence{Item(e.As<NumberLit>().value)};
  if (e.Is<VarRef>()) {
    auto it = ctx.variables.find(e.As<VarRef>().name);
    if (it == ctx.variables.end()) {
      return Status::InvalidArgument("unbound variable $" +
                                     e.As<VarRef>().name);
    }
    return it->second;
  }
  if (e.Is<ContextItem>()) {
    if (ctx.context_stack.empty()) {
      return Status::InvalidArgument("no context item for '.'");
    }
    return Sequence{ctx.context_stack.back()};
  }
  if (e.Is<BinaryOp>()) return EvalBinary(ctx, e.As<BinaryOp>());
  if (e.Is<UnaryMinus>()) {
    PARTIX_ASSIGN_OR_RETURN(Sequence v,
                            EvalExpr(ctx, *e.As<UnaryMinus>().operand));
    if (v.empty()) return Sequence{};
    double n = 0.0;
    if (v.size() != 1 || !v[0].TryNumber(&n)) {
      return Status::InvalidArgument("unary minus on a non-number");
    }
    return Sequence{Item(-n)};
  }
  if (e.Is<PathExpr>()) return EvalPath(ctx, e.As<PathExpr>());
  if (e.Is<FunctionCall>()) return EvalFunction(ctx, e.As<FunctionCall>());
  if (e.Is<FlworExpr>()) return EvalFlwor(ctx, e.As<FlworExpr>());
  if (e.Is<ElementCtor>()) return EvalElementCtor(ctx, e.As<ElementCtor>());
  if (e.Is<IfExpr>()) {
    const auto& ie = e.As<IfExpr>();
    PARTIX_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(ctx, *ie.cond));
    PARTIX_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
    return EvalExpr(ctx, b ? *ie.then_branch : *ie.else_branch);
  }
  if (e.Is<QuantifiedExpr>()) {
    PARTIX_ASSIGN_OR_RETURN(bool b,
                            EvalQuantified(ctx, e.As<QuantifiedExpr>(), 0));
    return Sequence{Item(b)};
  }
  return Status::Internal("unhandled expression kind");
}

Result<Sequence> Evaluator::EvalBinary(EvalContext& ctx,
                                       const BinaryOp& op) const {
  using Op = BinaryOp::Op;
  switch (op.op) {
    case Op::kComma: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(ctx, *op.lhs));
      PARTIX_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(ctx, *op.rhs));
      for (Item& item : rhs) lhs.push_back(std::move(item));
      return lhs;
    }
    case Op::kOr:
    case Op::kAnd: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lseq, EvalExpr(ctx, *op.lhs));
      PARTIX_ASSIGN_OR_RETURN(bool l, EffectiveBooleanValue(lseq));
      if (op.op == Op::kOr && l) return Sequence{Item(true)};
      if (op.op == Op::kAnd && !l) return Sequence{Item(false)};
      PARTIX_ASSIGN_OR_RETURN(Sequence rseq, EvalExpr(ctx, *op.rhs));
      PARTIX_ASSIGN_OR_RETURN(bool r, EffectiveBooleanValue(rseq));
      return Sequence{Item(r)};
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(ctx, *op.lhs));
      PARTIX_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(ctx, *op.rhs));
      PARTIX_ASSIGN_OR_RETURN(bool b, GeneralCompare(op.op, lhs, rhs));
      return Sequence{Item(b)};
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod: {
      PARTIX_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(ctx, *op.lhs));
      PARTIX_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(ctx, *op.rhs));
      if (lhs.empty() || rhs.empty()) return Sequence{};
      double a = 0.0;
      double b = 0.0;
      if (lhs.size() != 1 || rhs.size() != 1 || !lhs[0].TryNumber(&a) ||
          !rhs[0].TryNumber(&b)) {
        return Status::InvalidArgument("arithmetic on non-numeric operands");
      }
      double result = 0.0;
      switch (op.op) {
        case Op::kAdd:
          result = a + b;
          break;
        case Op::kSub:
          result = a - b;
          break;
        case Op::kMul:
          result = a * b;
          break;
        case Op::kDiv:
          result = a / b;
          break;
        case Op::kMod:
          result = std::fmod(a, b);
          break;
        default:
          break;
      }
      return Sequence{Item(result)};
    }
  }
  return Status::Internal("unhandled binary operator");
}

Result<bool> Evaluator::GeneralCompare(BinaryOp::Op op, const Sequence& lhs,
                                       const Sequence& rhs) const {
  // XPath general comparison: existential over all atomized pairs.
  for (const Item& l : lhs) {
    for (const Item& r : rhs) {
      double a = 0.0;
      double b = 0.0;
      int cmp;
      bool numeric = (l.IsNumber() || r.IsNumber())
                         ? (l.TryNumber(&a) && r.TryNumber(&b))
                         : (l.TryNumber(&a) && r.TryNumber(&b));
      if (numeric) {
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        std::string ls = l.StringValue();
        std::string rs = r.StringValue();
        cmp = ls.compare(rs);
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      }
      bool match = false;
      switch (op) {
        case BinaryOp::Op::kEq:
          match = cmp == 0;
          break;
        case BinaryOp::Op::kNe:
          match = cmp != 0;
          break;
        case BinaryOp::Op::kLt:
          match = cmp < 0;
          break;
        case BinaryOp::Op::kLe:
          match = cmp <= 0;
          break;
        case BinaryOp::Op::kGt:
          match = cmp > 0;
          break;
        case BinaryOp::Op::kGe:
          match = cmp >= 0;
          break;
        default:
          return Status::Internal("non-comparison op in GeneralCompare");
      }
      if (match) return true;
    }
  }
  return false;
}

bool Evaluator::MatchStepByLabels(EvalContext& ctx, const DocumentPtr& docp,
                                  NodeId ctx_node, const xpath::Step& step,
                                  Sequence* out) const {
  const Document& doc = *docp;
  if (!use_structural_index_ || !doc.has_labels()) return false;
  uint32_t lo_pre = 0;
  uint32_t hi_pre = 0;
  uint32_t child_level = 0;  // 0 = no level filter (descendant axis)
  if (ctx_node == xml::kDocumentNode) {
    // Whole-document scan, root included. Only the descendant axis goes
    // through here; the document node's single child is matched directly.
    if (step.axis != xpath::Axis::kDescendant ||
        xpath::StaticStepStrategy(step) != xpath::StepStrategy::kLabelRange) {
      return false;
    }
    lo_pre = 0;
    hi_pre = static_cast<uint32_t>(doc.node_count());
  } else {
    if (xpath::ChooseStepStrategy(doc, ctx_node, step) !=
        xpath::StepStrategy::kLabelRange) {
      return false;
    }
    const xml::NodeLabel& c = doc.label(ctx_node);
    lo_pre = c.pre + 1;
    hi_pre = c.sub_max + 1;
    if (step.axis == xpath::Axis::kChild) child_level = c.level + 1;
  }
  ++ctx.stats.index_range_scans;
  const std::optional<xml::NameId> name_id = doc.pool()->Find(step.name);
  if (!name_id) return true;  // name interned nowhere: empty result
  const std::vector<uint32_t>* occ = doc.NameOccurrences(*name_id);
  if (occ == nullptr) return true;
  auto lo = std::lower_bound(occ->begin(), occ->end(), lo_pre);
  auto hi = std::lower_bound(lo, occ->end(), hi_pre);
  const NodeKind want =
      step.is_attribute ? NodeKind::kAttribute : NodeKind::kElement;
  for (auto it = lo; it != hi; ++it) {
    ++ctx.stats.nodes_visited;
    NodeId n = doc.NodeAtPre(*it);
    if (doc.kind(n) != want) continue;
    if (child_level != 0 && doc.label(n).level != child_level) continue;
    out->push_back(Item(NodeRef{docp, n}));
    ++ctx.stats.index_range_hits;
  }
  return true;
}

Result<Sequence> Evaluator::EvalPath(EvalContext& ctx,
                                     const PathExpr& path) const {
  Sequence context;
  if (path.source != nullptr) {
    PARTIX_ASSIGN_OR_RETURN(context, EvalExpr(ctx, *path.source));
  } else {
    // Absolute path: root of the context item's document.
    if (ctx.context_stack.empty() || !ctx.context_stack.back().IsNode()) {
      return Status::InvalidArgument(
          "absolute path with no context document");
    }
    const NodeRef& root_ctx = ctx.context_stack.back().AsNode();
    context.push_back(Item(NodeRef{root_ctx.doc, root_ctx.doc->root()}));
    // The first step of an absolute path matches the root element itself
    // (child axis from the virtual document node) or any element
    // (descendant axis); reuse step evaluation by treating the root as
    // context and matching step 0 specially.
    if (path.steps.empty()) return context;
    const AxisStep& first = path.steps[0];
    Sequence initial;
    const Document& doc = *root_ctx.doc;
    if (first.step.axis == xpath::Axis::kChild) {
      if (StepMatches(doc, doc.root(), first.step)) {
        initial.push_back(Item(NodeRef{root_ctx.doc, doc.root()}));
      }
    } else if (!MatchStepByLabels(ctx, root_ctx.doc, xml::kDocumentNode,
                                  first.step, &initial)) {
      doc.VisitSubtree(doc.root(), [&](NodeId n) {
        ++ctx.stats.nodes_visited;
        if (StepMatches(doc, n, first.step)) {
          initial.push_back(Item(NodeRef{root_ctx.doc, n}));
        }
      });
    }
    for (const ExprPtr& pred : first.predicates) {
      PARTIX_ASSIGN_OR_RETURN(
          initial, ApplyPredicate(ctx, *pred, std::move(initial)));
    }
    return EvalSteps(ctx, std::move(initial), path.steps, 1);
  }
  return EvalSteps(ctx, std::move(context), path.steps, 0);
}

Result<Sequence> Evaluator::EvalSteps(EvalContext& ctx, Sequence context,
                                      const std::vector<AxisStep>& steps,
                                      size_t first) const {
  Sequence current = std::move(context);
  for (size_t si = first; si < steps.size(); ++si) {
    // Morsel fork: when the context fans out over disjoint subtrees
    // (resolved collection documents, or top-level subtree ranges of one
    // large document via the structural labels), evaluate the remaining
    // steps chunk-by-chunk on the shared pool. Chunk-order stitching
    // preserves document order; see DisjointSubtrees for why results are
    // byte-identical to the sequential run.
    if (MorselsEligible(ctx, current.size()) && DisjointSubtrees(current)) {
      const size_t chunks = std::min(morsels_, current.size());
      const auto ranges = PartitionRanges(current.size(), chunks);
      std::vector<EvalContext> worker_ctx;
      worker_ctx.reserve(chunks);
      for (size_t c = 0; c < chunks; ++c) {
        worker_ctx.push_back(ForkContext(ctx));
      }
      std::vector<Result<Sequence>> results(chunks, Sequence{});
      RunMorsels(chunks, [&](size_t c) {
        Sequence chunk(current.begin() + ranges[c].first,
                       current.begin() + ranges[c].second);
        results[c] =
            EvalSteps(worker_ctx[c], std::move(chunk), steps, si);
      });
      Sequence stitched;
      Status status = Status::Ok();
      for (size_t c = 0; c < chunks; ++c) {
        ctx.stats.Merge(worker_ctx[c].stats);
        if (!status.ok()) continue;
        if (!results[c].ok()) {
          status = results[c].status();
          continue;
        }
        for (Item& item : *results[c]) stitched.push_back(std::move(item));
      }
      PARTIX_RETURN_IF_ERROR(status);
      return stitched;
    }
    const AxisStep& axis_step = steps[si];
    Sequence next;
    std::unordered_set<NodeKey, NodeKeyHash> seen;
    for (const Item& item : current) {
      if (!item.IsNode()) {
        return Status::InvalidArgument(
            "path step applied to an atomic value");
      }
      const NodeRef& ref = item.AsNode();
      const Document& doc = *ref.doc;
      // Collect matches for this context node.
      Sequence matches;
      if (ref.node == xml::kDocumentNode) {
        // The virtual document node: its only child is the root element.
        if (!doc.empty()) {
          if (axis_step.step.axis == xpath::Axis::kChild) {
            ++ctx.stats.nodes_visited;
            if (StepMatches(doc, doc.root(), axis_step.step)) {
              matches.push_back(Item(NodeRef{ref.doc, doc.root()}));
            }
          } else if (!MatchStepByLabels(ctx, ref.doc, xml::kDocumentNode,
                                        axis_step.step, &matches)) {
            doc.VisitSubtree(doc.root(), [&](NodeId n) {
              ++ctx.stats.nodes_visited;
              if (StepMatches(doc, n, axis_step.step)) {
                matches.push_back(Item(NodeRef{ref.doc, n}));
              }
            });
          }
        }
      } else if (MatchStepByLabels(ctx, ref.doc, ref.node, axis_step.step,
                                   &matches)) {
        // Step answered by a label-range scan; matches already appended
        // in document order.
      } else if (axis_step.step.axis == xpath::Axis::kChild) {
        for (NodeId c = doc.first_child(ref.node); c != kNullNode;
             c = doc.next_sibling(c)) {
          ++ctx.stats.nodes_visited;
          if (StepMatches(doc, c, axis_step.step)) {
            matches.push_back(Item(NodeRef{ref.doc, c}));
          }
        }
      } else {
        doc.VisitSubtree(ref.node, [&](NodeId n) {
          ++ctx.stats.nodes_visited;
          if (n != ref.node && StepMatches(doc, n, axis_step.step)) {
            matches.push_back(Item(NodeRef{ref.doc, n}));
          }
        });
      }
      // Apply predicates per context node (XPath positional semantics).
      for (const ExprPtr& pred : axis_step.predicates) {
        PARTIX_ASSIGN_OR_RETURN(
            matches, ApplyPredicate(ctx, *pred, std::move(matches)));
        if (matches.empty()) break;
      }
      for (Item& m : matches) {
        NodeKey key{m.AsNode().doc.get(), m.AsNode().node};
        if (seen.insert(key).second) next.push_back(std::move(m));
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

Result<Sequence> Evaluator::ApplyPredicate(EvalContext& ctx,
                                           const Expr& pred,
                                           Sequence matches) const {
  // Fast path: a literal number is a positional filter.
  if (pred.Is<NumberLit>()) {
    double want = pred.As<NumberLit>().value;
    size_t idx = static_cast<size_t>(want);
    Sequence out;
    if (want >= 1 && static_cast<double>(idx) == want &&
        idx <= matches.size()) {
      out.push_back(matches[idx - 1]);
    }
    return out;
  }
  Sequence out;
  for (size_t i = 0; i < matches.size(); ++i) {
    ctx.context_stack.push_back(matches[i]);
    ctx.position_stack.emplace_back(i + 1, matches.size());
    Result<Sequence> value = EvalExpr(ctx, pred);
    ctx.position_stack.pop_back();
    ctx.context_stack.pop_back();
    if (!value.ok()) return value.status();
    const Sequence& v = *value;
    // A numeric result selects by position.
    if (v.size() == 1 && v[0].IsNumber()) {
      if (static_cast<size_t>(v[0].AsNumber()) == i + 1) {
        out.push_back(matches[i]);
      }
      continue;
    }
    PARTIX_ASSIGN_OR_RETURN(bool keep, EffectiveBooleanValue(v));
    if (keep) out.push_back(matches[i]);
  }
  return out;
}

namespace {

/// Orders FLWOR sort keys: numbers numerically when both sides are
/// numeric, strings otherwise; empty keys sort first.
bool KeyLess(const Item& a, const Item& b) {
  double na = 0.0;
  double nb = 0.0;
  if (a.TryNumber(&na) && b.TryNumber(&nb)) return na < nb;
  return a.StringValue() < b.StringValue();
}

}  // namespace

Result<Sequence> Evaluator::EvalFlwor(EvalContext& ctx,
                                      const FlworExpr& flwor) const {
  Sequence out;
  if (flwor.order_by == nullptr) {
    PARTIX_RETURN_IF_ERROR(
        EvalFlworClauses(ctx, flwor, 0, &out, nullptr).status());
    return out;
  }
  std::vector<std::pair<Item, Sequence>> keyed;
  PARTIX_RETURN_IF_ERROR(
      EvalFlworClauses(ctx, flwor, 0, nullptr, &keyed).status());
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const auto& a, const auto& b) {
                     return flwor.order_descending
                                ? KeyLess(b.first, a.first)
                                : KeyLess(a.first, b.first);
                   });
  for (auto& [key, chunk] : keyed) {
    for (Item& item : chunk) out.push_back(std::move(item));
  }
  return out;
}

Result<Sequence> Evaluator::EvalFlworClauses(
    EvalContext& ctx, const FlworExpr& flwor, size_t clause_idx,
    Sequence* out, std::vector<std::pair<Item, Sequence>>* keyed) const {
  if (clause_idx == flwor.clauses.size()) {
    if (flwor.where != nullptr) {
      PARTIX_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(ctx, *flwor.where));
      PARTIX_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      if (!b) return Sequence{};
    }
    if (keyed != nullptr) {
      PARTIX_ASSIGN_OR_RETURN(Sequence key_seq,
                              EvalExpr(ctx, *flwor.order_by));
      Item key = key_seq.empty() ? Item(std::string()) : key_seq[0];
      PARTIX_ASSIGN_OR_RETURN(Sequence items, EvalExpr(ctx, *flwor.ret));
      keyed->emplace_back(std::move(key), std::move(items));
      return Sequence{};
    }
    PARTIX_ASSIGN_OR_RETURN(Sequence items, EvalExpr(ctx, *flwor.ret));
    for (Item& item : items) out->push_back(std::move(item));
    return Sequence{};
  }
  const ForLetClause& clause = flwor.clauses[clause_idx];
  PARTIX_ASSIGN_OR_RETURN(Sequence binding, EvalExpr(ctx, *clause.expr));

  // Morsel fork: a for-clause binds each item independently, so the
  // binding sequence is partitioned into contiguous chunks whose
  // tuple expansions run on the shared pool. Chunk-order stitching of the
  // per-chunk outputs (or order-by buffers) reproduces the sequential
  // tuple order exactly; per-chunk stats merge in chunk order.
  if (!clause.is_let && MorselsEligible(ctx, binding.size())) {
    const size_t chunks = std::min(morsels_, binding.size());
    const auto ranges = PartitionRanges(binding.size(), chunks);
    std::vector<EvalContext> worker_ctx;
    worker_ctx.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      worker_ctx.push_back(ForkContext(ctx));
    }
    std::vector<Status> worker_status(chunks, Status::Ok());
    std::vector<Sequence> worker_out(chunks);
    std::vector<std::vector<std::pair<Item, Sequence>>> worker_keyed(chunks);
    RunMorsels(chunks, [&](size_t c) {
      EvalContext& mc = worker_ctx[c];
      for (size_t i = ranges[c].first; i < ranges[c].second; ++i) {
        mc.variables[clause.var] = Sequence{binding[i]};
        Result<Sequence> r = EvalFlworClauses(
            mc, flwor, clause_idx + 1,
            keyed == nullptr ? &worker_out[c] : nullptr,
            keyed == nullptr ? nullptr : &worker_keyed[c]);
        if (!r.ok()) {
          worker_status[c] = r.status();
          break;
        }
      }
    });
    Status status = Status::Ok();
    for (size_t c = 0; c < chunks; ++c) {
      ctx.stats.Merge(worker_ctx[c].stats);
      if (!status.ok()) continue;
      if (!worker_status[c].ok()) {
        // Chunks cover ascending binding indexes, so the first failing
        // chunk holds the same error the sequential run would hit first.
        status = worker_status[c];
        continue;
      }
      if (keyed == nullptr) {
        for (Item& item : worker_out[c]) out->push_back(std::move(item));
      } else {
        for (auto& kv : worker_keyed[c]) keyed->push_back(std::move(kv));
      }
    }
    PARTIX_RETURN_IF_ERROR(status);
    return Sequence{};
  }

  // Save and restore any shadowed variable.
  auto saved = ctx.variables.find(clause.var);
  bool had_saved = saved != ctx.variables.end();
  Sequence saved_value;
  if (had_saved) saved_value = saved->second;

  Status status = Status::Ok();
  if (clause.is_let) {
    ctx.variables[clause.var] = std::move(binding);
    Result<Sequence> r =
        EvalFlworClauses(ctx, flwor, clause_idx + 1, out, keyed);
    if (!r.ok()) status = r.status();
  } else {
    for (Item& item : binding) {
      ctx.variables[clause.var] = Sequence{item};
      Result<Sequence> r =
          EvalFlworClauses(ctx, flwor, clause_idx + 1, out, keyed);
      if (!r.ok()) {
        status = r.status();
        break;
      }
    }
  }
  if (had_saved) {
    ctx.variables[clause.var] = std::move(saved_value);
  } else {
    ctx.variables.erase(clause.var);
  }
  PARTIX_RETURN_IF_ERROR(status);
  return Sequence{};
}

Result<bool> Evaluator::EvalQuantified(EvalContext& ctx,
                                       const QuantifiedExpr& quantified,
                                       size_t binding_idx) const {
  if (binding_idx == quantified.bindings.size()) {
    PARTIX_ASSIGN_OR_RETURN(Sequence value,
                            EvalExpr(ctx, *quantified.satisfies));
    return EffectiveBooleanValue(value);
  }
  const ForLetClause& clause = quantified.bindings[binding_idx];
  PARTIX_ASSIGN_OR_RETURN(Sequence binding, EvalExpr(ctx, *clause.expr));
  auto saved = ctx.variables.find(clause.var);
  bool had_saved = saved != ctx.variables.end();
  Sequence saved_value;
  if (had_saved) saved_value = saved->second;

  // some: true if any tuple satisfies; every: false if any tuple fails.
  bool result = quantified.is_every;
  Status status = Status::Ok();
  for (Item& item : binding) {
    ctx.variables[clause.var] = Sequence{item};
    Result<bool> r = EvalQuantified(ctx, quantified, binding_idx + 1);
    if (!r.ok()) {
      status = r.status();
      break;
    }
    if (*r != quantified.is_every) {
      result = !quantified.is_every;
      break;
    }
  }
  if (had_saved) {
    ctx.variables[clause.var] = std::move(saved_value);
  } else {
    ctx.variables.erase(clause.var);
  }
  PARTIX_RETURN_IF_ERROR(status);
  return result;
}

Status Evaluator::BuildContent(EvalContext& ctx, const Sequence& content,
                               bool literal_text, xml::Document* doc,
                               xml::NodeId parent,
                               bool* last_was_atomic) const {
  (void)ctx;
  for (const Item& item : content) {
    if (item.IsNode()) {
      const NodeRef& ref = item.AsNode();
      if (ref.node == xml::kDocumentNode) {
        if (!ref.doc->empty()) {
          doc->CopySubtree(*ref.doc, ref.doc->root(), parent);
        }
        *last_was_atomic = false;
        continue;
      }
      if (ref.doc->kind(ref.node) == NodeKind::kAttribute) {
        doc->AppendAttribute(parent, ref.doc->name(ref.node),
                             ref.doc->value(ref.node));
      } else {
        doc->CopySubtree(*ref.doc, ref.node, parent);
      }
      *last_was_atomic = false;
    } else {
      std::string text = item.StringValue();
      if (*last_was_atomic && !literal_text) {
        // Adjacent atomics are joined with a single space (XQuery rule).
        text = " " + text;
      }
      doc->AppendText(parent, text);
      *last_was_atomic = true;
    }
  }
  return Status::Ok();
}

Result<Sequence> Evaluator::EvalElementCtor(EvalContext& ctx,
                                            const ElementCtor& ctor) const {
  // pool_ interning is thread-safe, so morsel workers may construct
  // elements against the shared pool concurrently.
  auto doc = std::make_shared<Document>(pool_, "(constructed)");
  NodeId root = doc->CreateRoot(ctor.name);
  for (const auto& [name, value] : ctor.attributes) {
    doc->AppendAttribute(root, name, value);
  }
  bool last_was_atomic = false;
  for (size_t i = 0; i < ctor.content.size(); ++i) {
    bool literal = ctor.content_is_literal_text[i];
    PARTIX_ASSIGN_OR_RETURN(Sequence value, EvalExpr(ctx, *ctor.content[i]));
    PARTIX_RETURN_IF_ERROR(BuildContent(ctx, value, literal, doc.get(), root,
                                        &last_was_atomic));
    if (literal) last_was_atomic = false;
  }
  ++ctx.stats.elements_constructed;
  // Seal before freezing: constructed content can itself be stepped over
  // by enclosing path expressions.
  doc->SealLabels();
  DocumentPtr frozen = doc;
  return Sequence{Item(NodeRef{frozen, root})};
}

Result<Sequence> Evaluator::EvalFunction(EvalContext& ctx,
                                         const FunctionCall& call) const {
  auto eval_args = [&](std::vector<Sequence>* out) -> Status {
    for (const ExprPtr& arg : call.args) {
      PARTIX_ASSIGN_OR_RETURN(Sequence v, EvalExpr(ctx, *arg));
      out->push_back(std::move(v));
    }
    return Status::Ok();
  };

  const std::string& fn = call.name;

  if (fn == "empty-sequence") return Sequence{};

  if (fn == "position" || fn == "last") {
    if (!call.args.empty()) {
      return Status::InvalidArgument(fn + "() takes no arguments");
    }
    if (ctx.position_stack.empty()) {
      return Status::InvalidArgument(fn +
                                     "() outside a predicate context");
    }
    return Sequence{Item(static_cast<double>(
        fn == "position" ? ctx.position_stack.back().first
                         : ctx.position_stack.back().second))};
  }

  if (fn == "collection" || fn == "doc") {
    if (resolver_ == nullptr) {
      return Status::FailedPrecondition("no collection resolver bound");
    }
    std::vector<Sequence> args;
    PARTIX_RETURN_IF_ERROR(eval_args(&args));
    if (args.size() != 1 || args[0].size() != 1) {
      return Status::InvalidArgument(fn + "() takes one string argument");
    }
    std::string name = args[0][0].StringValue();
    ++ctx.stats.collections_resolved;
    PARTIX_ASSIGN_OR_RETURN(std::vector<DocumentPtr> docs,
                            resolver_->Resolve(name));
    if (fn == "doc" && docs.size() != 1) {
      return Status::InvalidArgument("doc('" + name + "') matched " +
                                     std::to_string(docs.size()) +
                                     " documents");
    }
    Sequence out;
    out.reserve(docs.size());
    for (DocumentPtr& d : docs) {
      out.push_back(Item(NodeRef{std::move(d), xml::kDocumentNode}));
    }
    return out;
  }

  std::vector<Sequence> args;
  PARTIX_RETURN_IF_ERROR(eval_args(&args));

  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(fn + "() expects " + std::to_string(n) +
                                     " argument(s), got " +
                                     std::to_string(args.size()));
    }
    return Status::Ok();
  };

  if (fn == "count") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(static_cast<double>(args[0].size()))};
  }
  if (fn == "empty" || fn == "exists") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    bool empty = args[0].empty();
    return Sequence{Item(fn == "empty" ? empty : !empty)};
  }
  if (fn == "not" || fn == "boolean") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    PARTIX_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(args[0]));
    return Sequence{Item(fn == "not" ? !b : b)};
  }
  if (fn == "sum" || fn == "avg" || fn == "min" || fn == "max") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) {
      if (fn == "sum") return Sequence{Item(0.0)};
      return Sequence{};
    }
    double acc = fn == "min" ? 1e308 : (fn == "max" ? -1e308 : 0.0);
    for (const Item& item : args[0]) {
      double v = 0.0;
      if (!item.TryNumber(&v)) {
        return Status::InvalidArgument(fn + "() over a non-numeric item");
      }
      if (fn == "min") {
        acc = std::min(acc, v);
      } else if (fn == "max") {
        acc = std::max(acc, v);
      } else {
        acc += v;
      }
    }
    if (fn == "avg") acc /= static_cast<double>(args[0].size());
    return Sequence{Item(acc)};
  }
  if (fn == "contains" || fn == "starts-with") {
    PARTIX_RETURN_IF_ERROR(require_args(2));
    // Empty first argument: no value to search in.
    if (args[0].empty()) return Sequence{Item(false)};
    std::string needle =
        args[1].empty() ? std::string() : args[1][0].StringValue();
    // Existential over the first sequence, mirroring how eXist applies
    // text predicates to node sets.
    bool found = false;
    for (const Item& item : args[0]) {
      std::string hay = item.StringValue();
      if (fn == "contains" ? Contains(hay, needle)
                           : StartsWith(hay, needle)) {
        found = true;
        break;
      }
    }
    return Sequence{Item(found)};
  }
  if (fn == "string-length") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{Item(0.0)};
    return Sequence{
        Item(static_cast<double>(args[0][0].StringValue().size()))};
  }
  if (fn == "concat") {
    std::string out;
    for (const Sequence& arg : args) {
      for (const Item& item : arg) out += item.StringValue();
    }
    return Sequence{Item(std::move(out))};
  }
  if (fn == "string") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{Item(std::string())};
    return Sequence{Item(args[0][0].StringValue())};
  }
  if (fn == "number") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    double v = 0.0;
    if (args[0].empty() || !args[0][0].TryNumber(&v)) {
      return Sequence{Item(std::nan(""))};
    }
    return Sequence{Item(v)};
  }
  if (fn == "name") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty() || !args[0][0].IsNode()) {
      return Sequence{Item(std::string())};
    }
    const NodeRef& ref = args[0][0].AsNode();
    if (ref.doc->kind(ref.node) == NodeKind::kText) {
      return Sequence{Item(std::string())};
    }
    return Sequence{Item(std::string(ref.doc->name(ref.node)))};
  }
  if (fn == "substring") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::InvalidArgument("substring() takes 2 or 3 arguments");
    }
    std::string s =
        args[0].empty() ? std::string() : args[0][0].StringValue();
    double start = 0.0;
    if (args[1].empty() || !args[1][0].TryNumber(&start)) {
      return Status::InvalidArgument("substring(): bad start");
    }
    // XPath substring is 1-based.
    int64_t begin = static_cast<int64_t>(start) - 1;
    int64_t length = static_cast<int64_t>(s.size());
    if (args.size() == 3) {
      double len = 0.0;
      if (args[2].empty() || !args[2][0].TryNumber(&len)) {
        return Status::InvalidArgument("substring(): bad length");
      }
      length = static_cast<int64_t>(len);
    }
    if (begin < 0) {
      length += begin;
      begin = 0;
    }
    if (begin >= static_cast<int64_t>(s.size()) || length <= 0) {
      return Sequence{Item(std::string())};
    }
    return Sequence{Item(s.substr(static_cast<size_t>(begin),
                                  static_cast<size_t>(length)))};
  }
  if (fn == "string-join") {
    PARTIX_RETURN_IF_ERROR(require_args(2));
    std::string sep =
        args[1].empty() ? std::string() : args[1][0].StringValue();
    std::string out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (i > 0) out += sep;
      out += args[0][i].StringValue();
    }
    return Sequence{Item(std::move(out))};
  }
  if (fn == "normalize-space") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    std::string s =
        args[0].empty() ? std::string() : args[0][0].StringValue();
    std::string out;
    bool in_space = true;  // also strips leading whitespace
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) out.push_back(' ');
        in_space = true;
      } else {
        out.push_back(c);
        in_space = false;
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return Sequence{Item(std::move(out))};
  }
  if (fn == "upper-case" || fn == "lower-case") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    std::string s =
        args[0].empty() ? std::string() : args[0][0].StringValue();
    for (char& c : s) {
      c = fn == "upper-case"
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
              : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return Sequence{Item(std::move(s))};
  }
  if (fn == "distinct-values") {
    PARTIX_RETURN_IF_ERROR(require_args(1));
    Sequence out;
    std::unordered_set<std::string> seen;
    for (const Item& item : args[0]) {
      std::string v = item.StringValue();
      if (seen.insert(v).second) out.push_back(Item(std::move(v)));
    }
    return out;
  }
  return Status::Unimplemented("unknown function " + fn + "()");
}

Result<Sequence> EvalQuery(const std::string& query,
                           CollectionResolver* resolver,
                           std::shared_ptr<xml::NamePool> pool) {
  PARTIX_ASSIGN_OR_RETURN(ExprPtr ast, ParseQuery(query));
  Evaluator ev(resolver, std::move(pool));
  return ev.Eval(*ast);
}

}  // namespace partix::xquery
