#ifndef PARTIX_XQUERY_EVALUATOR_H_
#define PARTIX_XQUERY_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/document.h"
#include "xml/name_pool.h"
#include "xquery/ast.h"
#include "xquery/item.h"

namespace partix::xquery {

/// Supplies the documents behind collection("name") / doc("name"). The
/// database engine implements this; tests use an in-memory map.
class CollectionResolver {
 public:
  virtual ~CollectionResolver() = default;

  /// Returns the documents of the named collection.
  virtual Result<std::vector<xml::DocumentPtr>> Resolve(
      const std::string& name) = 0;
};

/// Execution counters exposed after evaluation.
struct EvalStats {
  uint64_t nodes_visited = 0;
  uint64_t collections_resolved = 0;
  uint64_t elements_constructed = 0;
  /// Axis steps answered by a structural label-range scan instead of tree
  /// navigation, and the matches those scans produced. The engine folds
  /// these into the partix_structural_index_{probes,hits}_total counters.
  uint64_t index_range_scans = 0;
  uint64_t index_range_hits = 0;
};

/// Evaluates a parsed XQuery expression against a CollectionResolver.
/// One evaluator instance runs one query (it accumulates stats and holds
/// the variable environment); construct a fresh one per query.
class Evaluator {
 public:
  /// `resolver` may be null for queries that never call collection()/doc().
  /// `pool` is used to intern names of constructed elements; if null a
  /// private pool is created.
  Evaluator(CollectionResolver* resolver, std::shared_ptr<xml::NamePool> pool);

  /// Binds an external variable visible to the query.
  void BindVariable(const std::string& name, Sequence value);

  /// Sets the initial context item (what absolute paths `/a/b` and bare
  /// relative steps resolve against at the top level).
  void SetContextItem(Item item);

  /// Enables/disables label-range axis evaluation (default on). Results
  /// are byte-identical either way; the engine threads its
  /// enable_structural_index option through here, and ablation tests flip
  /// it to prove identity.
  void set_use_structural_index(bool v) { use_structural_index_ = v; }

  Result<Sequence> Eval(const Expr& query);

  const EvalStats& stats() const { return stats_; }

 private:
  Result<Sequence> EvalExpr(const Expr& e);
  Result<Sequence> EvalBinary(const BinaryOp& op);
  Result<Sequence> EvalPath(const PathExpr& path);
  Result<Sequence> EvalSteps(Sequence context,
                             const std::vector<AxisStep>& steps,
                             size_t first);
  Result<Sequence> EvalFlwor(const FlworExpr& flwor);
  /// Recursive clause expansion. When `keyed` is non-null (order by), each
  /// binding tuple's (sort key, result chunk) is buffered there instead of
  /// being appended to `out`.
  Result<Sequence> EvalFlworClauses(
      const FlworExpr& flwor, size_t clause_idx, Sequence* out,
      std::vector<std::pair<Item, Sequence>>* keyed);
  Result<Sequence> EvalElementCtor(const ElementCtor& ctor);
  Result<bool> EvalQuantified(const QuantifiedExpr& quantified,
                              size_t binding_idx);
  Result<Sequence> EvalFunction(const FunctionCall& call);

  Result<bool> GeneralCompare(BinaryOp::Op op, const Sequence& lhs,
                              const Sequence& rhs);

  /// Applies one bracketed predicate to a step's match list (for one
  /// context node). Numeric results select by position; general results
  /// filter by effective boolean value.
  Result<Sequence> ApplyPredicate(const Expr& pred, Sequence matches);

  /// Answers one axis step for one context node via the structural label
  /// index when the step is index-eligible (see xpath::ChooseStepStrategy):
  /// appends the matches in document order and returns true, or returns
  /// false (appending nothing) when the caller must navigate instead.
  /// `ctx == kDocumentNode` scans the whole document including the root
  /// (descendant axis only).
  bool MatchStepByLabels(const xml::DocumentPtr& doc, xml::NodeId ctx,
                         const xpath::Step& step, Sequence* out);

  Status BuildContent(const Sequence& content, bool literal_text,
                      xml::Document* doc, xml::NodeId parent,
                      bool* last_was_atomic);

  CollectionResolver* resolver_;
  std::shared_ptr<xml::NamePool> pool_;
  std::map<std::string, Sequence> variables_;
  std::vector<Item> context_stack_;
  /// (position, size) of the predicate context, for position()/last().
  std::vector<std::pair<size_t, size_t>> position_stack_;
  EvalStats stats_;
  bool use_structural_index_ = true;
};

/// Convenience: parse + evaluate `query` in one call.
Result<Sequence> EvalQuery(const std::string& query,
                           CollectionResolver* resolver,
                           std::shared_ptr<xml::NamePool> pool = nullptr);

}  // namespace partix::xquery

#endif  // PARTIX_XQUERY_EVALUATOR_H_
