#ifndef PARTIX_XQUERY_EVALUATOR_H_
#define PARTIX_XQUERY_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "xml/document.h"
#include "xml/name_pool.h"
#include "xquery/ast.h"
#include "xquery/item.h"

namespace partix::xquery {

/// Supplies the documents behind collection("name") / doc("name"). The
/// database engine implements this; tests use an in-memory map.
///
/// Thread-safety: when the evaluator runs with morsel parallelism > 1,
/// Resolve may be called from several morsel workers concurrently and the
/// implementation must tolerate that (the engine's planned resolver takes
/// an internal lock; the simple map resolvers used in tests are read-only
/// after setup).
class CollectionResolver {
 public:
  virtual ~CollectionResolver() = default;

  /// Returns the documents of the named collection.
  virtual Result<std::vector<xml::DocumentPtr>> Resolve(
      const std::string& name) = 0;
};

/// Execution counters exposed after evaluation.
struct EvalStats {
  uint64_t nodes_visited = 0;
  uint64_t collections_resolved = 0;
  uint64_t elements_constructed = 0;
  /// Axis steps answered by a structural label-range scan instead of tree
  /// navigation, and the matches those scans produced. The engine folds
  /// these into the partix_structural_index_{probes,hits}_total counters.
  uint64_t index_range_scans = 0;
  uint64_t index_range_hits = 0;

  /// Folds another context's counters into this one (field-wise sum).
  /// Morsel chunks are merged in chunk order, so the total is identical
  /// to a single-threaded run of the same query — conservation is what
  /// keeps QueryMetrics and the structural-index telemetry exact under
  /// intra-node parallelism.
  void Merge(const EvalStats& other) {
    nodes_visited += other.nodes_visited;
    collections_resolved += other.collections_resolved;
    elements_constructed += other.elements_constructed;
    index_range_scans += other.index_range_scans;
    index_range_hits += other.index_range_hits;
  }
};

/// The per-thread, mutable half of evaluation: the dynamic context one
/// chain of Eval* calls threads through. The Evaluator itself is the
/// immutable half (plan environment: resolver, name pool, options, the
/// externally bound variables) — a morsel worker gets its own EvalContext
/// copied from the coordinator's at the fork point and the two never
/// touch each other's stacks.
struct EvalContext {
  std::map<std::string, Sequence> variables;
  std::vector<Item> context_stack;
  /// (position, size) of the predicate context, for position()/last().
  std::vector<std::pair<size_t, size_t>> position_stack;
  EvalStats stats;
  /// True inside a morsel worker: nested expressions must not fork again
  /// (one level of intra-node parallelism; nested forks would oversubscribe
  /// the shared pool and could deadlock a fully drained one).
  bool in_morsel = false;
};

class EvalStream;
using EvalStreamPtr = std::unique_ptr<EvalStream>;

/// Evaluates a parsed XQuery expression against a CollectionResolver.
///
/// Split into an immutable per-query environment (this class after setup:
/// resolver, name pool, bound variables, options) and a per-thread
/// EvalContext created by Eval() — every Eval* method is const over the
/// environment and mutates only the context it is handed. That makes one
/// evaluation internally parallelizable (morsels) and the evaluator
/// re-entrant over immutable stores.
///
/// Usage contract: construct, bind (BindVariable/SetContextItem/set_*),
/// then Eval — one query per instance; stats() reports the finished run.
/// The setup calls are not synchronized; do them from one thread before
/// Eval.
class Evaluator {
 public:
  /// `resolver` may be null for queries that never call collection()/doc().
  /// `pool` is used to intern names of constructed elements; if null a
  /// private pool is created. NOTE this fallback is silent: elements
  /// constructed against a private pool carry NameIds that are
  /// meaningless to any shared pool, so results that leave the evaluator
  /// (engine queries, stored documents) must pass the database's shared
  /// pool explicitly — the engine always does.
  Evaluator(CollectionResolver* resolver, std::shared_ptr<xml::NamePool> pool);

  /// Binds an external variable visible to the query.
  void BindVariable(const std::string& name, Sequence value);

  /// Sets the initial context item (what absolute paths `/a/b` and bare
  /// relative steps resolve against at the top level).
  void SetContextItem(Item item);

  /// Enables/disables label-range axis evaluation (default on). Results
  /// are byte-identical either way; the engine threads its
  /// enable_structural_index option through here, and ablation tests flip
  /// it to prove identity.
  void set_use_structural_index(bool v) { use_structural_index_ = v; }

  /// Enables intra-node morsel parallelism: collection-scale iterations
  /// (FLWOR for-clauses and path expressions over whole documents) are
  /// partitioned into up to `morsels` contiguous chunks evaluated on
  /// `pool`, with chunk results stitched back in order — results are
  /// byte-identical to the sequential run. `pool` must outlive Eval();
  /// pass morsels <= 1 or a null pool to stay sequential. The coordinator
  /// claims chunks too (help-while-waiting), so a saturated shared pool
  /// degrades to sequential instead of deadlocking.
  void set_morsel_parallelism(size_t morsels, ThreadPool* pool) {
    morsels_ = morsels;
    morsel_pool_ = pool;
  }

  Result<Sequence> Eval(const Expr& query);

  /// Opens a pull-based batched evaluation of `query`. The batches a
  /// stream yields, concatenated in order, are item- and stats-identical
  /// to one Eval() of the same query. Path expressions with an evaluated
  /// source whose items root pairwise-disjoint subtrees (the common
  /// collection("...")/step... shape) stream lazily — the remaining steps
  /// run slice-by-slice as the consumer pulls; every other expression
  /// materializes on the first Next(). The evaluator and `query` must
  /// outlive the stream; one stream per thread (create, drain, destroy on
  /// the same thread when the resolver is lock-bound, as the engine's is).
  Result<EvalStreamPtr> OpenStream(const Expr& query) const;

  const EvalStats& stats() const { return stats_; }

 private:
  friend class EvalStream;
  Result<Sequence> EvalExpr(EvalContext& ctx, const Expr& e) const;
  Result<Sequence> EvalBinary(EvalContext& ctx, const BinaryOp& op) const;
  Result<Sequence> EvalPath(EvalContext& ctx, const PathExpr& path) const;
  Result<Sequence> EvalSteps(EvalContext& ctx, Sequence context,
                             const std::vector<AxisStep>& steps,
                             size_t first) const;
  Result<Sequence> EvalFlwor(EvalContext& ctx, const FlworExpr& flwor) const;
  /// Recursive clause expansion. When `keyed` is non-null (order by), each
  /// binding tuple's (sort key, result chunk) is buffered there instead of
  /// being appended to `out`.
  Result<Sequence> EvalFlworClauses(
      EvalContext& ctx, const FlworExpr& flwor, size_t clause_idx,
      Sequence* out, std::vector<std::pair<Item, Sequence>>* keyed) const;
  Result<Sequence> EvalElementCtor(EvalContext& ctx,
                                   const ElementCtor& ctor) const;
  Result<bool> EvalQuantified(EvalContext& ctx,
                              const QuantifiedExpr& quantified,
                              size_t binding_idx) const;
  Result<Sequence> EvalFunction(EvalContext& ctx,
                                const FunctionCall& call) const;

  Result<bool> GeneralCompare(BinaryOp::Op op, const Sequence& lhs,
                              const Sequence& rhs) const;

  /// Applies one bracketed predicate to a step's match list (for one
  /// context node). Numeric results select by position; general results
  /// filter by effective boolean value.
  Result<Sequence> ApplyPredicate(EvalContext& ctx, const Expr& pred,
                                  Sequence matches) const;

  /// Answers one axis step for one context node via the structural label
  /// index when the step is index-eligible (see xpath::ChooseStepStrategy):
  /// appends the matches in document order and returns true, or returns
  /// false (appending nothing) when the caller must navigate instead.
  /// `ctx_node == kDocumentNode` scans the whole document including the
  /// root (descendant axis only).
  bool MatchStepByLabels(EvalContext& ctx, const xml::DocumentPtr& doc,
                         xml::NodeId ctx_node, const xpath::Step& step,
                         Sequence* out) const;

  Status BuildContent(EvalContext& ctx, const Sequence& content,
                      bool literal_text, xml::Document* doc,
                      xml::NodeId parent, bool* last_was_atomic) const;

  /// True when `ctx` may fork a morsel fan-out of >= 2 items here.
  bool MorselsEligible(const EvalContext& ctx, size_t items) const {
    return !ctx.in_morsel && morsels_ > 1 && morsel_pool_ != nullptr &&
           items >= 2;
  }

  /// Runs `run(chunk)` for every chunk in [0, chunks) across the shared
  /// pool, with the calling thread claiming chunks alongside the workers
  /// and blocking until all chunks finished. `run` must not throw and must
  /// confine its writes to per-chunk slots.
  void RunMorsels(size_t chunks, std::function<void(size_t)> run) const;

  CollectionResolver* resolver_;
  std::shared_ptr<xml::NamePool> pool_;
  /// Seed environment copied into each Eval's root EvalContext.
  std::map<std::string, Sequence> variables_;
  std::vector<Item> context_stack_;
  EvalStats stats_;
  bool use_structural_index_ = true;
  size_t morsels_ = 1;
  ThreadPool* morsel_pool_ = nullptr;
};

/// A pull-based batched evaluation opened by Evaluator::OpenStream. Not
/// thread-safe; Next() batches are produced in result order and the stats
/// are complete once Next() has returned false (or an error).
class EvalStream {
 public:
  /// Produces the next non-empty batch of result items into `*out`
  /// (cleared first). Returns false at end of stream; an error ends the
  /// stream (identical to what Eval() would have returned for lazily
  /// detectable failures, modulo slice-order error selection — the same
  /// first-failing-chunk rule morsel forks follow).
  Result<bool> Next(Sequence* out);

  /// Counters accumulated so far; equal to Eval()'s stats once the stream
  /// is drained.
  const EvalStats& stats() const { return ctx_.stats; }

 private:
  friend class Evaluator;
  EvalStream(const Evaluator* eval, const Expr* query)
      : eval_(eval), query_(query) {}

  const Evaluator* eval_;
  const Expr* query_;
  EvalContext ctx_;
  /// Lazy path mode: `context_` holds the evaluated source items (roots
  /// of disjoint subtrees); Next() runs `steps_` over `slice_`-item
  /// slices from `pos_`.
  bool lazy_ = false;
  Sequence context_;
  size_t pos_ = 0;
  const std::vector<AxisStep>* steps_ = nullptr;
  size_t slice_ = 1;
  bool done_ = false;
};

/// Convenience: parse + evaluate `query` in one call.
Result<Sequence> EvalQuery(const std::string& query,
                           CollectionResolver* resolver,
                           std::shared_ptr<xml::NamePool> pool = nullptr);

}  // namespace partix::xquery

#endif  // PARTIX_XQUERY_EVALUATOR_H_
