#ifndef PARTIX_XQUERY_AST_H_
#define PARTIX_XQUERY_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "xpath/path.h"

namespace partix::xquery {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// String literal: "abc".
struct StringLit {
  std::string value;
};

/// Numeric literal: 42, 3.14.
struct NumberLit {
  double value = 0.0;
};

/// Variable reference: $x.
struct VarRef {
  std::string name;
};

/// The context item: `.` inside a step predicate.
struct ContextItem {};

/// Binary operators (logical, comparison, arithmetic, sequence comma).
struct BinaryOp {
  enum class Op {
    kOr,
    kAnd,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kComma,
  };
  Op op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Unary minus.
struct UnaryMinus {
  ExprPtr operand;
};

/// One step of a path expression within a query, with optional bracketed
/// predicates. A numeric-literal predicate is positional; any other
/// expression is an effective-boolean filter evaluated with the step result
/// as context item.
struct AxisStep {
  xpath::Step step;
  std::vector<ExprPtr> predicates;
};

/// A path applied to a source expression ($v/a/b) or to the root of the
/// context document when `source` is null (absolute path inside a
/// predicate or against a bound document).
struct PathExpr {
  ExprPtr source;  // may be null
  std::vector<AxisStep> steps;
};

/// Function call: count(...), contains(...), collection("name"), ...
struct FunctionCall {
  std::string name;
  std::vector<ExprPtr> args;
};

/// One for/let binding of a FLWOR expression.
struct ForLetClause {
  bool is_let = false;
  std::string var;
  ExprPtr expr;
};

/// FLWOR: (for | let)+ where? (order by)? return.
struct FlworExpr {
  std::vector<ForLetClause> clauses;
  ExprPtr where;     // may be null
  ExprPtr order_by;  // may be null; sort key per binding tuple
  bool order_descending = false;
  ExprPtr ret;
};

/// Direct element constructor: <r a="1">{...}</r>. Attribute values are
/// literal strings; content interleaves literal text (StringLit) and
/// enclosed expressions.
struct ElementCtor {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<ExprPtr> content;
  /// Marks content entries that were literal text (not enclosed exprs), so
  /// the evaluator does not re-atomize them with separators.
  std::vector<bool> content_is_literal_text;
};

/// Quantified expression: some/every $v in E (, ...) satisfies P.
struct QuantifiedExpr {
  bool is_every = false;
  std::vector<ForLetClause> bindings;  // is_let unused (always for-style)
  ExprPtr satisfies;
};

/// if (cond) then e1 else e2.
struct IfExpr {
  ExprPtr cond;
  ExprPtr then_branch;
  ExprPtr else_branch;
};

/// A query AST node.
struct Expr {
  std::variant<StringLit, NumberLit, VarRef, ContextItem, BinaryOp,
               UnaryMinus, PathExpr, FunctionCall, FlworExpr, ElementCtor,
               IfExpr, QuantifiedExpr>
      node;

  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  const T& As() const {
    return std::get<T>(node);
  }
  template <typename T>
  T& As() {
    return std::get<T>(node);
  }
};

template <typename T>
ExprPtr MakeExpr(T node) {
  auto e = std::make_unique<Expr>();
  e->node = std::move(node);
  return e;
}

/// Renders the AST back to (approximately) XQuery text, used for
/// diagnostics and for shipping rewritten sub-queries to nodes.
std::string ExprToString(const Expr& e);

/// Deep copy (used by the query decomposer when rewriting).
ExprPtr CloneExpr(const Expr& e);

}  // namespace partix::xquery

#endif  // PARTIX_XQUERY_AST_H_
