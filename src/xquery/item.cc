#include "xquery/item.h"

#include "common/strings.h"
#include "xml/serializer.h"

namespace partix::xquery {

std::string Item::StringValue() const {
  if (IsNode()) {
    const NodeRef& n = AsNode();
    if (n.node == xml::kDocumentNode) {
      return n.doc->empty() ? std::string()
                            : n.doc->StringValue(n.doc->root());
    }
    return n.doc->StringValue(n.node);
  }
  if (IsString()) return AsString();
  if (IsNumber()) return FormatNumber(AsNumber());
  return AsBool() ? "true" : "false";
}

bool Item::TryNumber(double* out) const {
  if (IsNumber()) {
    *out = AsNumber();
    return true;
  }
  if (IsBool()) {
    *out = AsBool() ? 1.0 : 0.0;
    return true;
  }
  return ParseDouble(StringValue(), out);
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq[0].IsNode()) return true;
  if (seq.size() > 1) {
    return Status::InvalidArgument(
        "effective boolean value of a multi-item atomic sequence");
  }
  const Item& item = seq[0];
  if (item.IsBool()) return item.AsBool();
  if (item.IsNumber()) {
    double v = item.AsNumber();
    return v != 0.0 && v == v;  // false for 0 and NaN
  }
  return !item.AsString().empty();
}

std::string SerializeSequence(const Sequence& seq) {
  std::string out;
  for (const Item& item : seq) {
    if (!out.empty()) out.push_back('\n');
    if (item.IsNode()) {
      const NodeRef& n = item.AsNode();
      if (n.node == xml::kDocumentNode) {
        if (!n.doc->empty()) {
          out += xml::SerializeSubtree(*n.doc, n.doc->root());
        }
      } else if (n.doc->kind(n.node) == xml::NodeKind::kElement) {
        out += xml::SerializeSubtree(*n.doc, n.node);
      } else {
        out += std::string(n.doc->value(n.node));
      }
    } else {
      out += item.StringValue();
    }
  }
  return out;
}

}  // namespace partix::xquery
