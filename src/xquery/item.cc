#include "xquery/item.h"

#include "common/strings.h"
#include "xml/serializer.h"

namespace partix::xquery {

std::string Item::StringValue() const {
  if (IsNode()) {
    const NodeRef& n = AsNode();
    if (n.node == xml::kDocumentNode) {
      return n.doc->empty() ? std::string()
                            : n.doc->StringValue(n.doc->root());
    }
    return n.doc->StringValue(n.node);
  }
  if (IsString()) return AsString();
  if (IsNumber()) return FormatNumber(AsNumber());
  return AsBool() ? "true" : "false";
}

bool Item::TryNumber(double* out) const {
  if (IsNumber()) {
    *out = AsNumber();
    return true;
  }
  if (IsBool()) {
    *out = AsBool() ? 1.0 : 0.0;
    return true;
  }
  return ParseDouble(StringValue(), out);
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq[0].IsNode()) return true;
  if (seq.size() > 1) {
    return Status::InvalidArgument(
        "effective boolean value of a multi-item atomic sequence");
  }
  const Item& item = seq[0];
  if (item.IsBool()) return item.AsBool();
  if (item.IsNumber()) {
    double v = item.AsNumber();
    return v != 0.0 && v == v;  // false for 0 and NaN
  }
  return !item.AsString().empty();
}

namespace {

/// One item's bare serialization (no separator), appended to `*out`.
void AppendItemText(const Item& item, std::string* out) {
  if (item.IsNode()) {
    const NodeRef& n = item.AsNode();
    if (n.node == xml::kDocumentNode) {
      if (!n.doc->empty()) {
        xml::SerializeSubtreeInto(*n.doc, n.doc->root(), out);
      }
    } else if (n.doc->kind(n.node) == xml::NodeKind::kElement) {
      xml::SerializeSubtreeInto(*n.doc, n.node, out);
    } else {
      out->append(n.doc->value(n.node));
    }
  } else {
    *out += item.StringValue();
  }
}

}  // namespace

void SequenceSerializer::Append(const Item& item, std::string* out) {
  if (emitted_) out->push_back('\n');
  const size_t before = out->size();
  AppendItemText(item, out);
  if (!emitted_ && out->size() > before) emitted_ = true;
}

std::string SerializeSequence(const Sequence& seq) {
  std::string out;
  SequenceSerializer serializer;
  for (const Item& item : seq) serializer.Append(item, &out);
  return out;
}

}  // namespace partix::xquery
