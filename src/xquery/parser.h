#ifndef PARTIX_XQUERY_PARSER_H_
#define PARTIX_XQUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xquery/ast.h"

namespace partix::xquery {

/// Parses an XQuery expression in the subset PartiX supports:
///
///   - FLWOR: (for $v in E | let $v := E)+ [where E]
///     [order by E [ascending|descending]] return E
///   - quantifiers: some/every $v in E (, ...) satisfies E
///   - path expressions over any source: $v/a//b[pred]/@id, with
///     positional and boolean step predicates
///   - absolute paths: /a/b (against the context document)
///   - direct element constructors with enclosed expressions:
///     <r>{ $x/Name }</r>
///   - function calls: collection(), doc(), count(), sum(), avg(), min(),
///     max(), contains(), starts-with(), string-length(), concat(), not(),
///     empty(), exists(), string(), number(), distinct-values(),
///     substring(), string-join(), normalize-space(), upper-case(),
///     lower-case(), position(), last(), name(), ...
///   - general comparisons (= != < <= > >=), and/or, arithmetic
///     (+ - * div mod), if/then/else, string and number literals,
///     comma sequences, XQuery comments (: ... :)
///
/// Returns kParseError with position information on malformed input.
Result<ExprPtr> ParseQuery(std::string_view text);

/// Monotonic count of ParseQuery invocations on the calling thread.
/// The compile-once pipeline's contract is "one parse per middleware
/// execution"; tests and debug assertions diff this counter around an
/// execution to prove no layer silently re-parses (assert() is compiled
/// out of the default RelWithDebInfo build, so the counter is the
/// observable form of the contract).
uint64_t ThreadParseCount();

}  // namespace partix::xquery

#endif  // PARTIX_XQUERY_PARSER_H_
