#include "telemetry/trace.h"

#include <cstdio>

namespace partix::telemetry {

std::string TraceSpan::Tag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return "";
}

const TraceSpan* TraceSpan::Find(const std::string& needle) const {
  if (name.find(needle) != std::string::npos) return this;
  for (const TraceSpan& child : children) {
    const TraceSpan* hit = child.Find(needle);
    if (hit != nullptr) return hit;
  }
  return nullptr;
}

size_t TraceSpan::TreeSize() const {
  size_t total = 1;
  for (const TraceSpan& child : children) total += child.TreeSize();
  return total;
}

namespace {

void RenderInto(const TraceSpan& span, size_t depth, std::string* out) {
  std::string line(depth * 2, ' ');
  line += span.name;
  if (line.size() < 44) line.resize(44, ' ');
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " +%9.3fms %9.3fms", span.start_ms,
                span.duration_ms);
  line += buffer;
  for (const auto& [key, value] : span.tags) {
    line += "  " + key + "=" + value;
  }
  *out += line + "\n";
  for (const TraceSpan& child : span.children) {
    RenderInto(child, depth + 1, out);
  }
}

}  // namespace

std::string RenderSpanTree(const TraceSpan& root) {
  std::string out;
  RenderInto(root, 0, &out);
  return out;
}

}  // namespace partix::telemetry
