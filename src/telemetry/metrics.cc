#include "telemetry/metrics.h"

#include <atomic>
#include <cstdio>
#include <thread>

namespace partix::telemetry {

namespace {

/// Formats a double the way both exporters need it: plain decimal,
/// trailing zeros trimmed, never scientific notation.
std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  std::string s(buffer);
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last -= 1;  // keep one digit before the dot
    s.erase(last + 1);
  }
  return s;
}

std::string JsonKey(const std::string& name) { return "\"" + name + "\""; }

}  // namespace

size_t ThreadShardIndex() {
  // Distinct threads land on distinct shards round-robin; the index is
  // computed once per thread and then read from a thread_local.
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

// ------------------------------------------------------------- Histogram

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double> bounds = {
      0.05, 0.1, 0.25, 0.5, 1.0,    2.5,    5.0,    10.0,
      25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
  return bounds;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  cells_ = std::make_unique<internal::ShardCell[]>(
      (bounds_.size() + 1) * kMetricShards);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1, 0);
  for (size_t bucket = 0; bucket <= bounds_.size(); ++bucket) {
    for (size_t shard = 0; shard < kMetricShards; ++shard) {
      snap.counts[bucket] +=
          cells_[bucket * kMetricShards + shard].value.load(
              std::memory_order_relaxed);
    }
    snap.count += snap.counts[bucket];
  }
  uint64_t sum_units = 0;
  for (const internal::ShardCell& cell : sum_cells_) {
    sum_units += cell.value.load(std::memory_order_relaxed);
  }
  snap.sum = static_cast<double>(sum_units) / 1e6;
  return snap;
}

// -------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     &enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(&enabled_, bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    for (internal::ShardCell& cell : counter->cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    const size_t cells = (histogram->bounds_.size() + 1) * kMetricShards;
    for (size_t i = 0; i < cells; ++i) {
      histogram->cells_[i].value.store(0, std::memory_order_relaxed);
    }
    for (internal::ShardCell& cell : histogram->sum_cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

// ------------------------------------------------------------- Exporters

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonKey(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonKey(name) + ": " + FormatDouble(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonKey(name) + ": { \"count\": " +
           std::to_string(hist.count) + ", \"sum\": " +
           FormatDouble(hist.sum) + ", \"buckets\": [";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{ \"le\": ";
      out += i < hist.bounds.size() ? FormatDouble(hist.bounds[i])
                                    : std::string("\"+Inf\"");
      out += ", \"count\": " + std::to_string(hist.counts[i]) + " }";
    }
    out += "] }";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      const std::string le = i < hist.bounds.size()
                                 ? FormatDouble(hist.bounds[i])
                                 : std::string("+Inf");
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + FormatDouble(hist.sum) + "\n";
    out += name + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

}  // namespace partix::telemetry
