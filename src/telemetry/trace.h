#ifndef PARTIX_TELEMETRY_TRACE_H_
#define PARTIX_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace partix::telemetry {

/// One timed operation in a query's execution, with children for the
/// operations it contains. Start times are milliseconds relative to the
/// owning trace's epoch (the moment execution began), so a span tree is
/// self-contained and deterministic under an injected ManualClock.
///
/// Span naming follows the taxonomy in docs/observability.md:
///   query → decompose | dispatch | compose
///   dispatch → one span per sub-query, named with the canonical
///   `fragment@node<i>` token (i = the node that served it), whose
///   children are `attempt <k>@node<i>` and `backoff` spans.
///
/// Plain value type: the coordinator assembles the tree from pieces the
/// workers filled into disjoint slots, so no synchronization lives here.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  /// Small key=value annotations (status, attempts, failover target...).
  std::vector<std::pair<std::string, std::string>> tags;
  std::vector<TraceSpan> children;

  TraceSpan() = default;
  explicit TraceSpan(std::string span_name) : name(std::move(span_name)) {}

  void AddTag(std::string key, std::string value) {
    tags.emplace_back(std::move(key), std::move(value));
  }

  /// The tag's value, or "" when absent (test convenience).
  std::string Tag(const std::string& key) const;

  /// Depth-first search for the first span whose name contains `needle`
  /// (this span included). Returns nullptr when absent.
  const TraceSpan* Find(const std::string& needle) const;

  /// Total number of spans in this subtree (this span included).
  size_t TreeSize() const;
};

/// Hands out millisecond offsets from a fixed epoch on an injectable
/// clock. One Tracer per traced query execution; thread-safe because it
/// is immutable after construction (workers only *read* the epoch).
class Tracer {
 public:
  explicit Tracer(const Clock* clock)
      : clock_(clock), epoch_nanos_(clock->NowNanos()) {}

  /// Milliseconds elapsed since the tracer was created.
  double NowMs() const {
    return static_cast<double>(clock_->NowNanos() - epoch_nanos_) * 1e-6;
  }

  const Clock* clock() const { return clock_; }

 private:
  const Clock* clock_;
  int64_t epoch_nanos_;
};

/// Renders the span tree as indented text with timings and tags — the
/// body of EXPLAIN ANALYZE:
///
///   query                          12.41ms
///     decompose       +0.00ms       0.52ms
///     dispatch        +0.53ms      11.02ms  parallelism=4
///       items_f_CD@node1 ...
std::string RenderSpanTree(const TraceSpan& root);

}  // namespace partix::telemetry

#endif  // PARTIX_TELEMETRY_TRACE_H_
