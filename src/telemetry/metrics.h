#ifndef PARTIX_TELEMETRY_METRICS_H_
#define PARTIX_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace partix::telemetry {

/// Compile-time kill switch: building with -DPARTIX_TELEMETRY=OFF defines
/// PARTIX_TELEMETRY_DISABLED, turning every hot-path record operation into
/// an empty inline function the optimizer erases. The API (registration,
/// snapshots, export) stays available so instrumented code compiles
/// unchanged; snapshots simply report zeros.
///
/// At runtime, recording is additionally gated by the owning registry's
/// enabled flag (a single relaxed atomic load on the hot path). The
/// default registry starts *disabled*: a process that never calls
/// MetricsRegistry::Global().set_enabled(true) pays one predictable
/// branch per instrumented event.

/// Shard count for the hot counters. Each shard lives on its own cache
/// line so concurrent writers (executor workers, per-node drivers) do not
/// bounce a shared line; reads sum the shards.
inline constexpr size_t kMetricShards = 8;

/// Returns this thread's stable shard index in [0, kMetricShards).
size_t ThreadShardIndex();

namespace internal {
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// A monotonically increasing counter. Add is a relaxed atomic add on a
/// per-thread shard; Value sums the shards. Thread-safe.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
#ifndef PARTIX_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[ThreadShardIndex()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const internal::ShardCell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::atomic<bool>* enabled_;
  internal::ShardCell cells_[kMetricShards];
};

/// A last-write-wins instantaneous value (pool sizes, open breakers).
/// Thread-safe; Set/Add use atomics on a single cell (gauges are not hot).
class Gauge {
 public:
  void Set(double value) {
#ifndef PARTIX_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(double delta) {
#ifndef PARTIX_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets; an implicit +Inf bucket follows.
  std::vector<double> bounds;
  /// Per-bucket observation counts, size bounds.size() + 1 (last = +Inf).
  std::vector<uint64_t> counts;
  uint64_t count = 0;   // total observations
  double sum = 0.0;     // sum of observed values
};

/// A fixed-bucket latency histogram. Observe finds the bucket (linear
/// scan over <= ~16 bounds) and does two relaxed adds on per-thread
/// shards; the observed-value sum is kept in integer nanounits so
/// concurrent observations conserve exactly. Thread-safe.
class Histogram {
 public:
  /// The default milliseconds bucketing: sub-0.1ms index probes through
  /// multi-second distributed queries.
  static const std::vector<double>& DefaultLatencyBoundsMs();

  void Observe(double value) {
#ifndef PARTIX_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    size_t bucket = bounds_.size();
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    const size_t shard = ThreadShardIndex();
    cells_[bucket * kMetricShards + shard].value.fetch_add(
        1, std::memory_order_relaxed);
    // Nano-units keep the sum integral: concurrent adds conserve exactly.
    sum_cells_[shard].value.fetch_add(
        static_cast<uint64_t>(value * 1e6 + 0.5), std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;
  /// Bucket-major [bucket][shard] observation counts, (bounds+1)*shards.
  std::unique_ptr<internal::ShardCell[]> cells_;
  internal::ShardCell sum_cells_[kMetricShards];
};

/// Point-in-time view of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — one
  /// self-contained JSON object, keys sorted.
  std::string ToJson() const;

  /// Prometheus text exposition format (version 0.0.4): one family per
  /// metric, histograms as <name>_bucket{le=...}/_sum/_count.
  std::string ToPrometheus() const;
};

/// A named collection of counters, gauges, and histograms.
///
/// Registration (Get*) is mutex-guarded and idempotent — call sites
/// typically register once into a function-local static and keep the raw
/// pointer, which stays valid for the registry's lifetime. The record
/// paths (Counter::Add, Gauge::Set, Histogram::Observe) are lock-free.
///
/// Thread-safe throughout; Snapshot may run concurrently with recording
/// (it reads relaxed atomics — values are conserved, not cut-consistent).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site
  /// records into. Starts disabled.
  static MetricsRegistry& Global();

  /// Runtime master switch. While disabled, record operations cost one
  /// relaxed load + branch and mutate nothing.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates the named metric. Idempotent per (name, kind);
  /// keep names unique across kinds — the exporters emit one family per
  /// name. A histogram's bounds are fixed by its first registration.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds_ms =
                              Histogram::DefaultLatencyBoundsMs());

  /// Zeroes every registered metric (benches isolate phases with this).
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the maps (registration + iteration)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace partix::telemetry

#endif  // PARTIX_TELEMETRY_METRICS_H_
