#ifndef PARTIX_GEN_XBENCH_H_
#define PARTIX_GEN_XBENCH_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "xml/collection.h"
#include "xml/name_pool.h"

namespace partix::gen {

/// Options for the XBench-style article collection used by the vertical
/// fragmentation experiment (database XBenchVer). Each article consists of
/// a prolog (title, authors, dateline, genre, keywords), a body (abstract
/// plus sections of paragraphs — the bulk of the bytes), and an epilog
/// (references, acknowledgements).
struct XBenchGenOptions {
  uint64_t seed = 17;
  size_t doc_count = 16;
  /// Approximate serialized size of one article. The paper's XBenchVer
  /// documents span 5–15 MB; scale down for quick runs.
  uint64_t target_doc_bytes = 256 * 1024;
  /// Fraction of articles whose body mentions the benchmark search word
  /// "database".
  double hit_fraction = 0.15;
  std::string name = "papers";
};

/// Generates the article collection := ⟨Sxbench, /article⟩ (MD).
/// Deterministic in the seed.
Result<xml::Collection> GenerateArticles(const XBenchGenOptions& options,
                                         std::shared_ptr<xml::NamePool> pool);

/// Generates articles until the collection reaches `target_bytes` total.
Result<xml::Collection> GenerateArticlesBySize(
    XBenchGenOptions options, uint64_t target_bytes,
    std::shared_ptr<xml::NamePool> pool);

}  // namespace partix::gen

#endif  // PARTIX_GEN_XBENCH_H_
