#ifndef PARTIX_GEN_VIRTUAL_STORE_H_
#define PARTIX_GEN_VIRTUAL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/collection.h"
#include "xml/name_pool.h"

namespace partix::gen {

/// Options for the Citems MD collection generator (paper Fig. 1), the
/// stand-in for the ToXgene-generated ItemsSHor / ItemsLHor databases.
struct ItemsGenOptions {
  uint64_t seed = 42;
  /// Number of Item documents.
  size_t doc_count = 1000;
  /// false: ItemsSHor-style ~2 KB docs with zero PictureList/PricesHistory
  /// occurrences. true: ItemsLHor-style ~80 KB docs.
  bool large_docs = false;
  /// Section values; the horizontal designs fragment on these.
  std::vector<std::string> sections = {"CD",   "DVD",  "BOOK", "GAME",
                                       "TOY",  "HIFI", "PC",   "GARDEN"};
  /// Zipf skew of the section distribution (0 = uniform); the paper used a
  /// non-uniform document distribution.
  double section_skew = 0.6;
  /// Fraction of items whose Description contains the word "good" (the
  /// text-search predicate of the workload).
  double good_fraction = 0.08;
  /// Collection name.
  std::string name = "items";
};

/// Generates the Citems collection := ⟨Svirtual_store, /Store/Items/Item⟩
/// (MD). Deterministic in the seed.
Result<xml::Collection> GenerateItems(const ItemsGenOptions& options,
                                      std::shared_ptr<xml::NamePool> pool);

/// Generates Item documents until the serialized collection reaches
/// `target_bytes`, overriding options.doc_count.
Result<xml::Collection> GenerateItemsBySize(ItemsGenOptions options,
                                            uint64_t target_bytes,
                                            std::shared_ptr<xml::NamePool> pool);

/// Options for the Cstore SD collection generator (database StoreHyb).
struct StoreGenOptions {
  uint64_t seed = 7;
  size_t item_count = 500;
  size_t employee_count = 20;
  /// Item shape: large items include PictureList/PricesHistory.
  bool large_items = true;
  std::vector<std::string> sections = {"CD",   "DVD",  "BOOK", "GAME",
                                       "TOY",  "HIFI", "PC",   "GARDEN"};
  double section_skew = 0.6;
  double good_fraction = 0.08;
  std::string name = "store";
};

/// Generates the Cstore collection := ⟨Svirtual_store, /Store⟩ (SD): one
/// Store document with Sections, Items, and Employees.
Result<xml::Collection> GenerateStore(const StoreGenOptions& options,
                                      std::shared_ptr<xml::NamePool> pool);

/// Generates a Store document sized to roughly `target_bytes`.
Result<xml::Collection> GenerateStoreBySize(StoreGenOptions options,
                                            uint64_t target_bytes,
                                            std::shared_ptr<xml::NamePool> pool);

}  // namespace partix::gen

#endif  // PARTIX_GEN_VIRTUAL_STORE_H_
