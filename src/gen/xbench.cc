#include "gen/xbench.h"

#include <cstdio>

#include "common/rng.h"
#include "xml/document.h"
#include "xml/schema.h"
#include "xml/serializer.h"

namespace partix::gen {

namespace {

using xml::Document;
using xml::NodeId;

std::string RandomDate(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                int(rng->UniformInt(1995, 2005)),
                int(rng->UniformInt(1, 12)), int(rng->UniformInt(1, 28)));
  return buf;
}

const char* const kGenres[] = {"research", "survey", "tutorial", "demo",
                               "industrial"};

}  // namespace

Result<xml::Collection> GenerateArticles(const XBenchGenOptions& options,
                                         std::shared_ptr<xml::NamePool> pool) {
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  Rng rng(options.seed);
  xml::Collection out(options.name, xml::XBenchArticleSchema(), "/article",
                      xml::RepoKind::kMultipleDocuments);

  // A paragraph of ~12 words serializes to roughly 110 bytes; size the
  // body to hit target_doc_bytes.
  constexpr double kBytesPerParagraph = 110.0;
  const size_t paragraphs_total = static_cast<size_t>(
      static_cast<double>(options.target_doc_bytes) / kBytesPerParagraph);

  for (size_t i = 0; i < options.doc_count; ++i) {
    auto doc = std::make_shared<Document>(
        pool, options.name + "-" + std::to_string(i));
    NodeId article = doc->CreateRoot("article");

    // Prolog: small, metadata-heavy.
    NodeId prolog = doc->AppendElement(article, "prolog");
    NodeId title = doc->AppendElement(prolog, "title");
    doc->AppendText(title, "On " + rng.Sentence(5) + " " +
                               std::to_string(i));
    NodeId authors = doc->AppendElement(prolog, "authors");
    int author_count = int(rng.UniformInt(1, 5));
    for (int a = 0; a < author_count; ++a) {
      NodeId author = doc->AppendElement(authors, "author");
      NodeId name = doc->AppendElement(author, "name");
      doc->AppendText(name, rng.Word(4, 8) + " " + rng.Word(5, 10));
      if (rng.Bernoulli(0.6)) {
        NodeId contact = doc->AppendElement(author, "contact");
        doc->AppendText(contact, rng.Word(4, 8) + "@" + rng.Word(4, 8) +
                                     ".edu");
      }
    }
    NodeId dateline = doc->AppendElement(prolog, "dateline");
    doc->AppendText(dateline, RandomDate(&rng));
    NodeId genre = doc->AppendElement(prolog, "genre");
    doc->AppendText(genre, kGenres[rng.NextBelow(5)]);
    NodeId keywords = doc->AppendElement(prolog, "keywords");
    int keyword_count = int(rng.UniformInt(2, 6));
    for (int k = 0; k < keyword_count; ++k) {
      NodeId kw = doc->AppendElement(keywords, "keyword");
      doc->AppendText(kw, rng.Sentence(1));
    }

    // Body: the bulk of the document.
    NodeId body = doc->AppendElement(article, "body");
    NodeId abstract = doc->AppendElement(body, "abstract");
    bool hit = rng.Bernoulli(options.hit_fraction);
    doc->AppendText(abstract, rng.Sentence(40, hit ? "database" : ""));
    size_t section_count = 4 + rng.NextBelow(5);
    size_t paragraphs_per_section =
        paragraphs_total / section_count + 1;
    for (size_t s = 0; s < section_count; ++s) {
      NodeId section = doc->AppendElement(body, "section");
      NodeId heading = doc->AppendElement(section, "heading");
      doc->AppendText(heading, rng.Sentence(3));
      for (size_t p = 0; p < paragraphs_per_section; ++p) {
        NodeId para = doc->AppendElement(section, "paragraph");
        doc->AppendText(para, rng.Sentence(12));
      }
    }

    // Epilog: references and acknowledgements.
    NodeId epilog = doc->AppendElement(article, "epilog");
    NodeId references = doc->AppendElement(epilog, "references");
    int reference_count = int(rng.UniformInt(5, 40));
    for (int r = 0; r < reference_count; ++r) {
      NodeId ref = doc->AppendElement(references, "reference");
      doc->AppendText(ref, rng.Word(4, 8) + " et al., " + rng.Sentence(6) +
                               ", " + std::to_string(rng.UniformInt(1990, 2005)));
    }
    if (rng.Bernoulli(0.7)) {
      NodeId ack = doc->AppendElement(epilog, "acknowledgements");
      doc->AppendText(ack, rng.Sentence(15));
    }

    doc->SealLabels();
    PARTIX_RETURN_IF_ERROR(out.Add(std::move(doc)));
  }
  return out;
}

Result<xml::Collection> GenerateArticlesBySize(
    XBenchGenOptions options, uint64_t target_bytes,
    std::shared_ptr<xml::NamePool> pool) {
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  options.doc_count = static_cast<size_t>(
                          target_bytes / options.target_doc_bytes) +
                      1;
  return GenerateArticles(options, pool);
}

}  // namespace partix::gen
