#include "gen/virtual_store.h"

#include <cstdio>

#include "common/rng.h"
#include "xml/document.h"
#include "xml/schema.h"
#include "xml/serializer.h"

namespace partix::gen {

namespace {

using xml::Document;
using xml::DocumentPtr;
using xml::NodeId;

std::string RandomDate(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                int(rng->UniformInt(1998, 2005)),
                int(rng->UniformInt(1, 12)), int(rng->UniformInt(1, 28)));
  return buf;
}

std::string RandomPrice(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", rng->UniformDouble(1.0, 500.0));
  return buf;
}

/// Parameters shaping one Item subtree.
struct ItemShape {
  bool large = false;
  double good_fraction = 0.08;
};

/// Appends one Item element under `parent` (or as the document root when
/// parent == kNullNode).
NodeId BuildItem(Document* doc, NodeId parent, uint64_t code,
                 const std::string& section, const ItemShape& shape,
                 Rng* rng) {
  NodeId item = parent == xml::kNullNode ? doc->CreateRoot("Item")
                                         : doc->AppendElement(parent, "Item");
  NodeId code_el = doc->AppendElement(item, "Code");
  doc->AppendText(code_el, std::to_string(code));
  NodeId name = doc->AppendElement(item, "Name");
  doc->AppendText(name, rng->Sentence(3));
  NodeId desc = doc->AppendElement(item, "Description");
  std::string inject = rng->Bernoulli(shape.good_fraction) ? "good" : "";
  doc->AppendText(desc, rng->Sentence(shape.large ? 150 : 25, inject));
  NodeId sec = doc->AppendElement(item, "Section");
  doc->AppendText(sec, section);
  NodeId release = doc->AppendElement(item, "Release");
  doc->AppendText(release, RandomDate(rng));

  int characteristics =
      int(rng->UniformInt(shape.large ? 12 : 1, shape.large ? 24 : 4));
  for (int i = 0; i < characteristics; ++i) {
    NodeId ch = doc->AppendElement(item, "Characteristics");
    doc->AppendText(ch, rng->Sentence(shape.large ? 70 : 8));
  }

  if (shape.large) {
    NodeId pictures = doc->AppendElement(item, "PictureList");
    int picture_count = int(rng->UniformInt(28, 44));
    for (int i = 0; i < picture_count; ++i) {
      NodeId pic = doc->AppendElement(pictures, "Picture");
      NodeId pic_name = doc->AppendElement(pic, "Name");
      doc->AppendText(pic_name, rng->Sentence(2));
      NodeId pic_desc = doc->AppendElement(pic, "Description");
      doc->AppendText(pic_desc, rng->Sentence(130));
      NodeId mod = doc->AppendElement(pic, "ModificationDate");
      doc->AppendText(mod, RandomDate(rng));
      NodeId orig = doc->AppendElement(pic, "OriginalPath");
      doc->AppendText(orig, "/img/full/" + rng->Word(8, 16) + ".jpg");
      NodeId thumb = doc->AppendElement(pic, "ThumbPath");
      doc->AppendText(thumb, "/img/thumb/" + rng->Word(8, 16) + ".jpg");
    }
    NodeId history = doc->AppendElement(item, "PricesHistory");
    int price_count = int(rng->UniformInt(30, 70));
    for (int i = 0; i < price_count; ++i) {
      NodeId entry = doc->AppendElement(history, "PriceHistory");
      NodeId price = doc->AppendElement(entry, "Price");
      doc->AppendText(price, RandomPrice(rng));
      NodeId mod = doc->AppendElement(entry, "ModificationDate");
      doc->AppendText(mod, RandomDate(rng));
    }
  }
  return item;
}

}  // namespace

Result<xml::Collection> GenerateItems(const ItemsGenOptions& options,
                                      std::shared_ptr<xml::NamePool> pool) {
  if (options.sections.empty()) {
    return Status::InvalidArgument("no sections configured");
  }
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  Rng rng(options.seed);
  xml::Collection out(options.name, xml::VirtualStoreSchema(),
                      "/Store/Items/Item",
                      xml::RepoKind::kMultipleDocuments);
  ItemShape shape;
  shape.large = options.large_docs;
  shape.good_fraction = options.good_fraction;
  for (size_t i = 0; i < options.doc_count; ++i) {
    const std::string& section =
        options.sections[rng.Zipf(options.sections.size(),
                                  options.section_skew)];
    auto doc = std::make_shared<Document>(
        pool, options.name + "-" + std::to_string(i));
    BuildItem(doc.get(), xml::kNullNode, i, section, shape, &rng);
    doc->SealLabels();
    PARTIX_RETURN_IF_ERROR(out.Add(std::move(doc)));
  }
  return out;
}

Result<xml::Collection> GenerateItemsBySize(
    ItemsGenOptions options, uint64_t target_bytes,
    std::shared_ptr<xml::NamePool> pool) {
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  // Estimate one document's serialized size from a probe batch, then
  // generate the computed count.
  ItemsGenOptions probe = options;
  probe.doc_count = 8;
  PARTIX_ASSIGN_OR_RETURN(xml::Collection probe_coll,
                          GenerateItems(probe, pool));
  uint64_t probe_bytes = 0;
  for (const DocumentPtr& doc : probe_coll.docs()) {
    probe_bytes += xml::Serialize(*doc).size();
  }
  double avg = static_cast<double>(probe_bytes) / probe.doc_count;
  options.doc_count =
      static_cast<size_t>(static_cast<double>(target_bytes) / avg) + 1;
  return GenerateItems(options, pool);
}

Result<xml::Collection> GenerateStore(const StoreGenOptions& options,
                                      std::shared_ptr<xml::NamePool> pool) {
  if (options.sections.empty()) {
    return Status::InvalidArgument("no sections configured");
  }
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  Rng rng(options.seed);
  xml::Collection out(options.name, xml::VirtualStoreSchema(), "/Store",
                      xml::RepoKind::kSingleDocument);
  auto doc = std::make_shared<Document>(pool, options.name + "-doc");
  NodeId store = doc->CreateRoot("Store");

  NodeId sections = doc->AppendElement(store, "Sections");
  for (size_t i = 0; i < options.sections.size(); ++i) {
    NodeId section = doc->AppendElement(sections, "Section");
    NodeId code = doc->AppendElement(section, "Code");
    doc->AppendText(code, std::to_string(100 + i));
    NodeId name = doc->AppendElement(section, "Name");
    doc->AppendText(name, options.sections[i]);
  }

  NodeId items = doc->AppendElement(store, "Items");
  ItemShape shape;
  shape.large = options.large_items;
  shape.good_fraction = options.good_fraction;
  for (size_t i = 0; i < options.item_count; ++i) {
    const std::string& section =
        options.sections[rng.Zipf(options.sections.size(),
                                  options.section_skew)];
    BuildItem(doc.get(), items, i, section, shape, &rng);
  }

  NodeId employees = doc->AppendElement(store, "Employees");
  for (size_t i = 0; i < options.employee_count; ++i) {
    NodeId employee = doc->AppendElement(employees, "Employee");
    doc->AppendText(employee, rng.Sentence(2));
  }

  doc->SealLabels();
  PARTIX_RETURN_IF_ERROR(out.Add(std::move(doc)));
  return out;
}

Result<xml::Collection> GenerateStoreBySize(
    StoreGenOptions options, uint64_t target_bytes,
    std::shared_ptr<xml::NamePool> pool) {
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  StoreGenOptions probe = options;
  probe.item_count = 16;
  PARTIX_ASSIGN_OR_RETURN(xml::Collection probe_coll,
                          GenerateStore(probe, pool));
  uint64_t probe_bytes = xml::Serialize(*probe_coll.docs()[0]).size();
  double per_item =
      static_cast<double>(probe_bytes) / static_cast<double>(probe.item_count);
  options.item_count =
      static_cast<size_t>(static_cast<double>(target_bytes) / per_item) + 1;
  return GenerateStore(options, pool);
}

}  // namespace partix::gen
