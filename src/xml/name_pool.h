#ifndef PARTIX_XML_NAME_POOL_H_
#define PARTIX_XML_NAME_POOL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace partix::xml {

/// Identifier of an interned element/attribute name. Name identity is
/// pool-wide, so two nodes (possibly in different documents sharing the
/// pool) have equal names iff their NameIds are equal.
using NameId = uint32_t;

/// Interns element and attribute names so that node labels are one 32-bit
/// comparison instead of a string compare. A pool is typically shared by
/// every document of a database.
///
/// Thread-safe: Intern takes the writer lock (with a reader-locked fast
/// path for already-interned names), Find/Get/size take reader locks.
/// Concurrent morsel workers constructing elements and parsing documents
/// may therefore intern against one shared pool without external
/// synchronization.
class NamePool {
 public:
  NamePool() = default;
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;

  /// Returns the id for `name`, interning it if new.
  NameId Intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  std::optional<NameId> Find(std::string_view name) const;

  /// Returns the name for `id`. Pre: id < size(). The returned view stays
  /// valid for the pool's lifetime (names are never removed and their
  /// storage is address-stable).
  std::string_view Get(NameId id) const;

  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  // deque: element addresses are stable, so the string_view keys in
  // `index_` (and views handed out by Get) remain valid as the pool grows.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, NameId> index_;
};

}  // namespace partix::xml

#endif  // PARTIX_XML_NAME_POOL_H_
