#ifndef PARTIX_XML_PARSER_H_
#define PARTIX_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/document.h"

namespace partix::xml {

/// Parses an XML document from `input` into a Document using `pool` for
/// name interning.
///
/// Supported: the XML declaration, elements, attributes (single or double
/// quoted), character data, CDATA sections, comments, processing
/// instructions (skipped), the five predefined entities and decimal/hex
/// character references. DOCTYPE declarations are skipped without being
/// processed. Whitespace-only text between elements is dropped (the PartiX
/// data model has no mixed content); any other text adjacent to element
/// siblings is a well-formedness error under this data model.
///
/// Returns kParseError with a line/column-annotated message on malformed
/// input.
Result<std::shared_ptr<Document>> ParseXml(std::shared_ptr<NamePool> pool,
                                           std::string doc_name,
                                           std::string_view input);

}  // namespace partix::xml

#endif  // PARTIX_XML_PARSER_H_
