#ifndef PARTIX_XML_SERIALIZER_H_
#define PARTIX_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"

namespace partix::xml {

/// Options controlling XML serialization.
struct SerializeOptions {
  /// Emit `<?xml version="1.0"?>` first.
  bool declaration = false;
  /// Pretty-print with 2-space indentation; otherwise compact output.
  bool indent = false;
};

/// Serializes the whole document.
std::string Serialize(const Document& doc, const SerializeOptions& options =
                                               SerializeOptions());

/// Serializes the subtree rooted at `node`.
std::string SerializeSubtree(const Document& doc, NodeId node,
                             const SerializeOptions& options =
                                 SerializeOptions());

/// Appends the subtree's serialization to `*out` without an intermediate
/// string — the allocation-free form the streaming result path uses.
/// Compact output only (indentation anchors on an empty buffer, which an
/// append target does not guarantee).
void SerializeSubtreeInto(const Document& doc, NodeId node, std::string* out);

}  // namespace partix::xml

#endif  // PARTIX_XML_SERIALIZER_H_
