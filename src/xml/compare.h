#ifndef PARTIX_XML_COMPARE_H_
#define PARTIX_XML_COMPARE_H_

#include <string>

#include "xml/document.h"

namespace partix::xml {

/// Deep structural equality of two subtrees: same node kinds, labels,
/// values, and child order. Attribute order is significant (the PartiX
/// builders always emit attributes in a deterministic order).
bool SubtreesEqual(const Document& a, NodeId na, const Document& b,
                   NodeId nb);

/// Deep equality of two documents' content (names of the documents are not
/// compared).
bool DocumentsEqual(const Document& a, const Document& b);

/// If the subtrees differ, returns a human-readable description of the
/// first difference found (for test diagnostics); empty string when equal.
std::string ExplainDifference(const Document& a, NodeId na,
                              const Document& b, NodeId nb);

}  // namespace partix::xml

#endif  // PARTIX_XML_COMPARE_H_
