#ifndef PARTIX_XML_SCHEMA_H_
#define PARTIX_XML_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"

namespace partix::xml {

/// Occurrence constraint of a child element within its parent type.
/// `max == kUnbounded` means "1..n"-style unbounded cardinality.
struct ChildSpec {
  static constexpr int kUnbounded = -1;

  std::string type_name;
  int min = 1;
  int max = 1;
};

/// A named element type: which children it may have (with cardinalities)
/// and whether it carries simple (text) content. In the PartiX model
/// element names correspond to names of data types (paper §3.1), so the
/// type name doubles as the element label.
struct ElementType {
  std::string name;
  std::vector<ChildSpec> children;
  bool has_text = false;
};

/// A schema S: a set of element types. Documents are validated against a
/// root type; Δ satisfies τ iff its tree derives from the grammar S with
/// ℓ(rootΔ) → τ.
class Schema {
 public:
  Schema() = default;

  /// Registers `type`. Replaces any previous type with the same name.
  void AddType(ElementType type);

  /// Returns the type named `name`, or nullptr.
  const ElementType* FindType(const std::string& name) const;

  /// Checks that `doc` satisfies `root_type`: the root label matches, every
  /// element's children are declared with cardinalities respected, and text
  /// content appears only where declared.
  Status Validate(const Document& doc, const std::string& root_type) const;

  /// Names of all registered types.
  std::vector<std::string> TypeNames() const;

 private:
  Status ValidateElement(const Document& doc, NodeId node,
                         const ElementType& type) const;

  std::map<std::string, ElementType> types_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Builds the `Svirtual_store` schema of the paper (Fig. 1a): Store with
/// Sections, Items (Item: Code, Name, Description, Section, Release,
/// Characteristics 0..n, PictureList 0..1 with Picture 1..n, PricesHistory
/// 0..1 with PriceHistory 1..n) and Employees.
SchemaPtr VirtualStoreSchema();

/// Builds the XBench-style article schema used in the vertical
/// fragmentation experiment: article = prolog (title, authors, date,
/// keywords), body (sections of paragraphs), epilog (references,
/// acknowledgements).
SchemaPtr XBenchArticleSchema();

}  // namespace partix::xml

#endif  // PARTIX_XML_SCHEMA_H_
