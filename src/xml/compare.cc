#include "xml/compare.h"

namespace partix::xml {

bool SubtreesEqual(const Document& a, NodeId na, const Document& b,
                   NodeId nb) {
  if (a.kind(na) != b.kind(nb)) return false;
  switch (a.kind(na)) {
    case NodeKind::kText:
      return a.value(na) == b.value(nb);
    case NodeKind::kAttribute:
      return a.name(na) == b.name(nb) && a.value(na) == b.value(nb);
    case NodeKind::kElement:
      break;
  }
  if (a.name(na) != b.name(nb)) return false;
  NodeId ca = a.first_child(na);
  NodeId cb = b.first_child(nb);
  while (ca != kNullNode && cb != kNullNode) {
    if (!SubtreesEqual(a, ca, b, cb)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kNullNode && cb == kNullNode;
}

bool DocumentsEqual(const Document& a, const Document& b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty();
  return SubtreesEqual(a, a.root(), b, b.root());
}

std::string ExplainDifference(const Document& a, NodeId na,
                              const Document& b, NodeId nb) {
  if (a.kind(na) != b.kind(nb)) {
    return "node kind mismatch at a:" + std::to_string(na) +
           " b:" + std::to_string(nb);
  }
  if (a.kind(na) != NodeKind::kElement) {
    if (a.kind(na) == NodeKind::kAttribute && a.name(na) != b.name(nb)) {
      return "attribute name mismatch: " + std::string(a.name(na)) +
             " vs " + std::string(b.name(nb));
    }
    if (a.value(na) != b.value(nb)) {
      return "value mismatch: '" + std::string(a.value(na)) + "' vs '" +
             std::string(b.value(nb)) + "'";
    }
    return "";
  }
  if (a.name(na) != b.name(nb)) {
    return "element name mismatch: <" + std::string(a.name(na)) + "> vs <" +
           std::string(b.name(nb)) + ">";
  }
  NodeId ca = a.first_child(na);
  NodeId cb = b.first_child(nb);
  while (ca != kNullNode && cb != kNullNode) {
    std::string diff = ExplainDifference(a, ca, b, cb);
    if (!diff.empty()) return diff;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  if (ca != kNullNode) {
    return "extra child under <" + std::string(a.name(na)) +
           "> in first document";
  }
  if (cb != kNullNode) {
    return "extra child under <" + std::string(b.name(nb)) +
           "> in second document";
  }
  return "";
}

}  // namespace partix::xml
