#ifndef PARTIX_XML_DOCUMENT_H_
#define PARTIX_XML_DOCUMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "memory/arena.h"
#include "xml/name_pool.h"

namespace partix::xml {

/// Index of a node within its document's arena. Node ids are assigned in
/// creation order; for documents built top-down (parser, generators,
/// projection) this coincides with document (pre-) order.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNullNode = 0xFFFFFFFFu;

/// Sentinel for the virtual *document node* that parents the root element
/// (what collection()/doc() return in XQuery). Only the query layer uses
/// it; Document navigation APIs never accept it.
inline constexpr NodeId kDocumentNode = 0xFFFFFFFEu;

/// Node kinds of the PartiX data model (paper §3.1): an XML data tree has
/// element nodes (labels in L), attribute nodes (labels in A), and leaf
/// value nodes (values in D). Mixed content is not supported: a text node
/// has no siblings.
enum class NodeKind : uint8_t {
  kElement = 0,
  kAttribute = 1,
  kText = 2,
};

/// Structural label of a node in the XISS/R interval scheme. Labels are a
/// pure function of document structure, so re-parsing a serialized document
/// always reproduces them:
///
///   descendant(a, b)  iff  pre(a) < pre(b) && post(b) < post(a)
///                     iff  pre(a) < pre(b) <= sub_max(a)
///   child(a, b)       iff  descendant(a, b) && level(b) == level(a) + 1
///   following(a, b)   iff  pre(b) > pre(a) && post(b) > post(a)
///
/// Because descendants occupy the contiguous preorder interval
/// (pre, sub_max], axis steps become binary-searchable range scans over
/// per-name sorted preorder lists instead of subtree walks.
struct NodeLabel {
  uint32_t pre = 0;      ///< preorder rank, 0-based; the root has pre 0
  uint32_t post = 0;     ///< postorder rank, 0-based
  uint32_t sub_max = 0;  ///< largest preorder rank inside the subtree
  uint32_t level = 0;    ///< depth; the root is level 1
};

/// An XML document: an arena-backed ordered labeled tree Δ = ⟨t, ℓ, Ψ⟩.
///
/// Nodes are created top-down via the Append* builder methods and addressed
/// by NodeId. Attribute nodes live in the child list of their owner element
/// (by convention before any element/text children) and carry their value
/// inline, which matches the paper's "attribute node with a single value
/// child" up to one indirection.
///
/// A document can optionally track *origins*: the id of the corresponding
/// node in a source document. Vertical fragmentation uses origins as the
/// reconstruction IDs the paper requires ("we keep an ID in each vertical
/// fragment for reconstruction purposes").
class Document {
 public:
  /// Creates an empty document. `name` identifies the document within its
  /// collection (the "document URI"). Text payloads land in an arena
  /// drawn from the process-wide ArenaPool (or, when document-arena
  /// pooling is disabled, in per-text direct allocations — the legacy
  /// malloc behavior). See memory::SetDocumentArenaPooling.
  Document(std::shared_ptr<NamePool> pool, std::string name);

  /// Like above but with an explicit arena pool (nullptr = direct
  /// mode). Tests and benches pin the mode per document with this.
  Document(std::shared_ptr<NamePool> pool, std::string name,
           memory::ArenaPool* arena_pool);

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  // ---- Builder API (top-down construction) ----

  /// Creates the root element. Pre: document is empty.
  NodeId CreateRoot(std::string_view element_name);

  /// Appends an element child under `parent`. Pre: parent is an element.
  NodeId AppendElement(NodeId parent, std::string_view name);

  /// Appends an attribute to `parent`. Pre: parent is an element.
  NodeId AppendAttribute(NodeId parent, std::string_view name,
                         std::string_view value);

  /// Appends a text child under `parent`. Pre: parent is an element.
  NodeId AppendText(NodeId parent, std::string_view value);

  /// Capacity hint from the byte size of the serialized input; the
  /// parser calls this once so node/text vectors and the text arena
  /// grow O(1) times instead of O(log n).
  void ReserveForInputSize(size_t input_bytes);

  /// Copies the subtree rooted at `src_root` in `src` under `dst_parent`
  /// (or as this document's root if `dst_parent` is kNullNode). `skip`
  /// (optional) is consulted for every source node; returning true prunes
  /// that node and its subtree. Origin tracking, if enabled, records each
  /// copied node's source id. Returns the id of the copied root, or
  /// kNullNode if the root itself was skipped.
  NodeId CopySubtree(const Document& src, NodeId src_root, NodeId dst_parent,
                     const std::function<bool(NodeId)>& skip = nullptr);

  // ---- Navigation ----

  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return nodes_.empty() ? kNullNode : 0; }
  size_t node_count() const { return nodes_.size(); }

  NodeKind kind(NodeId n) const { return nodes_[n].kind; }
  NameId name_id(NodeId n) const { return nodes_[n].name; }
  std::string_view name(NodeId n) const { return pool_->Get(nodes_[n].name); }

  /// Value of a text or attribute node. Pre: kind is kText or kAttribute.
  std::string_view value(NodeId n) const {
    const TextRef& t = texts_[nodes_[n].value];
    return std::string_view(t.data, t.size);
  }

  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  NodeId first_child(NodeId n) const { return nodes_[n].first_child; }
  NodeId next_sibling(NodeId n) const { return nodes_[n].next_sibling; }

  /// Element children of `n` (attributes and text excluded).
  std::vector<NodeId> ElementChildren(NodeId n) const;

  /// Element children of `n` with the given name.
  std::vector<NodeId> ElementChildren(NodeId n, NameId name) const;

  /// Attribute nodes of `n`.
  std::vector<NodeId> Attributes(NodeId n) const;

  /// The attribute of `n` named `name`, or kNullNode.
  NodeId FindAttribute(NodeId n, NameId name) const;

  /// Concatenation of all descendant text values (the typed string value of
  /// the node). For attribute/text nodes this is just their value.
  std::string StringValue(NodeId n) const;

  /// True if `n` has no element or text children ("simple content").
  bool HasSimpleContent(NodeId n) const;

  /// Visits `n` and all descendants in document order.
  void VisitSubtree(NodeId n, const std::function<void(NodeId)>& fn) const;

  // ---- Structural labels (XISS/R intervals + Dewey prefixes) ----

  /// Computes (pre, post, sub_max, level) and Dewey-prefix labels for every
  /// node, plus the per-name sorted preorder occurrence lists that back
  /// label-range axis joins. Called by the parser after a successful parse
  /// and by long-lived builders (generators, reconstruction) before the
  /// document is frozen behind a DocumentPtr; sealing after that point
  /// would race with concurrent readers. Idempotent; any later builder
  /// mutation discards the labels.
  void SealLabels();

  /// True once SealLabels() has run (and no mutation followed). Query
  /// layers must fall back to navigation when labels are absent.
  bool has_labels() const { return !labels_.empty(); }

  /// Structural label of `n`. Pre: has_labels().
  const NodeLabel& label(NodeId n) const { return labels_[n]; }

  /// Node with preorder rank `pre`. Pre: has_labels() && pre < node_count().
  NodeId NodeAtPre(uint32_t pre) const { return pre_to_node_[pre]; }

  /// Dewey prefix label of `n` as (components, length); component k is the
  /// 1-based ordinal of the k-th step on the root path. The label of an
  /// ancestor is a strict prefix of the label of each of its descendants,
  /// which is what lets fragment reconstruction merge by label instead of
  /// joining by value. Pre: has_labels().
  const uint32_t* dewey(NodeId n, uint32_t* length) const {
    *length = labels_[n].level;
    return dewey_buf_.data() + dewey_off_[n];
  }

  /// Dewey label rendered as "1.2.3" (diagnostics, tests, persistence
  /// checksums). Pre: has_labels().
  std::string DeweyString(NodeId n) const;

  /// Sorted preorder ranks of element/attribute nodes named `name`, or
  /// nullptr if the name does not occur. Pre: has_labels().
  const std::vector<uint32_t>* NameOccurrences(NameId name) const;

  /// True if `anc` is a strict ancestor of `desc`. O(1) via labels when
  /// sealed, parent-chain walk otherwise.
  bool IsAncestor(NodeId anc, NodeId desc) const;

  // ---- Identity / metadata ----

  const std::string& doc_name() const { return doc_name_; }
  void set_doc_name(std::string name) { doc_name_ = std::move(name); }

  /// Out-of-band document properties (like eXist's resource metadata):
  /// key/value strings attached to the document, not part of its content.
  /// PartiX ships vertical-fragment reconstruction IDs this way so they
  /// never appear in query results. Stores persist them alongside the
  /// serialized XML.
  void SetMetadata(const std::string& key, std::string value) {
    metadata_[key] = std::move(value);
  }
  const std::map<std::string, std::string>& metadata() const {
    return metadata_;
  }
  /// Returns the value for `key`, or an empty string.
  std::string GetMetadata(const std::string& key) const {
    auto it = metadata_.find(key);
    return it == metadata_.end() ? std::string() : it->second;
  }

  const std::shared_ptr<NamePool>& pool() const { return pool_; }

  /// Rough in-memory footprint in bytes (nodes + text payloads).
  size_t ApproxBytes() const;

  // ---- Origin tracking (vertical fragmentation reconstruction IDs) ----

  /// Enables origin tracking; `source_doc` names the document the origins
  /// refer to.
  void EnableOriginTracking(std::string source_doc);

  bool origin_tracking() const { return origin_tracking_; }
  const std::string& origin_doc() const { return origin_doc_; }

  /// Records that node `n` came from node `src` of the origin document.
  void SetOrigin(NodeId n, NodeId src);

  /// Origin id of `n` (kNullNode if untracked).
  NodeId origin(NodeId n) const {
    return origin_tracking_ && n < origins_.size() ? origins_[n] : kNullNode;
  }

  /// Marks node `n` as *scaffolding*: replicated container structure (e.g.
  /// the shared root of a FragMode2 hybrid fragment) that is not fragment
  /// data. Scaffold nodes are exempt from disjointness and merged during
  /// reconstruction. Pre: origin tracking enabled.
  void SetScaffold(NodeId n, bool scaffold);
  bool scaffold(NodeId n) const {
    return origin_tracking_ && n < scaffold_.size() && scaffold_[n];
  }

  /// Scaffolding for reconstruction: the strict ancestors of this
  /// fragment's projected root in the source document, as (source node id,
  /// element name) pairs in root-to-parent order. Ancestors are *not* part
  /// of the fragment's data; reconstruction re-creates them when no other
  /// fragment holds them.
  void SetOriginAncestors(std::vector<std::pair<NodeId, std::string>> a) {
    origin_ancestors_ = std::move(a);
  }
  const std::vector<std::pair<NodeId, std::string>>& origin_ancestors()
      const {
    return origin_ancestors_;
  }

 private:
  struct NodeData {
    NodeKind kind;
    NameId name;          // element/attribute label; 0 for text nodes
    uint32_t value;       // index into texts_ for text/attribute nodes
    NodeId parent;
    NodeId first_child;
    NodeId last_child;
    NodeId next_sibling;
  };

  /// A text payload in the document's arena. 16 bytes vs. the 32-byte
  /// std::string header this replaced; the characters live in pooled
  /// arena chunks recycled across parses.
  struct TextRef {
    const char* data = nullptr;
    uint32_t size = 0;
  };

  NodeId NewNode(NodeKind kind, NameId name, uint32_t value, NodeId parent);
  uint32_t AddText(std::string_view value);
  void ClearLabels();

  std::shared_ptr<NamePool> pool_;
  std::string doc_name_;
  std::map<std::string, std::string> metadata_;
  memory::Arena arena_;  // text payload storage; outlives texts_ refs
  std::vector<NodeData> nodes_;
  std::vector<TextRef> texts_;

  // Structural labels, indexed by NodeId; empty until SealLabels(). The
  // Dewey component of node n lives at dewey_buf_[dewey_off_[n]] with
  // length label(n).level.
  std::vector<NodeLabel> labels_;
  std::vector<NodeId> pre_to_node_;
  std::vector<uint32_t> dewey_off_;
  std::vector<uint32_t> dewey_buf_;
  std::unordered_map<NameId, std::vector<uint32_t>> name_occ_;

  bool origin_tracking_ = false;
  std::string origin_doc_;
  std::vector<NodeId> origins_;
  std::vector<bool> scaffold_;
  std::vector<std::pair<NodeId, std::string>> origin_ancestors_;
};

/// Shared ownership alias used throughout the engine: documents are
/// immutable once built and freely shared between collections, fragments,
/// caches, and query results.
using DocumentPtr = std::shared_ptr<const Document>;

}  // namespace partix::xml

#endif  // PARTIX_XML_DOCUMENT_H_
