#include "xml/parser.h"

#include <cctype>
#include <cstdio>

#include "common/strings.h"

namespace partix::xml {

namespace {

/// Recursive-descent XML parser over a string_view. Tracks line/column for
/// error messages. Enforces the PartiX data model: no mixed content.
class Parser {
 public:
  Parser(std::shared_ptr<NamePool> pool, std::string doc_name,
         std::string_view input)
      : input_(input),
        doc_(std::make_shared<Document>(std::move(pool),
                                        std::move(doc_name))) {}

  Result<std::shared_ptr<Document>> Parse() {
    // One up-front capacity hint keeps node/text growth out of the
    // per-element path; the text arena recycles pooled chunks anyway.
    doc_->ReserveForInputSize(input_.size());
    SkipProlog();
    if (AtEnd()) return Error("document has no root element");
    PARTIX_RETURN_IF_ERROR(ParseElement(kNullNode));
    SkipMisc();
    if (!AtEnd()) return Error("content after root element");
    // Structural labels are assigned at parse time so every stored or
    // transferred document carries them before it is shared across threads.
    doc_->SealLabels();
    return doc_;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool ConsumeSeq(std::string_view seq) {
    if (input_.substr(pos_, seq.size()) != seq) return false;
    for (size_t i = 0; i < seq.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string_view msg) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " at line %zu, column %zu", line_, col_);
    return Status::ParseError(std::string(msg) + buf + " in document '" +
                              doc_->doc_name() + "'");
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  /// Skips XML declaration, DOCTYPE, comments, PIs, whitespace.
  void SkipProlog() {
    while (!AtEnd()) {
      SkipWhitespace();
      if (ConsumeSeq("<?")) {
        while (!AtEnd() && !ConsumeSeq("?>")) Advance();
      } else if (ConsumeSeq("<!--")) {
        while (!AtEnd() && !ConsumeSeq("-->")) Advance();
      } else if (ConsumeSeq("<!DOCTYPE")) {
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          if (Peek() == '<') ++depth;
          if (Peek() == '>') --depth;
          Advance();
        }
      } else {
        break;
      }
    }
  }

  void SkipMisc() {
    while (!AtEnd()) {
      SkipWhitespace();
      if (ConsumeSeq("<!--")) {
        while (!AtEnd() && !ConsumeSeq("-->")) Advance();
      } else if (ConsumeSeq("<?")) {
        while (!AtEnd() && !ConsumeSeq("?>")) Advance();
      } else {
        break;
      }
    }
  }

  /// The returned view aliases input_ and stays valid for the parse.
  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return input_.substr(start, pos_ - start);
  }

  /// Decodes entity and character references in raw character data.
  /// Returns `raw` itself when it contains no references (the common
  /// case — zero copies), otherwise a view of the reused decode scratch,
  /// valid until the next DecodeText call. Callers copy the bytes into
  /// the document immediately.
  Result<std::string_view> DecodeText(std::string_view raw) {
    if (raw.find('&') == std::string_view::npos) return raw;
    std::string& out = decode_scratch_;
    out.clear();
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        int64_t code = 0;
        bool ok = false;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = 0;
          ok = ent.size() > 2;
          for (size_t k = 2; k < ent.size() && ok; ++k) {
            char c = ent[k];
            int digit;
            if (c >= '0' && c <= '9') {
              digit = c - '0';
            } else if (c >= 'a' && c <= 'f') {
              digit = c - 'a' + 10;
            } else if (c >= 'A' && c <= 'F') {
              digit = c - 'A' + 10;
            } else {
              ok = false;
              break;
            }
            code = code * 16 + digit;
          }
        } else {
          ok = ParseInt64(ent.substr(1), &code);
        }
        if (!ok || code <= 0 || code > 0x10FFFF) {
          return Error("bad character reference");
        }
        AppendUtf8(&out, static_cast<uint32_t>(code));
      } else {
        return Error("unknown entity '&" + std::string(ent) + ";'");
      }
      i = semi + 1;
    }
    return std::string_view(out);
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseAttributes(NodeId element) {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::Ok();
      PARTIX_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' after attribute name");
      SkipWhitespace();
      char quote = AtEnd() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') return Error("'<' in attribute value");
        Advance();
      }
      if (AtEnd()) return Error("unterminated attribute value");
      std::string_view raw = input_.substr(start, pos_ - start);
      Advance();  // closing quote
      PARTIX_ASSIGN_OR_RETURN(std::string_view decoded, DecodeText(raw));
      doc_->AppendAttribute(element, attr_name, decoded);
    }
  }

  Status ParseElement(NodeId parent) {
    if (depth_ >= kMaxDepth) {
      return Error("document nesting exceeds the supported depth");
    }
    ++depth_;
    Status status = ParseElementInner(parent);
    --depth_;
    return status;
  }

  Status ParseElementInner(NodeId parent) {
    if (!Consume('<')) return Error("expected '<'");
    PARTIX_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    NodeId element = parent == kNullNode ? doc_->CreateRoot(name)
                                         : doc_->AppendElement(parent, name);
    PARTIX_RETURN_IF_ERROR(ParseAttributes(element));
    if (Consume('/')) {
      if (!Consume('>')) return Error("expected '>' after '/'");
      return Status::Ok();
    }
    if (!Consume('>')) return Error("expected '>' to close start tag");
    return ParseContent(element, name);
  }

  Status ParseContent(NodeId element, std::string_view name) {
    bool saw_element_child = false;
    bool saw_text_child = false;
    while (true) {
      if (AtEnd()) {
        return Error("unexpected end of input in <" + std::string(name) +
                     ">");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          // End tag.
          Advance();
          Advance();
          PARTIX_ASSIGN_OR_RETURN(std::string_view end_name, ParseName());
          if (end_name != name) {
            return Error("mismatched end tag </" + std::string(end_name) +
                         ">, expected </" + std::string(name) + ">");
          }
          SkipWhitespace();
          if (!Consume('>')) return Error("expected '>' in end tag");
          return Status::Ok();
        }
        if (ConsumeSeq("<!--")) {
          bool closed = false;
          while (!AtEnd()) {
            if (ConsumeSeq("-->")) {
              closed = true;
              break;
            }
            Advance();
          }
          if (!closed) return Error("unterminated comment");
          continue;
        }
        if (ConsumeSeq("<![CDATA[")) {
          size_t start = pos_;
          size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          std::string_view data = input_.substr(start, end - start);
          while (pos_ < end + 3) Advance();
          if (saw_element_child) {
            return Error("mixed content is not supported");
          }
          doc_->AppendText(element, data);
          saw_text_child = true;
          continue;
        }
        if (ConsumeSeq("<?")) {
          while (!AtEnd() && !ConsumeSeq("?>")) Advance();
          continue;
        }
        // Child element.
        if (saw_text_child) return Error("mixed content is not supported");
        saw_element_child = true;
        PARTIX_RETURN_IF_ERROR(ParseElement(element));
        continue;
      }
      // Character data up to next '<'.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      std::string_view raw = input_.substr(start, pos_ - start);
      if (StripWhitespace(raw).empty()) continue;  // ignorable whitespace
      if (saw_element_child) return Error("mixed content is not supported");
      PARTIX_ASSIGN_OR_RETURN(std::string_view decoded, DecodeText(raw));
      doc_->AppendText(element, decoded);
      saw_text_child = true;
    }
  }

  /// Documents deeper than this are rejected instead of risking stack
  /// exhaustion in the recursive-descent parser and the recursive tree
  /// walks downstream.
  static constexpr size_t kMaxDepth = 512;

  std::string_view input_;
  std::shared_ptr<Document> doc_;
  /// Reused across DecodeText calls; one allocation serves every
  /// reference-bearing text in the document.
  std::string decode_scratch_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  size_t depth_ = 0;
};

}  // namespace

Result<std::shared_ptr<Document>> ParseXml(std::shared_ptr<NamePool> pool,
                                           std::string doc_name,
                                           std::string_view input) {
  Parser parser(std::move(pool), std::move(doc_name), input);
  return parser.Parse();
}

}  // namespace partix::xml
