#include "xml/document.h"

#include <cassert>

namespace partix::xml {

Document::Document(std::shared_ptr<NamePool> pool, std::string name)
    : Document(std::move(pool), std::move(name),
               memory::DocumentArenaPoolOrNull()) {}

Document::Document(std::shared_ptr<NamePool> pool, std::string name,
                   memory::ArenaPool* arena_pool)
    : pool_(std::move(pool)),
      doc_name_(std::move(name)),
      arena_(arena_pool) {
  assert(pool_ != nullptr);
}

uint32_t Document::AddText(std::string_view value) {
  uint32_t value_idx = static_cast<uint32_t>(texts_.size());
  std::string_view stored = arena_.CopyString(value);
  texts_.push_back(TextRef{stored.data(), static_cast<uint32_t>(stored.size())});
  return value_idx;
}

void Document::ReserveForInputSize(size_t input_bytes) {
  // A serialized node ("<a>v</a>") runs ~20-60 bytes; reserve
  // conservatively so over-reservation never dominates small inputs.
  size_t node_hint = input_bytes / 32 + 8;
  nodes_.reserve(node_hint);
  texts_.reserve(node_hint / 2 + 4);
}

NodeId Document::NewNode(NodeKind kind, NameId name, uint32_t value,
                         NodeId parent) {
  if (!labels_.empty()) ClearLabels();
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeData{kind, name, value, parent, kNullNode, kNullNode,
                            kNullNode});
  if (parent != kNullNode) {
    NodeData& p = nodes_[parent];
    if (p.first_child == kNullNode) {
      p.first_child = id;
    } else {
      nodes_[p.last_child].next_sibling = id;
    }
    p.last_child = id;
  }
  if (origin_tracking_) origins_.push_back(kNullNode);
  return id;
}

NodeId Document::CreateRoot(std::string_view element_name) {
  assert(nodes_.empty());
  return NewNode(NodeKind::kElement, pool_->Intern(element_name), 0,
                 kNullNode);
}

NodeId Document::AppendElement(NodeId parent, std::string_view name) {
  assert(parent < nodes_.size() &&
         nodes_[parent].kind == NodeKind::kElement);
  return NewNode(NodeKind::kElement, pool_->Intern(name), 0, parent);
}

NodeId Document::AppendAttribute(NodeId parent, std::string_view name,
                                 std::string_view value) {
  assert(parent < nodes_.size() &&
         nodes_[parent].kind == NodeKind::kElement);
  return NewNode(NodeKind::kAttribute, pool_->Intern(name), AddText(value),
                 parent);
}

NodeId Document::AppendText(NodeId parent, std::string_view value) {
  assert(parent < nodes_.size() &&
         nodes_[parent].kind == NodeKind::kElement);
  return NewNode(NodeKind::kText, 0, AddText(value), parent);
}

NodeId Document::CopySubtree(const Document& src, NodeId src_root,
                             NodeId dst_parent,
                             const std::function<bool(NodeId)>& skip) {
  if (skip && skip(src_root)) return kNullNode;
  NodeId copied;
  switch (src.kind(src_root)) {
    case NodeKind::kElement:
      copied = dst_parent == kNullNode
                   ? CreateRoot(src.name(src_root))
                   : AppendElement(dst_parent, src.name(src_root));
      break;
    case NodeKind::kAttribute:
      assert(dst_parent != kNullNode);
      copied = AppendAttribute(dst_parent, src.name(src_root),
                               src.value(src_root));
      break;
    case NodeKind::kText:
      assert(dst_parent != kNullNode);
      copied = AppendText(dst_parent, src.value(src_root));
      break;
    default:
      return kNullNode;
  }
  if (origin_tracking_) SetOrigin(copied, src_root);
  if (src.kind(src_root) == NodeKind::kElement) {
    for (NodeId c = src.first_child(src_root); c != kNullNode;
         c = src.next_sibling(c)) {
      CopySubtree(src, c, copied, skip);
    }
  }
  return copied;
}

std::vector<NodeId> Document::ElementChildren(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kElement) out.push_back(c);
  }
  return out;
}

std::vector<NodeId> Document::ElementChildren(NodeId n, NameId name) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kElement && name_id(c) == name) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<NodeId> Document::Attributes(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kAttribute) out.push_back(c);
  }
  return out;
}

NodeId Document::FindAttribute(NodeId n, NameId name) const {
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kAttribute && name_id(c) == name) return c;
  }
  return kNullNode;
}

std::string Document::StringValue(NodeId n) const {
  if (kind(n) != NodeKind::kElement) return std::string(value(n));
  std::string out;
  VisitSubtree(n, [&](NodeId d) {
    if (kind(d) == NodeKind::kText) out.append(value(d));
  });
  return out;
}

bool Document::HasSimpleContent(NodeId n) const {
  if (kind(n) != NodeKind::kElement) return true;
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kElement) return false;
  }
  return true;
}

void Document::VisitSubtree(NodeId n,
                            const std::function<void(NodeId)>& fn) const {
  fn(n);
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    VisitSubtree(c, fn);
  }
}

size_t Document::ApproxBytes() const {
  // arena_.used_bytes() counts the text characters; it is identical in
  // pooled and direct mode, so cache eviction (which keys off this
  // figure) behaves the same with the pool on or off.
  size_t bytes = nodes_.size() * sizeof(NodeData);
  bytes += arena_.used_bytes() + texts_.size() * sizeof(TextRef);
  if (origin_tracking_) bytes += origins_.size() * sizeof(NodeId);
  if (!labels_.empty()) {
    bytes += labels_.size() * (sizeof(NodeLabel) + 2 * sizeof(uint32_t));
    bytes += dewey_buf_.size() * sizeof(uint32_t);
  }
  return bytes;
}

void Document::ClearLabels() {
  labels_.clear();
  pre_to_node_.clear();
  dewey_off_.clear();
  dewey_buf_.clear();
  name_occ_.clear();
}

void Document::SealLabels() {
  if (!labels_.empty() || nodes_.empty()) return;
  const size_t n = nodes_.size();
  labels_.resize(n);
  pre_to_node_.resize(n);
  dewey_off_.resize(n);

  // One iterative DFS assigns everything: pre/level/Dewey on entry,
  // post/sub_max on exit. An explicit stack keeps arbitrarily deep
  // reconstruction outputs safe (the parser caps depth, builders do not).
  struct Frame {
    NodeId node;
    NodeId next_child;   // next child to descend into
    uint32_t ordinal;    // 1-based ordinal of the next child
  };
  std::vector<Frame> stack;
  uint32_t next_pre = 0;
  uint32_t next_post = 0;

  auto enter = [&](NodeId id, uint32_t level, const Frame* parent_frame) {
    NodeLabel& l = labels_[id];
    l.pre = next_pre;
    l.level = level;
    pre_to_node_[next_pre] = id;
    ++next_pre;
    dewey_off_[id] = static_cast<uint32_t>(dewey_buf_.size());
    if (parent_frame != nullptr) {
      // Parent prefix + this node's sibling ordinal. Indexed copy: a range
      // insert from dewey_buf_ into itself is UB on reallocation.
      const uint32_t poff = dewey_off_[parent_frame->node];
      for (uint32_t i = 0; i + 1 < level; ++i) {
        dewey_buf_.push_back(dewey_buf_[poff + i]);
      }
      dewey_buf_.push_back(parent_frame->ordinal);
    } else {
      dewey_buf_.push_back(1);
    }
    if (nodes_[id].kind != NodeKind::kText) {
      name_occ_[nodes_[id].name].push_back(l.pre);  // pre order => sorted
    }
    stack.push_back(Frame{id, nodes_[id].first_child, 1});
  };

  enter(root(), 1, nullptr);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child != kNullNode) {
      NodeId child = top.next_child;
      top.next_child = nodes_[child].next_sibling;
      uint32_t level = labels_[top.node].level + 1;
      enter(child, level, &top);
      // `top` may dangle after enter() pushed; re-fetch next iteration.
      stack[stack.size() - 2].ordinal++;
    } else {
      NodeLabel& l = labels_[top.node];
      l.post = next_post++;
      l.sub_max = next_pre - 1;
      stack.pop_back();
    }
  }
}

std::string Document::DeweyString(NodeId n) const {
  uint32_t len = 0;
  const uint32_t* c = dewey(n, &len);
  std::string out;
  for (uint32_t i = 0; i < len; ++i) {
    if (i > 0) out.push_back('.');
    out.append(std::to_string(c[i]));
  }
  return out;
}

const std::vector<uint32_t>* Document::NameOccurrences(NameId name) const {
  auto it = name_occ_.find(name);
  return it == name_occ_.end() ? nullptr : &it->second;
}

bool Document::IsAncestor(NodeId anc, NodeId desc) const {
  if (anc == desc) return false;
  if (!labels_.empty()) {
    const NodeLabel& a = labels_[anc];
    const NodeLabel& d = labels_[desc];
    return a.pre < d.pre && d.pre <= a.sub_max;
  }
  for (NodeId p = parent(desc); p != kNullNode; p = parent(p)) {
    if (p == anc) return true;
  }
  return false;
}

void Document::EnableOriginTracking(std::string source_doc) {
  origin_tracking_ = true;
  origin_doc_ = std::move(source_doc);
  origins_.assign(nodes_.size(), kNullNode);
}

void Document::SetOrigin(NodeId n, NodeId src) {
  assert(origin_tracking_);
  if (n >= origins_.size()) origins_.resize(nodes_.size(), kNullNode);
  origins_[n] = src;
}

void Document::SetScaffold(NodeId n, bool scaffold) {
  assert(origin_tracking_);
  if (n >= scaffold_.size()) scaffold_.resize(nodes_.size(), false);
  scaffold_[n] = scaffold;
}

}  // namespace partix::xml
