#ifndef PARTIX_XML_COLLECTION_H_
#define PARTIX_XML_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xml/schema.h"

namespace partix::xml {

/// Repository kinds of the paper (§3.1 / XBench): a collection may be one
/// single large document (SD) or many documents (MD).
enum class RepoKind {
  kSingleDocument,
  kMultipleDocuments,
};

/// A homogeneous collection C := ⟨S, τ_root⟩ of XML documents: a set of
/// data trees all satisfying the same root type of schema S.
///
/// `root_path` records how instances relate to the schema (e.g. Citems :=
/// ⟨Svirtual_store, /Store/Items/Item⟩): the element type that roots each
/// document is the last step of the path.
class Collection {
 public:
  Collection() = default;
  Collection(std::string name, SchemaPtr schema, std::string root_path,
             RepoKind kind)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        root_path_(std::move(root_path)),
        kind_(kind) {}

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  const std::string& root_path() const { return root_path_; }
  RepoKind kind() const { return kind_; }

  /// The element type rooting each instance (last step of root_path).
  std::string RootType() const;

  /// Adds a document. For SD collections at most one document is allowed.
  Status Add(DocumentPtr doc);

  const std::vector<DocumentPtr>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Validates that the collection is homogeneous: every document satisfies
  /// the root type. No-op (OK) when the collection has no schema attached.
  Status ValidateHomogeneous() const;

  /// Total approximate in-memory bytes across documents.
  size_t ApproxBytes() const;

  /// Total node count across documents.
  size_t TotalNodes() const;

 private:
  std::string name_;
  SchemaPtr schema_;
  std::string root_path_;
  RepoKind kind_ = RepoKind::kMultipleDocuments;
  std::vector<DocumentPtr> docs_;
};

}  // namespace partix::xml

#endif  // PARTIX_XML_COLLECTION_H_
