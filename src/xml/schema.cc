#include "xml/schema.h"

#include <unordered_map>

namespace partix::xml {

void Schema::AddType(ElementType type) {
  types_[type.name] = std::move(type);
}

const ElementType* Schema::FindType(const std::string& name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

std::vector<std::string> Schema::TypeNames() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, type] : types_) out.push_back(name);
  return out;
}

Status Schema::Validate(const Document& doc,
                        const std::string& root_type) const {
  if (doc.empty()) {
    return Status::InvalidArgument("document '" + doc.doc_name() +
                                   "' is empty");
  }
  const ElementType* type = FindType(root_type);
  if (type == nullptr) {
    return Status::NotFound("schema has no type '" + root_type + "'");
  }
  if (doc.name(doc.root()) != root_type) {
    return Status::InvalidArgument(
        "document '" + doc.doc_name() + "' root is <" +
        std::string(doc.name(doc.root())) + ">, expected <" + root_type +
        ">");
  }
  return ValidateElement(doc, doc.root(), *type);
}

Status Schema::ValidateElement(const Document& doc, NodeId node,
                               const ElementType& type) const {
  std::unordered_map<std::string_view, int> counts;
  for (NodeId c = doc.first_child(node); c != kNullNode;
       c = doc.next_sibling(c)) {
    switch (doc.kind(c)) {
      case NodeKind::kText:
        if (!type.has_text) {
          return Status::InvalidArgument(
              "unexpected text content in <" + type.name + "> of document '" +
              doc.doc_name() + "'");
        }
        break;
      case NodeKind::kAttribute:
        // Attributes are unconstrained in this schema model.
        break;
      case NodeKind::kElement:
        counts[doc.name(c)] += 1;
        break;
    }
  }
  // Every present child must be declared; every declared child must respect
  // its cardinality.
  for (const auto& [child_name, count] : counts) {
    bool declared = false;
    for (const ChildSpec& spec : type.children) {
      if (spec.type_name == child_name) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Status::InvalidArgument(
          "undeclared child <" + std::string(child_name) + "> in <" +
          type.name + "> of document '" + doc.doc_name() + "'");
    }
  }
  for (const ChildSpec& spec : type.children) {
    int count = 0;
    auto it = counts.find(spec.type_name);
    if (it != counts.end()) count = it->second;
    if (count < spec.min ||
        (spec.max != ChildSpec::kUnbounded && count > spec.max)) {
      return Status::InvalidArgument(
          "cardinality violation for <" + spec.type_name + "> in <" +
          type.name + "> of document '" + doc.doc_name() + "': found " +
          std::to_string(count));
    }
  }
  // Recurse into element children.
  for (NodeId c = doc.first_child(node); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (doc.kind(c) != NodeKind::kElement) continue;
    const ElementType* child_type = FindType(std::string(doc.name(c)));
    if (child_type == nullptr) {
      return Status::NotFound("schema has no type '" +
                              std::string(doc.name(c)) + "'");
    }
    PARTIX_RETURN_IF_ERROR(ValidateElement(doc, c, *child_type));
  }
  return Status::Ok();
}

namespace {

ElementType Leaf(std::string name) {
  ElementType t;
  t.name = std::move(name);
  t.has_text = true;
  return t;
}

ElementType Composite(std::string name, std::vector<ChildSpec> children) {
  ElementType t;
  t.name = std::move(name);
  t.children = std::move(children);
  return t;
}

constexpr int kUnbounded = ChildSpec::kUnbounded;

}  // namespace

SchemaPtr VirtualStoreSchema() {
  auto schema = std::make_shared<Schema>();
  // Store
  schema->AddType(Composite("Store", {{"Sections", 1, 1},
                                      {"Items", 1, 1},
                                      {"Employees", 1, 1}}));
  schema->AddType(Composite("Sections", {{"Section", 1, kUnbounded}}));
  schema->AddType(Composite("Employees", {{"Employee", 1, kUnbounded}}));
  schema->AddType(Leaf("Employee"));
  schema->AddType(Composite("Items", {{"Item", 1, kUnbounded}}));
  // Section appears both as a child of Sections (composite: Code, Name) and
  // as a leaf inside Item. Our single-namespace type model cannot give the
  // same element name two shapes, so the Sections/Section entry is modeled
  // with optional Code/Name children plus text, covering both uses.
  {
    ElementType section;
    section.name = "Section";
    section.children = {{"Code", 0, 1}, {"Name", 0, 1}};
    section.has_text = true;
    schema->AddType(std::move(section));
  }
  schema->AddType(
      Composite("Item", {{"Code", 1, 1},
                         {"Name", 1, 1},
                         {"Description", 1, 1},
                         {"Section", 1, 1},
                         {"Release", 1, 1},
                         {"Characteristics", 0, kUnbounded},
                         {"PictureList", 0, 1},
                         {"PricesHistory", 0, 1}}));
  schema->AddType(Leaf("Code"));
  schema->AddType(Leaf("Name"));
  schema->AddType(Leaf("Description"));
  schema->AddType(Leaf("Release"));
  schema->AddType(Leaf("Characteristics"));
  schema->AddType(Composite("PictureList", {{"Picture", 1, kUnbounded}}));
  schema->AddType(
      Composite("Picture", {{"Name", 1, 1},
                            {"Description", 1, 1},
                            {"ModificationDate", 1, 1},
                            {"OriginalPath", 1, 1},
                            {"ThumbPath", 1, 1}}));
  schema->AddType(Leaf("ModificationDate"));
  schema->AddType(Leaf("OriginalPath"));
  schema->AddType(Leaf("ThumbPath"));
  schema->AddType(
      Composite("PricesHistory", {{"PriceHistory", 1, kUnbounded}}));
  schema->AddType(Composite("PriceHistory", {{"Price", 1, 1},
                                             {"ModificationDate", 1, 1}}));
  schema->AddType(Leaf("Price"));
  return schema;
}

SchemaPtr XBenchArticleSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddType(Composite("article", {{"prolog", 1, 1},
                                        {"body", 1, 1},
                                        {"epilog", 1, 1}}));
  schema->AddType(Composite("prolog", {{"title", 1, 1},
                                       {"authors", 1, 1},
                                       {"dateline", 1, 1},
                                       {"genre", 1, 1},
                                       {"keywords", 0, 1}}));
  schema->AddType(Leaf("title"));
  schema->AddType(Composite("authors", {{"author", 1, kUnbounded}}));
  schema->AddType(Composite("author", {{"name", 1, 1}, {"contact", 0, 1}}));
  schema->AddType(Leaf("name"));
  schema->AddType(Leaf("contact"));
  schema->AddType(Leaf("dateline"));
  schema->AddType(Leaf("genre"));
  schema->AddType(Composite("keywords", {{"keyword", 1, kUnbounded}}));
  schema->AddType(Leaf("keyword"));
  schema->AddType(Composite("body", {{"abstract", 1, 1},
                                     {"section", 1, kUnbounded}}));
  schema->AddType(Leaf("abstract"));
  schema->AddType(Composite("section", {{"heading", 1, 1},
                                        {"paragraph", 1, kUnbounded}}));
  schema->AddType(Leaf("heading"));
  schema->AddType(Leaf("paragraph"));
  schema->AddType(Composite("epilog", {{"references", 1, 1},
                                       {"acknowledgements", 0, 1}}));
  schema->AddType(Composite("references", {{"reference", 0, kUnbounded}}));
  schema->AddType(Leaf("reference"));
  schema->AddType(Leaf("acknowledgements"));
  return schema;
}

}  // namespace partix::xml
