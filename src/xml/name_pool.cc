#include "xml/name_pool.h"

namespace partix::xml {

NameId NamePool::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<NameId> NamePool::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace partix::xml
