#include "xml/name_pool.h"

#include <mutex>

namespace partix::xml {

NameId NamePool::Intern(std::string_view name) {
  {
    // Fast path: most interns hit an existing name (every node of every
    // parsed document goes through here), so probe under the reader lock
    // first and let concurrent interns of known names proceed in parallel.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned the name between locks.
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<NameId> NamePool::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string_view NamePool::Get(NameId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_[id];
}

size_t NamePool::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

}  // namespace partix::xml
