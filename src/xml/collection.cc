#include "xml/collection.h"

#include "common/strings.h"

namespace partix::xml {

std::string Collection::RootType() const {
  auto steps = SplitSkipEmpty(root_path_, '/');
  if (steps.empty()) return "";
  return std::string(steps.back());
}

Status Collection::Add(DocumentPtr doc) {
  if (doc == nullptr || doc->empty()) {
    return Status::InvalidArgument("cannot add an empty document");
  }
  if (kind_ == RepoKind::kSingleDocument && !docs_.empty()) {
    return Status::FailedPrecondition(
        "SD collection '" + name_ + "' already holds its single document");
  }
  docs_.push_back(std::move(doc));
  return Status::Ok();
}

Status Collection::ValidateHomogeneous() const {
  if (schema_ == nullptr) return Status::Ok();
  const std::string root_type = RootType();
  for (const DocumentPtr& doc : docs_) {
    PARTIX_RETURN_IF_ERROR(schema_->Validate(*doc, root_type));
  }
  return Status::Ok();
}

size_t Collection::ApproxBytes() const {
  size_t total = 0;
  for (const DocumentPtr& doc : docs_) total += doc->ApproxBytes();
  return total;
}

size_t Collection::TotalNodes() const {
  size_t total = 0;
  for (const DocumentPtr& doc : docs_) total += doc->node_count();
  return total;
}

}  // namespace partix::xml
