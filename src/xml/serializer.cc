#include "xml/serializer.h"

#include "common/strings.h"

namespace partix::xml {

namespace {

void SerializeNode(const Document& doc, NodeId n, const SerializeOptions& opt,
                   int depth, std::string* out) {
  auto write_indent = [&](int d) {
    if (!opt.indent) return;
    if (!out->empty()) out->push_back('\n');
    out->append(static_cast<size_t>(d) * 2, ' ');
  };

  switch (doc.kind(n)) {
    case NodeKind::kText:
      out->append(EscapeXmlText(doc.value(n)));
      return;
    case NodeKind::kAttribute:
      // Attributes are emitted by their owner element.
      return;
    case NodeKind::kElement:
      break;
  }

  write_indent(depth);
  out->push_back('<');
  out->append(doc.name(n));
  for (NodeId a : doc.Attributes(n)) {
    out->push_back(' ');
    out->append(doc.name(a));
    out->append("=\"");
    out->append(EscapeXmlAttr(doc.value(a)));
    out->push_back('"');
  }

  // Partition children: text content is serialized inline; elements are
  // serialized nested (possibly indented).
  bool has_child = false;
  bool has_element_child = false;
  for (NodeId c = doc.first_child(n); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (doc.kind(c) == NodeKind::kAttribute) continue;
    has_child = true;
    if (doc.kind(c) == NodeKind::kElement) has_element_child = true;
  }

  if (!has_child) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (NodeId c = doc.first_child(n); c != kNullNode;
       c = doc.next_sibling(c)) {
    if (doc.kind(c) == NodeKind::kAttribute) continue;
    SerializeNode(doc, c, opt, depth + 1, out);
  }
  if (has_element_child) write_indent(depth);
  out->append("</");
  out->append(doc.name(n));
  out->push_back('>');
}

}  // namespace

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.indent) out.push_back('\n');
  }
  if (!doc.empty()) {
    std::string body;
    SerializeNode(doc, doc.root(), options, 0, &body);
    out += body;
  }
  return out;
}

std::string SerializeSubtree(const Document& doc, NodeId node,
                             const SerializeOptions& options) {
  std::string out;
  SerializeNode(doc, node, options, 0, &out);
  return out;
}

void SerializeSubtreeInto(const Document& doc, NodeId node,
                          std::string* out) {
  SerializeNode(doc, node, SerializeOptions(), 0, out);
}

}  // namespace partix::xml
