#include "partix/allocation.h"

#include <algorithm>
#include <numeric>

namespace partix::middleware {

Result<std::vector<FragmentPlacement>> ComputePlacements(
    const std::vector<xml::Collection>& fragments, size_t node_count,
    PlacementStrategy strategy, size_t replication_factor) {
  if (node_count == 0) {
    return Status::InvalidArgument("cluster has no nodes");
  }
  if (fragments.empty()) {
    return Status::InvalidArgument("no fragments to place");
  }
  if (replication_factor == 0) {
    return Status::InvalidArgument("replication_factor must be >= 1");
  }
  if (replication_factor > node_count) {
    return Status::InvalidArgument(
        "replication_factor " + std::to_string(replication_factor) +
        " exceeds node count " + std::to_string(node_count));
  }
  std::vector<FragmentPlacement> placements;
  placements.reserve(fragments.size());

  switch (strategy) {
    case PlacementStrategy::kRoundRobin: {
      for (size_t i = 0; i < fragments.size(); ++i) {
        FragmentPlacement p{fragments[i].name(), i % node_count};
        for (size_t r = 1; r < replication_factor; ++r) {
          p.backups.push_back((i + r) % node_count);
        }
        placements.push_back(std::move(p));
      }
      return placements;
    }
    case PlacementStrategy::kSizeBalanced: {
      // LPT greedy: biggest fragment first onto the lightest node; each
      // backup replica then goes to the lightest node not already holding
      // a copy of the fragment.
      std::vector<size_t> order(fragments.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         return fragments[a].ApproxBytes() >
                                fragments[b].ApproxBytes();
                       });
      std::vector<uint64_t> load(node_count, 0);
      placements.resize(fragments.size());
      for (size_t idx : order) {
        std::vector<bool> holds(node_count, false);
        FragmentPlacement p{fragments[idx].name(), 0};
        for (size_t r = 0; r < replication_factor; ++r) {
          size_t lightest = node_count;
          for (size_t n = 0; n < node_count; ++n) {
            if (holds[n]) continue;
            if (lightest == node_count || load[n] < load[lightest]) {
              lightest = n;
            }
          }
          holds[lightest] = true;
          load[lightest] += fragments[idx].ApproxBytes();
          if (r == 0) {
            p.node = lightest;
          } else {
            p.backups.push_back(lightest);
          }
        }
        placements[idx] = std::move(p);
      }
      return placements;
    }
  }
  return Status::Internal("unknown placement strategy");
}

std::vector<uint64_t> PlacementLoads(
    const std::vector<xml::Collection>& fragments,
    const std::vector<FragmentPlacement>& placements, size_t node_count) {
  std::vector<uint64_t> load(node_count, 0);
  for (const FragmentPlacement& p : placements) {
    for (const xml::Collection& frag : fragments) {
      if (frag.name() != p.fragment) continue;
      for (size_t node : p.AllNodes()) {
        if (node < node_count) load[node] += frag.ApproxBytes();
      }
    }
  }
  return load;
}

std::vector<size_t> CatalogReplicaCounts(const DistributionCatalog& catalog,
                                         size_t node_count) {
  std::vector<size_t> counts(node_count, 0);
  for (const std::string& collection : catalog.FragmentedCollections()) {
    Result<const DistributionEntry*> entry = catalog.Get(collection);
    if (!entry.ok()) continue;
    for (const FragmentPlacement& p : (*entry)->placements) {
      for (size_t node : p.AllNodes()) {
        if (node < node_count) ++counts[node];
      }
    }
  }
  return counts;
}

}  // namespace partix::middleware
