#include "partix/allocation.h"

#include <algorithm>
#include <numeric>

namespace partix::middleware {

Result<std::vector<FragmentPlacement>> ComputePlacements(
    const std::vector<xml::Collection>& fragments, size_t node_count,
    PlacementStrategy strategy) {
  if (node_count == 0) {
    return Status::InvalidArgument("cluster has no nodes");
  }
  if (fragments.empty()) {
    return Status::InvalidArgument("no fragments to place");
  }
  std::vector<FragmentPlacement> placements;
  placements.reserve(fragments.size());

  switch (strategy) {
    case PlacementStrategy::kRoundRobin: {
      for (size_t i = 0; i < fragments.size(); ++i) {
        placements.push_back(
            FragmentPlacement{fragments[i].name(), i % node_count});
      }
      return placements;
    }
    case PlacementStrategy::kSizeBalanced: {
      // LPT greedy: biggest fragment first onto the lightest node.
      std::vector<size_t> order(fragments.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         return fragments[a].ApproxBytes() >
                                fragments[b].ApproxBytes();
                       });
      std::vector<uint64_t> load(node_count, 0);
      placements.resize(fragments.size());
      for (size_t idx : order) {
        size_t lightest = 0;
        for (size_t n = 1; n < node_count; ++n) {
          if (load[n] < load[lightest]) lightest = n;
        }
        placements[idx] =
            FragmentPlacement{fragments[idx].name(), lightest};
        load[lightest] += fragments[idx].ApproxBytes();
      }
      return placements;
    }
  }
  return Status::Internal("unknown placement strategy");
}

std::vector<uint64_t> PlacementLoads(
    const std::vector<xml::Collection>& fragments,
    const std::vector<FragmentPlacement>& placements, size_t node_count) {
  std::vector<uint64_t> load(node_count, 0);
  for (const FragmentPlacement& p : placements) {
    for (const xml::Collection& frag : fragments) {
      if (frag.name() == p.fragment && p.node < node_count) {
        load[p.node] += frag.ApproxBytes();
      }
    }
  }
  return load;
}

}  // namespace partix::middleware
