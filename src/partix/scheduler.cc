#include "partix/scheduler.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "partix/cluster.h"
#include "telemetry/metrics.h"

namespace partix::middleware {

namespace {

/// Process-wide admission counters (per-scheduler figures live on
/// SchedulerStats). Registered once; the record path is a relaxed add.
struct SchedulerTelemetry {
  telemetry::Counter* admitted;
  telemetry::Counter* rejected;
  telemetry::Counter* queued;
  telemetry::Counter* drained;
  telemetry::Counter* memory_deferred;
  telemetry::Gauge* queue_depth;
  telemetry::Gauge* active_queries;
  telemetry::Histogram* admission_wait_ms;

  static const SchedulerTelemetry& Get() {
    static const SchedulerTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      SchedulerTelemetry out;
      out.admitted = registry.GetCounter("partix_queries_admitted_total");
      out.rejected = registry.GetCounter("partix_queries_rejected_total");
      out.queued = registry.GetCounter("partix_queries_queued_total");
      out.drained = registry.GetCounter("partix_queries_drained_total");
      out.memory_deferred =
          registry.GetCounter("partix_admission_memory_deferred_total");
      out.queue_depth = registry.GetGauge("partix_scheduler_queue_depth");
      out.active_queries =
          registry.GetGauge("partix_scheduler_active_queries");
      out.admission_wait_ms =
          registry.GetHistogram("partix_admission_wait_ms");
      return out;
    }();
    return t;
  }
};

size_t DefaultPoolThreads(size_t configured) {
  if (configured > 0) return configured;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

Scheduler::Scheduler(QueryService* service, const SchedulerOptions& options)
    : service_(service),
      options_(options),
      pool_(DefaultPoolThreads(options.pool_threads)) {
  options_.max_concurrent_queries =
      std::max<size_t>(1, options_.max_concurrent_queries);
  // One set of workers for everything below this scheduler: the
  // executor's per-query fan-outs share the scheduler's pool instead of
  // the process-wide fallback.
  service_->cluster()->executor().set_pool(&pool_);
  if (options_.governor != nullptr) {
    // Pinned: admitted queries' footprints are never evicted — pressure
    // they create is absorbed by the caches, and *intake* is bounded
    // here at admission.
    governor_id_ = options_.governor->RegisterConsumer(
        "admitted_queries", memory::MemoryGovernor::kPriorityPinned,
        nullptr);
  }
}

Scheduler::~Scheduler() {
  Drain();
  if (governor_id_ != -1) options_.governor->UnregisterConsumer(governor_id_);
  service_->cluster()->executor().set_pool(nullptr);
  pool_.Shutdown();
}

size_t Scheduler::EstimateFootprint(const std::string& query) const {
  size_t footprint = 0;
  if (options_.footprint_estimator) {
    footprint = options_.footprint_estimator(query);
  }
  if (footprint == 0) footprint = options_.default_query_footprint_bytes;
  if (options_.governor != nullptr) {
    const size_t budget = options_.governor->budget_bytes();
    if (budget > 0) footprint = std::min(footprint, budget);
  }
  return footprint;
}

bool Scheduler::MemoryAdmissibleLocked(size_t footprint) const {
  return options_.governor == nullptr ||
         footprint <= options_.governor->headroom_bytes();
}

void Scheduler::AdmitEligibleLocked() {
  while (active_ < options_.max_concurrent_queries && !waiting_.empty()) {
    // Best waiter under the fairness policy: arrival order for FIFO,
    // smallest virtual time (arrival order breaking ties) for weighted
    // fair. The queue is short (bounded by queue_capacity), so a linear
    // scan beats maintaining a heap keyed two ways.
    size_t best = 0;
    if (options_.fairness == FairnessPolicy::kWeightedFair) {
      for (size_t i = 1; i < waiting_.size(); ++i) {
        const Waiter& cand = *waiting_[i];
        const Waiter& cur = *waiting_[best];
        if (cand.vtime < cur.vtime ||
            (cand.vtime == cur.vtime && cand.seq < cur.seq)) {
          best = i;
        }
      }
    }
    Waiter* w = waiting_[best];
    if (!MemoryAdmissibleLocked(w->footprint) && active_ > 0) {
      // Head-of-line blocking: the best waiter waits for headroom, and
      // nobody overtakes it (skipping ahead would starve big queries
      // behind a stream of small ones). With nothing active the loop
      // never gets here — the waiter is admitted below regardless of
      // headroom, so one over-budget query still makes progress.
      if (!w->memory_deferred) {
        w->memory_deferred = true;
        ++stats_.memory_deferred;
        SchedulerTelemetry::Get().memory_deferred->Add();
      }
      break;
    }
    waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(best));
    w->admitted = true;
    ++active_;
    if (governor_id_ != -1) {
      options_.governor->Charge(governor_id_, w->footprint);
    }
    if (options_.fairness == FairnessPolicy::kWeightedFair) {
      // The accumulator was charged at enqueue; admission only advances
      // the floor (the system's virtual time) to this start tag.
      admitted_vtime_floor_ = std::max(admitted_vtime_floor_, w->vtime);
    }
  }
  SchedulerTelemetry::Get().queue_depth->Set(
      static_cast<double>(waiting_.size()));
}

Status Scheduler::Admit(const ClientContext& client, size_t footprint,
                        double* wait_ms, bool* was_queued) {
  const SchedulerTelemetry& counters = SchedulerTelemetry::Get();
  Stopwatch watch(clock_);
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (draining_) {
    ++stats_.drained;
    counters.drained->Add();
    return Status::Unavailable("scheduler is draining; query refused");
  }
  if (waiting_.empty() && active_ < options_.max_concurrent_queries &&
      (active_ == 0 || MemoryAdmissibleLocked(footprint))) {
    ++active_;
    if (governor_id_ != -1) options_.governor->Charge(governor_id_, footprint);
    ++stats_.admitted;
    counters.admitted->Add();
    counters.active_queries->Set(static_cast<double>(active_));
    *wait_ms = watch.ElapsedMillis();
    counters.admission_wait_ms->Observe(*wait_ms);
    if (options_.fairness == FairnessPolicy::kWeightedFair) {
      const double weight = client.weight > 0.0 ? client.weight : 1.0;
      double& service = virtual_service_[client.client_id];
      const double start = std::max(service, admitted_vtime_floor_);
      service = start + 1.0 / weight;
      admitted_vtime_floor_ = start;
    }
    return Status::Ok();
  }

  // Must queue. A full queue is the backpressure signal: bounce now so
  // the caller can shed load instead of piling blocked threads here.
  if (waiting_.size() >= options_.queue_capacity) {
    ++stats_.rejected;
    counters.rejected->Add();
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_.size()) + "/" +
        std::to_string(options_.queue_capacity) + " waiting, " +
        std::to_string(active_) + " executing)");
  }

  Waiter w;
  w.seq = next_seq_++;
  w.client_id = client.client_id;
  w.weight = client.weight > 0.0 ? client.weight : 1.0;
  w.footprint = footprint;
  if (waiting_.empty() && active_ < options_.max_concurrent_queries) {
    // A slot was free: this submission queues only because its footprint
    // exceeds the governor's headroom.
    w.memory_deferred = true;
    ++stats_.memory_deferred;
    counters.memory_deferred->Add();
  }
  if (options_.fairness == FairnessPolicy::kWeightedFair) {
    // WFQ start tag, charged at *enqueue*: the k-th queued query of one
    // client starts where its (k-1)-th finishes, so a client's standing
    // backlog spaces out at 1/weight per query and interleaves with
    // other clients' accordingly. Deliberately not refunded when the
    // waiter times out or is drained — abandoned queue time still spent
    // the client's share, so retry storms earn no priority.
    w.vtime = std::max(virtual_service_[w.client_id], admitted_vtime_floor_);
    virtual_service_[w.client_id] = w.vtime + 1.0 / w.weight;
  }
  waiting_.push_back(&w);
  ++stats_.queued;
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth,
               static_cast<uint64_t>(waiting_.size()));
  counters.queued->Add();
  counters.queue_depth->Set(static_cast<double>(waiting_.size()));
  *was_queued = true;

  // Wait budget: the queue timeout and the client's deadline, whichever
  // binds first. Blocking uses real time (condition variables do); the
  // *measured* wait below uses the injected clock.
  const bool has_timeout = options_.queue_timeout_ms > 0.0;
  const bool has_deadline = client.deadline_ms > 0.0;
  double budget_ms = 0.0;
  if (has_timeout) budget_ms = options_.queue_timeout_ms;
  if (has_deadline) {
    budget_ms = has_timeout ? std::min(budget_ms, client.deadline_ms)
                            : client.deadline_ms;
  }
  auto resolved = [&] { return w.admitted || w.drained; };
  bool woke = true;
  if (has_timeout || has_deadline) {
    woke = cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(budget_ms),
        resolved);
  } else {
    cv_.wait(lock, resolved);
  }

  if (!woke) {
    // Timed out still queued: withdraw. `w` is on this stack, so it must
    // leave `waiting_` before we return.
    waiting_.erase(std::find(waiting_.begin(), waiting_.end(), &w));
    counters.queue_depth->Set(static_cast<double>(waiting_.size()));
    ++stats_.rejected;
    counters.rejected->Add();
    const double waited = watch.ElapsedMillis();
    if (has_deadline && (!has_timeout ||
                         client.deadline_ms <= options_.queue_timeout_ms)) {
      return Status::DeadlineExceeded(
          "query deadline (" + std::to_string(client.deadline_ms) +
          " ms) expired after " + std::to_string(waited) +
          " ms in the admission queue");
    }
    if (w.memory_deferred) {
      return Status::ResourceExhausted(
          "memory: timed out after " + std::to_string(waited) +
          " ms queued for governor headroom (footprint " +
          std::to_string(w.footprint) + " bytes, queue_timeout_ms " +
          std::to_string(options_.queue_timeout_ms) + ")");
    }
    return Status::ResourceExhausted(
        "timed out after " + std::to_string(waited) +
        " ms in the admission queue (queue_timeout_ms " +
        std::to_string(options_.queue_timeout_ms) + ")");
  }
  if (w.drained) {
    ++stats_.drained;
    counters.drained->Add();
    return Status::Unavailable("scheduler drained while query was queued");
  }
  // Admitted by AdmitEligibleLocked (which already took the slot and
  // charged the fairness accumulator).
  ++stats_.admitted;
  counters.admitted->Add();
  counters.active_queries->Set(static_cast<double>(active_));
  *wait_ms = watch.ElapsedMillis();
  counters.admission_wait_ms->Observe(*wait_ms);
  return Status::Ok();
}

void Scheduler::Release(size_t footprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (governor_id_ != -1) options_.governor->Release(governor_id_, footprint);
  --active_;
  ++stats_.completed;
  SchedulerTelemetry::Get().active_queries->Set(
      static_cast<double>(active_));
  AdmitEligibleLocked();
  cv_.notify_all();
}

void Scheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  // Waiters learn their fate through their own stack slot; their Admit
  // frame does the drained accounting when it wakes.
  for (Waiter* w : waiting_) w->drained = true;
  waiting_.clear();
  SchedulerTelemetry::Get().queue_depth->Set(0.0);
  cv_.notify_all();
  cv_.wait(lock, [this] { return active_ == 0; });
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_.size();
}

size_t Scheduler::active_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

template <typename Fn>
Result<DistributedResult> Scheduler::Run(Fn&& fn,
                                         const ExecutionOptions& options,
                                         const ClientContext& client,
                                         size_t footprint) {
  double wait_ms = 0.0;
  bool was_queued = false;
  PARTIX_RETURN_IF_ERROR(Admit(client, footprint, &wait_ms, &was_queued));

  // Deadline composition (docs/query-scheduling.md): the admission wait
  // already spent part of the client's whole-query budget; what remains
  // caps the per-sub-query deadline. The tighter of the configured
  // sub-query deadline and the remaining budget wins.
  ExecutionOptions effective = options;
  if (client.deadline_ms > 0.0) {
    const double remaining_ms = client.deadline_ms - wait_ms;
    if (remaining_ms <= 0.0) {
      // Admitted exactly as the deadline ran out: fail without touching
      // the cluster. The slot was taken, so release it (the query
      // "completed" without executing — admitted == completed holds).
      Release(footprint);
      return Status::DeadlineExceeded(
          "query deadline (" + std::to_string(client.deadline_ms) +
          " ms) spent waiting " + std::to_string(wait_ms) +
          " ms for admission");
    }
    double& sub_deadline = effective.retry.subquery_deadline_ms;
    if (sub_deadline <= 0.0 || sub_deadline > remaining_ms) {
      sub_deadline = remaining_ms;
    }
  }

  Result<DistributedResult> result = fn(effective);
  Release(footprint);
  if (result.ok() && result->traced) {
    // Splice the admission phase in front of the span tree the service
    // recorded: the wait happened before the query's epoch, so it reads
    // as a zero-offset preamble annotated with what actually happened.
    telemetry::TraceSpan span("scheduler");
    span.start_ms = 0.0;
    span.duration_ms = wait_ms;
    span.AddTag("admission_wait_ms", std::to_string(wait_ms));
    span.AddTag("queued", was_queued ? "true" : "false");
    if (!client.client_id.empty()) span.AddTag("client", client.client_id);
    result->trace.children.insert(result->trace.children.begin(),
                                  std::move(span));
  }
  return result;
}

Result<DistributedResult> Scheduler::Execute(const std::string& query,
                                             const ExecutionOptions& options,
                                             const ClientContext& client) {
  return Run(
      [this, &query](const ExecutionOptions& effective) {
        return service_->Execute(query, effective);
      },
      options, client, EstimateFootprint(query));
}

Result<DistributedResult> Scheduler::ExecutePlan(
    const DistributedPlan& plan, const ExecutionOptions& options,
    const ClientContext& client) {
  return Run(
      [this, &plan](const ExecutionOptions& effective) {
        return service_->ExecutePlan(plan, effective);
      },
      options, client, EstimateFootprint(plan.original_query));
}

namespace {

/// Sums the published serialized bytes of every collection `query`
/// references via collection("NAME"), scaled by the parse-expansion
/// factor. 0 when nothing referenced is sized.
size_t EstimateFromCatalog(const DistributionCatalog& catalog,
                           const std::string& query, double expansion) {
  static const std::string kMarker = "collection(\"";
  double total = 0.0;
  size_t pos = 0;
  while ((pos = query.find(kMarker, pos)) != std::string::npos) {
    pos += kMarker.size();
    const size_t end = query.find('"', pos);
    if (end == std::string::npos) break;
    total += static_cast<double>(
                 catalog.SerializedBytesOf(query.substr(pos, end - pos))) *
             expansion;
    pos = end + 1;
  }
  return static_cast<size_t>(total);
}

}  // namespace

std::function<size_t(const std::string&)> MakeCatalogFootprintEstimator(
    const DistributionCatalog* catalog, double expansion) {
  return [catalog, expansion](const std::string& query) {
    return EstimateFromCatalog(*catalog, query, expansion);
  };
}

std::function<size_t(const std::string&)> MakeCatalogFootprintEstimator(
    const VersionedCatalog* versioned, double expansion) {
  return [versioned, expansion](const std::string& query) {
    return EstimateFromCatalog(*versioned->Snapshot(), query, expansion);
  };
}

}  // namespace partix::middleware
