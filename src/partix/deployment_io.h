#ifndef PARTIX_PARTIX_DEPLOYMENT_IO_H_
#define PARTIX_PARTIX_DEPLOYMENT_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "partix/catalog.h"
#include "partix/cluster.h"

namespace partix::middleware {

/// A deployment restored from disk.
struct LoadedDeployment {
  std::unique_ptr<DistributionCatalog> catalog;
  std::unique_ptr<ClusterSim> cluster;
};

/// Persists a whole PartiX deployment — the distribution catalog
/// (fragmentation designs, placements, centralized collections) and every
/// node's collections — under `dir`:
///
///   <dir>/catalog.txt            cluster size + catalog entries
///   <dir>/schema_<name>.txt      one fragmentation design each
///   <dir>/node<i>/<collection>/  per-node exported collections
///
/// The cluster must be built from local drivers (ClusterSim always is).
Status SaveDeployment(const std::string& dir,
                      const DistributionCatalog& catalog,
                      ClusterSim* cluster);

/// Restores a deployment saved with SaveDeployment. Node databases are
/// rebuilt with `node_options` (indexes are reconstructed at load time, as
/// a real engine rebuilds them on restore).
Result<LoadedDeployment> LoadDeployment(const std::string& dir,
                                        xdb::DatabaseOptions node_options,
                                        NetworkModel network);

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_DEPLOYMENT_IO_H_
