#include "partix/driver.h"

#include "common/clock.h"
#include "common/strings.h"
#include "telemetry/metrics.h"

namespace partix::middleware {

namespace {

/// Per-sub-query engine timing, recorded at the driver boundary — the
/// point where the middleware hands work to "one DBMS node". Lock wait is
/// reported separately per lock class: read waits show readers queueing
/// behind a bulk load or DDL, write waits show loads queueing behind
/// in-flight queries — the two saturate for different reasons, so they
/// get different histograms.
struct DriverTelemetry {
  telemetry::Counter* executes;
  telemetry::Counter* prepares;
  telemetry::Histogram* engine_ms;
  telemetry::Histogram* read_lock_wait_ms;
  telemetry::Histogram* write_lock_wait_ms;

  static const DriverTelemetry& Get() {
    static const DriverTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      DriverTelemetry out;
      out.executes = registry.GetCounter("partix_driver_executes_total");
      out.prepares = registry.GetCounter("partix_driver_prepares_total");
      out.engine_ms = registry.GetHistogram("partix_engine_execute_ms");
      out.read_lock_wait_ms =
          registry.GetHistogram("partix_driver_read_lock_wait_ms");
      out.write_lock_wait_ms =
          registry.GetHistogram("partix_driver_write_lock_wait_ms");
      return out;
    }();
    return t;
  }
};

/// Shared lock with acquisition wait recorded to the read-wait histogram.
class TimedSharedLock {
 public:
  explicit TimedSharedLock(std::shared_mutex& mu) {
    Stopwatch watch;
    lock_ = std::shared_lock<std::shared_mutex>(mu);
    DriverTelemetry::Get().read_lock_wait_ms->Observe(watch.ElapsedMillis());
  }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Exclusive lock with acquisition wait recorded to the write-wait
/// histogram.
class TimedUniqueLock {
 public:
  explicit TimedUniqueLock(std::shared_mutex& mu) {
    Stopwatch watch;
    lock_ = std::unique_lock<std::shared_mutex>(mu);
    DriverTelemetry::Get().write_lock_wait_ms->Observe(watch.ElapsedMillis());
  }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Shared-lock acquisition with the wait recorded to the read-wait
/// histogram, as a movable lock for holders that outlive one call scope
/// (the streaming path hands the lock to the stream object).
std::shared_lock<std::shared_mutex> AcquireTimedSharedLock(
    std::shared_mutex& mu) {
  Stopwatch watch;
  std::shared_lock<std::shared_mutex> lock(mu);
  DriverTelemetry::Get().read_lock_wait_ms->Observe(watch.ElapsedMillis());
  return lock;
}

/// LocalXdbDriver's handle: wraps the engine's shareable prepared plan.
class LocalPreparedSubQuery : public PreparedSubQuery {
 public:
  LocalPreparedSubQuery(xdb::PreparedQueryPtr plan, bool cache_hit,
                        double compile_ms)
      : plan_(std::move(plan)) {
    cache_hit_ = cache_hit;
    compile_ms_ = compile_ms;
  }

  const xdb::PreparedQueryPtr& plan() const { return plan_; }

 private:
  xdb::PreparedQueryPtr plan_;
};

/// LocalXdbDriver's stream: the engine cursor plus the driver's shared
/// lock, both held open-to-destruction. Member order matters — the
/// cursor (which holds the *database's* shared lock) must be destroyed
/// before the driver lock is released, so the driver lock is declared
/// first. Each block is digest-stamped here, node-side, exactly like the
/// materialized path stamps QueryResult::response_digest; engine time is
/// accumulated across Next() calls and observed once at destruction so
/// the partix_engine_execute_ms histogram still sees one sample per
/// (sub-query, node) execution.
class LocalSubQueryStream : public SubQueryStream {
 public:
  LocalSubQueryStream(std::shared_lock<std::shared_mutex> driver_lock,
                      xdb::ResultCursorPtr cursor)
      : driver_lock_(std::move(driver_lock)), cursor_(std::move(cursor)) {}

  ~LocalSubQueryStream() override {
    DriverTelemetry::Get().engine_ms->Observe(engine_ms_);
  }

  Result<bool> Next(xdb::ResultBlock* out) override {
    Stopwatch engine_watch;
    Result<bool> more = cursor_->Next(out);
    engine_ms_ += engine_watch.ElapsedMillis();
    if (more.ok() && *more) out->digest = Fnv1a64(out->serialized);
    return more;
  }

  const xdb::QueryMetrics& metrics() const override {
    return cursor_->metrics();
  }

 private:
  std::shared_lock<std::shared_mutex> driver_lock_;
  xdb::ResultCursorPtr cursor_;
  double engine_ms_ = 0.0;
};

}  // namespace

LocalXdbDriver::LocalXdbDriver(std::string name, xdb::DatabaseOptions options)
    : name_(std::move(name)), db_(options) {}

Status LocalXdbDriver::CreateCollection(const std::string& name,
                                        xdb::CollectionMeta meta) {
  TimedUniqueLock lock(mu_);
  return db_.CreateCollection(name, std::move(meta));
}

Status LocalXdbDriver::StoreDocument(const std::string& collection,
                                     const xml::Document& doc) {
  TimedUniqueLock lock(mu_);
  return db_.StoreDocument(collection, doc);
}

Status LocalXdbDriver::StoreSerializedDocument(
    const std::string& collection, std::string doc_name, std::string xml,
    std::map<std::string, std::string> metadata) {
  TimedUniqueLock lock(mu_);
  return db_.StoreSerializedWithMetadata(collection, std::move(doc_name),
                                         std::move(xml),
                                         std::move(metadata));
}

Result<xdb::QueryResult> LocalXdbDriver::Execute(const std::string& query,
                                                 const xdb::ExecParams& exec) {
  const DriverTelemetry& telemetry = DriverTelemetry::Get();
  // Shared: concurrent queries (and this query's own morsel workers, who
  // run under the engine's shared lock on the pool this thread blocks in)
  // proceed together; only loads/DDL exclude us.
  TimedSharedLock lock(mu_);
  telemetry.executes->Add();
  Stopwatch engine_watch;
  Result<xdb::QueryResult> result = db_.Execute(query, exec);
  telemetry.engine_ms->Observe(engine_watch.ElapsedMillis());
  // Stamp the response digest node-side, while the bytes are still what
  // the engine produced: anything that mangles `serialized` after this
  // point (the simulated wire, a buggy middlebox) is detectable by the
  // executor's integrity check.
  if (result.ok()) result->response_digest = Fnv1a64(result->serialized);
  return result;
}

Result<PreparedSubQueryPtr> LocalXdbDriver::Prepare(
    const xquery::CompiledQueryPtr& compiled) {
  const DriverTelemetry& telemetry = DriverTelemetry::Get();
  TimedSharedLock lock(mu_);
  telemetry.prepares->Add();
  PARTIX_ASSIGN_OR_RETURN(xdb::PrepareOutcome outcome, db_.Prepare(compiled));
  return PreparedSubQueryPtr(std::make_shared<LocalPreparedSubQuery>(
      std::move(outcome.plan), outcome.cache_hit, outcome.compile_ms));
}

Result<xdb::QueryResult> LocalXdbDriver::ExecutePrepared(
    const PreparedSubQuery& prepared, const xdb::ExecParams& exec) {
  const auto* local = dynamic_cast<const LocalPreparedSubQuery*>(&prepared);
  if (local == nullptr) {
    return Status::InvalidArgument(
        "prepared handle was not produced by a LocalXdbDriver");
  }
  const DriverTelemetry& telemetry = DriverTelemetry::Get();
  TimedSharedLock lock(mu_);
  telemetry.executes->Add();
  Stopwatch engine_watch;
  Result<xdb::QueryResult> result = db_.ExecutePrepared(*local->plan(), exec);
  telemetry.engine_ms->Observe(engine_watch.ElapsedMillis());
  if (result.ok()) result->response_digest = Fnv1a64(result->serialized);
  return result;
}

Result<SubQueryStreamPtr> LocalXdbDriver::ExecuteStream(
    const std::string& query, const xdb::ExecParams& exec) {
  const DriverTelemetry& telemetry = DriverTelemetry::Get();
  std::shared_lock<std::shared_mutex> lock = AcquireTimedSharedLock(mu_);
  telemetry.executes->Add();
  Stopwatch engine_watch;
  Result<xdb::ResultCursorPtr> cursor = db_.ExecuteStream(query, exec);
  if (!cursor.ok()) {
    telemetry.engine_ms->Observe(engine_watch.ElapsedMillis());
    return cursor.status();
  }
  return SubQueryStreamPtr(std::make_unique<LocalSubQueryStream>(
      std::move(lock), std::move(*cursor)));
}

Result<SubQueryStreamPtr> LocalXdbDriver::ExecutePreparedStream(
    const PreparedSubQuery& prepared, const xdb::ExecParams& exec) {
  const auto* local = dynamic_cast<const LocalPreparedSubQuery*>(&prepared);
  if (local == nullptr) {
    return Status::InvalidArgument(
        "prepared handle was not produced by a LocalXdbDriver");
  }
  const DriverTelemetry& telemetry = DriverTelemetry::Get();
  std::shared_lock<std::shared_mutex> lock = AcquireTimedSharedLock(mu_);
  telemetry.executes->Add();
  Stopwatch engine_watch;
  Result<xdb::ResultCursorPtr> cursor =
      db_.ExecutePreparedStream(*local->plan(), exec);
  if (!cursor.ok()) {
    telemetry.engine_ms->Observe(engine_watch.ElapsedMillis());
    return cursor.status();
  }
  return SubQueryStreamPtr(std::make_unique<LocalSubQueryStream>(
      std::move(lock), std::move(*cursor)));
}

void LocalXdbDriver::DropCaches() {
  TimedUniqueLock lock(mu_);
  db_.DropCaches();
}

bool LocalXdbDriver::HasCollection(const std::string& collection) {
  TimedSharedLock lock(mu_);
  return db_.HasCollection(collection);
}

Result<uint64_t> LocalXdbDriver::CollectionDigest(
    const std::string& collection) {
  TimedSharedLock lock(mu_);
  return db_.CollectionContentDigest(collection);
}

Result<xdb::CollectionMeta> LocalXdbDriver::CollectionMetaOf(
    const std::string& collection) {
  TimedSharedLock lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const xdb::CollectionMeta* meta,
                          db_.Meta(collection));
  return *meta;
}

Result<std::vector<xdb::StoredDoc>> LocalXdbDriver::ExportStoredDocs(
    const std::string& collection) {
  TimedSharedLock lock(mu_);
  return db_.ExportStoredDocs(collection);
}

Status LocalXdbDriver::DropCollection(const std::string& collection) {
  TimedUniqueLock lock(mu_);
  return db_.DropCollection(collection);
}

std::string LocalXdbDriver::Describe() const {
  return "local-xdb:" + name_;
}

}  // namespace partix::middleware
