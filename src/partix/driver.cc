#include "partix/driver.h"

namespace partix::middleware {

LocalXdbDriver::LocalXdbDriver(std::string name, xdb::DatabaseOptions options)
    : name_(std::move(name)), db_(options) {}

Status LocalXdbDriver::CreateCollection(const std::string& name,
                                        xdb::CollectionMeta meta) {
  return db_.CreateCollection(name, std::move(meta));
}

Status LocalXdbDriver::StoreDocument(const std::string& collection,
                                     const xml::Document& doc) {
  return db_.StoreDocument(collection, doc);
}

Result<xdb::QueryResult> LocalXdbDriver::Execute(const std::string& query) {
  return db_.Execute(query);
}

void LocalXdbDriver::DropCaches() { db_.DropCaches(); }

std::string LocalXdbDriver::Describe() const {
  return "local-xdb:" + name_;
}

}  // namespace partix::middleware
