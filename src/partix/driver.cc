#include "partix/driver.h"

namespace partix::middleware {

LocalXdbDriver::LocalXdbDriver(std::string name, xdb::DatabaseOptions options)
    : name_(std::move(name)), db_(options) {}

Status LocalXdbDriver::CreateCollection(const std::string& name,
                                        xdb::CollectionMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  return db_.CreateCollection(name, std::move(meta));
}

Status LocalXdbDriver::StoreDocument(const std::string& collection,
                                     const xml::Document& doc) {
  std::lock_guard<std::mutex> lock(mu_);
  return db_.StoreDocument(collection, doc);
}

Result<xdb::QueryResult> LocalXdbDriver::Execute(const std::string& query) {
  std::lock_guard<std::mutex> lock(mu_);
  return db_.Execute(query);
}

void LocalXdbDriver::DropCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  db_.DropCaches();
}

std::string LocalXdbDriver::Describe() const {
  return "local-xdb:" + name_;
}

}  // namespace partix::middleware
