#include "partix/deployment_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "engine/persistence.h"
#include "fragmentation/schema_io.h"

namespace partix::middleware {

namespace fs = std::filesystem;

namespace {

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot write '" + path.string() + "'");
  }
  out << content;
  return Status::Ok();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot read '" + path.string() + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Status SaveDeployment(const std::string& dir,
                      const DistributionCatalog& catalog,
                      ClusterSim* cluster) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  if (fs::exists(fs::path(dir) / "catalog.txt")) {
    return Status::AlreadyExists("directory '" + dir +
                                 "' already holds a deployment");
  }

  std::string manifest =
      "nodes\t" + std::to_string(cluster->node_count()) + "\n";
  for (const auto& [name, node] : catalog.CentralizedCollections()) {
    manifest += "centralized\t" + name + "\t" + std::to_string(node) + "\n";
  }
  for (const std::string& name : catalog.FragmentedCollections()) {
    PARTIX_ASSIGN_OR_RETURN(const DistributionEntry* entry,
                            catalog.Get(name));
    manifest += "fragmented\t" + name + "\n";
    for (const FragmentPlacement& p : entry->placements) {
      // Primary first, then any backup replicas as trailing fields (a
      // replica-free manifest stays byte-identical to the old format).
      manifest += "placement\t" + name + "\t" + p.fragment + "\t" +
                  std::to_string(p.node);
      for (size_t b : p.backups) manifest += "\t" + std::to_string(b);
      manifest += "\n";
      // Published content digest on its own tagged line, only when known:
      // digest-free manifests stay byte-identical to the old format, and
      // old loaders would reject an extra placement field but a new tag
      // is the established extension point.
      if (p.content_digest != 0) {
        manifest += "digest\t" + name + "\t" + p.fragment + "\t" +
                    HashHex(p.content_digest) + "\n";
      }
      // Published fragment size, same extension mechanism as digests:
      // size-free manifests stay byte-identical to the old format.
      if (p.serialized_bytes != 0) {
        manifest += "bytes\t" + name + "\t" + p.fragment + "\t" +
                    std::to_string(p.serialized_bytes) + "\n";
      }
    }
    PARTIX_RETURN_IF_ERROR(WriteFile(
        fs::path(dir) / ("schema_" + name + ".txt"),
        frag::SerializeFragmentationSchema(entry->schema)));
  }
  PARTIX_RETURN_IF_ERROR(
      WriteFile(fs::path(dir) / "catalog.txt", manifest));

  // Export every collection of every node.
  for (size_t n = 0; n < cluster->node_count(); ++n) {
    xdb::Database& db = cluster->database(n);
    for (const std::string& collection : db.CollectionNames()) {
      fs::path target =
          fs::path(dir) / ("node" + std::to_string(n)) / collection;
      PARTIX_RETURN_IF_ERROR(
          xdb::ExportCollection(db, collection, target.string()));
    }
  }
  return Status::Ok();
}

Result<LoadedDeployment> LoadDeployment(const std::string& dir,
                                        xdb::DatabaseOptions node_options,
                                        NetworkModel network) {
  PARTIX_ASSIGN_OR_RETURN(std::string manifest,
                          ReadFile(fs::path(dir) / "catalog.txt"));

  LoadedDeployment out;
  out.catalog = std::make_unique<DistributionCatalog>();

  std::istringstream in(manifest);
  std::string line;
  int64_t node_count = 0;
  // Placements are listed after their "fragmented" line; gather then
  // register.
  std::map<std::string, std::vector<FragmentPlacement>> placements;
  std::vector<std::string> fragmented;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    const std::string tag(fields[0]);
    if (tag == "nodes") {
      if (fields.size() != 2 || !ParseInt64(fields[1], &node_count) ||
          node_count < 1) {
        return Status::Corruption("bad nodes line in catalog.txt");
      }
      out.cluster = std::make_unique<ClusterSim>(
          static_cast<size_t>(node_count), node_options, network);
    } else if (tag == "centralized") {
      int64_t node = 0;
      if (fields.size() != 3 || !ParseInt64(fields[2], &node)) {
        return Status::Corruption("bad centralized line in catalog.txt");
      }
      PARTIX_RETURN_IF_ERROR(out.catalog->RegisterCentralized(
          std::string(fields[1]), static_cast<size_t>(node)));
    } else if (tag == "fragmented") {
      if (fields.size() != 2) {
        return Status::Corruption("bad fragmented line in catalog.txt");
      }
      fragmented.emplace_back(fields[1]);
    } else if (tag == "placement") {
      int64_t node = 0;
      if (fields.size() < 4 || !ParseInt64(fields[3], &node)) {
        return Status::Corruption("bad placement line in catalog.txt");
      }
      FragmentPlacement p{std::string(fields[2]),
                          static_cast<size_t>(node)};
      for (size_t f = 4; f < fields.size(); ++f) {
        int64_t backup = 0;
        if (!ParseInt64(fields[f], &backup) || backup < 0) {
          return Status::Corruption("bad replica in placement line");
        }
        p.backups.push_back(static_cast<size_t>(backup));
      }
      placements[std::string(fields[1])].push_back(std::move(p));
    } else if (tag == "digest") {
      if (fields.size() != 4) {
        return Status::Corruption("bad digest line in catalog.txt");
      }
      uint64_t digest = 0;
      if (!ParseHex64(fields[3], &digest)) {
        return Status::Corruption("bad digest value in catalog.txt");
      }
      bool attached = false;
      for (FragmentPlacement& p : placements[std::string(fields[1])]) {
        if (p.fragment == fields[2]) {
          p.content_digest = digest;
          attached = true;
          break;
        }
      }
      if (!attached) {
        return Status::Corruption("digest line for unknown placement '" +
                                  std::string(fields[2]) + "'");
      }
    } else if (tag == "bytes") {
      if (fields.size() != 4) {
        return Status::Corruption("bad bytes line in catalog.txt");
      }
      int64_t bytes = 0;
      if (!ParseInt64(fields[3], &bytes) || bytes < 0) {
        return Status::Corruption("bad bytes value in catalog.txt");
      }
      bool attached = false;
      for (FragmentPlacement& p : placements[std::string(fields[1])]) {
        if (p.fragment == fields[2]) {
          p.serialized_bytes = static_cast<uint64_t>(bytes);
          attached = true;
          break;
        }
      }
      if (!attached) {
        return Status::Corruption("bytes line for unknown placement '" +
                                  std::string(fields[2]) + "'");
      }
    } else {
      return Status::Corruption("unknown tag '" + tag +
                                "' in catalog.txt");
    }
  }
  if (out.cluster == nullptr) {
    return Status::Corruption("catalog.txt has no nodes line");
  }

  for (const std::string& name : fragmented) {
    PARTIX_ASSIGN_OR_RETURN(
        std::string schema_text,
        ReadFile(fs::path(dir) / ("schema_" + name + ".txt")));
    PARTIX_ASSIGN_OR_RETURN(frag::FragmentationSchema schema,
                            frag::ParseFragmentationSchema(schema_text));
    PARTIX_RETURN_IF_ERROR(
        out.catalog->Register(std::move(schema), placements[name]));
  }

  // Import every node directory.
  for (size_t n = 0; n < out.cluster->node_count(); ++n) {
    fs::path node_dir = fs::path(dir) / ("node" + std::to_string(n));
    if (!fs::exists(node_dir)) continue;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(node_dir)) {
      if (!entry.is_directory()) continue;
      const std::string collection = entry.path().filename().string();
      PARTIX_RETURN_IF_ERROR(xdb::ImportCollection(
          out.cluster->database(n), collection, entry.path().string()));
    }
  }
  return out;
}

}  // namespace partix::middleware
