#include "partix/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "partix/cluster.h"

namespace partix::middleware {

void Executor::RunOne(const SubQuery& sub, SubQueryOutcome* out) {
  Stopwatch watch;
  const double rpc_sec = cluster_->network().emulated_rpc_sec;
  if (rpc_sec > 0.0) {
    // Emulate the synchronous round trip to a remote DBMS node: the worker
    // blocks (holding no core) the way a real driver would block on the
    // wire. Overlapping these waits is the first win of real parallelism.
    std::this_thread::sleep_for(std::chrono::duration<double>(rpc_sec));
  }
  out->result = cluster_->node(sub.node).Execute(sub.query);
  out->wall_ms = watch.ElapsedMillis();
}

double Executor::Dispatch(const std::vector<SubQuery>& subqueries,
                          size_t parallelism,
                          std::vector<SubQueryOutcome>* outcomes) {
  outcomes->clear();
  outcomes->resize(subqueries.size());
  const size_t n = subqueries.size();
  if (n == 0) return 0.0;
  Stopwatch watch;

  const size_t workers =
      parallelism == 0 ? n : std::min(parallelism, n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) RunOne(subqueries[i], &(*outcomes)[i]);
    return watch.ElapsedMillis();
  }

  if (pool_ == nullptr || pool_->thread_count() < workers) {
    if (pool_ != nullptr) pool_->Shutdown();
    pool_ = std::make_unique<ThreadPool>(workers);
  }

  // Exactly `workers` tasks, each pulling the next unclaimed sub-query
  // index: concurrency is capped at `workers` even when the pool is
  // larger, and every outcome slot is written by exactly one thread.
  std::atomic<size_t> next{0};
  Latch done(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool_->Submit([this, &subqueries, &next, &done, outcomes, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        RunOne(subqueries[i], &(*outcomes)[i]);
      }
      done.CountDown();
    });
  }
  done.Wait();
  return watch.ElapsedMillis();
}

}  // namespace partix::middleware
