#include "partix/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/rng.h"
#include "partix/cluster.h"

namespace partix::middleware {

namespace {

/// Decorrelates per-sub-query jitter streams (splitmix64 finalizer).
uint64_t MixSeed(uint64_t seed, size_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool Retryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

void Executor::set_breaker_policy(CircuitBreakerPolicy policy) {
  breaker_policy_ = policy;
  ResetBreakers();
}

void Executor::ResetBreakers() {
  for (auto& b : breakers_) {
    if (b == nullptr) continue;
    std::lock_guard<std::mutex> lock(b->mu);
    b->consecutive_failures = 0;
    b->open = false;
    b->probing = false;
  }
}

bool Executor::breaker_open(size_t node) const {
  if (node >= breakers_.size() || breakers_[node] == nullptr) return false;
  NodeBreakerState& b = *breakers_[node];
  std::lock_guard<std::mutex> lock(b.mu);
  return b.open;
}

void Executor::EnsureBreakers(const std::vector<SubQuery>& subqueries) {
  size_t max_node = 0;
  for (const SubQuery& sub : subqueries) {
    max_node = std::max(max_node, sub.node);
    for (size_t r : sub.replicas) max_node = std::max(max_node, r);
  }
  if (breakers_.size() < max_node + 1) breakers_.resize(max_node + 1);
  for (size_t i = 0; i <= max_node; ++i) {
    if (breakers_[i] == nullptr) {
      breakers_[i] = std::make_unique<NodeBreakerState>();
    }
  }
}

bool Executor::BreakerAllows(size_t node) {
  if (breaker_policy_.failure_threshold == 0) return true;
  if (node >= breakers_.size() || breakers_[node] == nullptr) return true;
  NodeBreakerState& b = *breakers_[node];
  std::lock_guard<std::mutex> lock(b.mu);
  if (!b.open) return true;
  if (!b.probing &&
      b.opened_at.ElapsedMillis() >= breaker_policy_.open_ms) {
    b.probing = true;  // hand out the single half-open probe
    return true;
  }
  return false;
}

void Executor::RecordSuccess(size_t node) {
  if (node >= breakers_.size() || breakers_[node] == nullptr) return;
  NodeBreakerState& b = *breakers_[node];
  std::lock_guard<std::mutex> lock(b.mu);
  b.consecutive_failures = 0;
  b.open = false;
  b.probing = false;
}

void Executor::RecordFailure(size_t node) {
  if (breaker_policy_.failure_threshold == 0) return;
  if (node >= breakers_.size() || breakers_[node] == nullptr) return;
  NodeBreakerState& b = *breakers_[node];
  std::lock_guard<std::mutex> lock(b.mu);
  ++b.consecutive_failures;
  if (b.probing || b.consecutive_failures >= breaker_policy_.failure_threshold) {
    b.open = true;
    b.probing = false;
    b.opened_at.Restart();
  }
}

void Executor::RunOne(const SubQuery& sub, size_t index,
                      const RetryPolicy& retry, SubQueryOutcome* out) {
  Stopwatch watch;
  const std::vector<size_t> candidates =
      sub.replicas.empty() ? std::vector<size_t>{sub.node} : sub.replicas;
  out->node = candidates.front();
  Rng rng(MixSeed(retry.seed, index));

  const size_t max_attempts = std::max<size_t>(1, retry.max_attempts);
  const double rpc_sec = cluster_->network().emulated_rpc_sec;
  double backoff_ms = retry.base_backoff_ms;
  size_t cursor = 0;  // next candidate to consider
  Status last_error = Status::Unavailable("not attempted");

  while (out->attempts < max_attempts) {
    if (retry.subquery_deadline_ms > 0.0 &&
        watch.ElapsedMillis() >= retry.subquery_deadline_ms) {
      out->timed_out = true;
      out->result = Status::DeadlineExceeded(
          "sub-query deadline (" + std::to_string(retry.subquery_deadline_ms) +
          " ms) exceeded after " + std::to_string(out->attempts) +
          " attempt(s): " + last_error.message());
      out->wall_ms = watch.ElapsedMillis();
      return;
    }

    // Pick the next candidate replica that is up and whose breaker admits
    // traffic, scanning at most one full cycle from the cursor.
    size_t node = candidates.front();
    bool found = false;
    for (size_t k = 0; k < candidates.size(); ++k) {
      size_t cand = candidates[(cursor + k) % candidates.size()];
      if (cluster_->IsNodeDown(cand)) continue;
      if (!BreakerAllows(cand)) continue;
      node = cand;
      cursor = (cursor + k) % candidates.size();
      found = true;
      break;
    }
    if (!found) {
      out->result = Status::Unavailable(
          "all " + std::to_string(candidates.size()) +
          " replica(s) unreachable (down or circuit open); last error: " +
          last_error.message());
      out->wall_ms = watch.ElapsedMillis();
      return;
    }
    // A failover is any move off the node the sub-query last targeted —
    // including a first attempt routed around a down primary.
    if (node != out->node || (out->attempts == 0 && node != sub.node)) {
      ++out->failovers;
    }
    out->node = node;
    ++out->attempts;

    Stopwatch attempt_watch;
    if (rpc_sec > 0.0) {
      // Emulate the synchronous round trip to a remote DBMS node: the
      // worker blocks (holding no core) the way a real driver would block
      // on the wire. Overlapping these waits is the first win of real
      // parallelism.
      std::this_thread::sleep_for(std::chrono::duration<double>(rpc_sec));
    }
    Result<xdb::QueryResult> result = cluster_->ExecuteOnNode(node, sub.query);
    const double attempt_ms = attempt_watch.ElapsedMillis();

    if (result.ok() && retry.attempt_timeout_ms > 0.0 &&
        attempt_ms > retry.attempt_timeout_ms) {
      // The node answered, but past its budget: a real client would have
      // hung up. Discard the result and treat as a timeout.
      result = Status::DeadlineExceeded(
          "attempt to node" + std::to_string(node) + " took " +
          std::to_string(attempt_ms) + " ms (budget " +
          std::to_string(retry.attempt_timeout_ms) + " ms)");
    }

    if (result.ok()) {
      RecordSuccess(node);
      out->result = std::move(result);
      out->wall_ms = watch.ElapsedMillis();
      return;
    }

    RecordFailure(node);
    last_error = result.status();
    if (last_error.code() == StatusCode::kDeadlineExceeded) {
      out->timed_out = true;
    }
    if (!Retryable(last_error)) {
      // Deterministic engine errors (parse failure, missing collection,
      // ...) would fail identically on every replica: fail fast.
      out->result = std::move(result);
      out->wall_ms = watch.ElapsedMillis();
      return;
    }
    cursor = (cursor + 1) % candidates.size();

    if (out->attempts < max_attempts && retry.base_backoff_ms > 0.0) {
      double sleep_ms =
          backoff_ms * (1.0 + rng.UniformDouble(-retry.jitter, retry.jitter));
      sleep_ms = std::max(0.0, sleep_ms);
      if (retry.subquery_deadline_ms > 0.0) {
        const double remaining =
            retry.subquery_deadline_ms - watch.ElapsedMillis();
        sleep_ms = std::min(sleep_ms, std::max(0.0, remaining));
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_ms / 1e3));
      }
      backoff_ms =
          std::min(backoff_ms * retry.backoff_multiplier, retry.max_backoff_ms);
    }
  }

  out->result = Status(last_error.code(),
                       "sub-query failed after " +
                           std::to_string(out->attempts) +
                           " attempt(s): " + last_error.message());
  out->wall_ms = watch.ElapsedMillis();
}

double Executor::Dispatch(const std::vector<SubQuery>& subqueries,
                          const DispatchOptions& options,
                          std::vector<SubQueryOutcome>* outcomes) {
  outcomes->clear();
  outcomes->resize(subqueries.size());
  const size_t n = subqueries.size();
  if (n == 0) return 0.0;
  EnsureBreakers(subqueries);
  Stopwatch watch;

  const size_t parallelism = options.parallelism;
  const size_t workers = parallelism == 0 ? n : std::min(parallelism, n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      RunOne(subqueries[i], i, options.retry, &(*outcomes)[i]);
    }
    return watch.ElapsedMillis();
  }

  // Pool-sizing policy (see executor.h): the pool is bounded by
  // max(hardware threads, cluster nodes), not by the requested
  // parallelism. The index-claiming loop below lets a smaller pool
  // drain any number of sub-queries.
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t cap = std::max(hw, cluster_->node_count());
  const size_t pool_size = std::min(workers, cap);
  if (pool_ == nullptr || pool_->thread_count() < pool_size) {
    if (pool_ != nullptr) pool_->Shutdown();
    pool_ = std::make_unique<ThreadPool>(pool_size);
  }
  const size_t tasks = std::min(workers, pool_->thread_count());

  // `tasks` pool tasks, each pulling the next unclaimed sub-query index:
  // every outcome slot is written by exactly one thread, and concurrency
  // is capped at min(workers, pool size).
  std::atomic<size_t> next{0};
  Latch done(tasks);
  const RetryPolicy& retry = options.retry;
  for (size_t w = 0; w < tasks; ++w) {
    pool_->Submit([this, &subqueries, &next, &done, &retry, outcomes, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        RunOne(subqueries[i], i, retry, &(*outcomes)[i]);
      }
      done.CountDown();
    });
  }
  done.Wait();
  return watch.ElapsedMillis();
}

}  // namespace partix::middleware
