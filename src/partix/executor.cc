#include "partix/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <string>
#include <thread>

#include "common/rng.h"
#include "common/strings.h"
#include "partix/cluster.h"
#include "partix/health.h"
#include "partix/stream.h"
#include "telemetry/metrics.h"

namespace partix::middleware {

namespace {

/// Decorrelates per-sub-query jitter streams (splitmix64 finalizer).
uint64_t MixSeed(uint64_t seed, size_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool Retryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Dispatch/retry/breaker counters and latency histograms, process-wide
/// (the per-query figures stay on SubQueryOutcome/DistributedResult).
/// Registered once; the record path is a relaxed atomic add.
struct ExecutorTelemetry {
  telemetry::Counter* dispatches;
  telemetry::Counter* subqueries;
  telemetry::Counter* attempts;
  telemetry::Counter* retries;
  telemetry::Counter* failovers;
  telemetry::Counter* timeouts;
  telemetry::Counter* failures;
  telemetry::Counter* backoff_sleeps;
  telemetry::Counter* backoff_sleep_us;
  telemetry::Counter* breaker_opens;
  telemetry::Counter* breaker_closes;
  telemetry::Counter* breaker_probes;
  telemetry::Counter* corrupt_responses;
  telemetry::Histogram* subquery_wall_ms;
  telemetry::Histogram* queue_wait_ms;
  telemetry::Gauge* pool_threads;

  static const ExecutorTelemetry& Get() {
    static const ExecutorTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      ExecutorTelemetry out;
      out.dispatches = registry.GetCounter("partix_dispatches_total");
      out.subqueries = registry.GetCounter("partix_subqueries_total");
      out.attempts = registry.GetCounter("partix_subquery_attempts_total");
      out.retries = registry.GetCounter("partix_subquery_retries_total");
      out.failovers = registry.GetCounter("partix_subquery_failovers_total");
      out.timeouts = registry.GetCounter("partix_subquery_timeouts_total");
      out.failures = registry.GetCounter("partix_subquery_failures_total");
      out.backoff_sleeps = registry.GetCounter("partix_backoff_sleeps_total");
      out.backoff_sleep_us =
          registry.GetCounter("partix_backoff_sleep_us_total");
      out.breaker_opens = registry.GetCounter("partix_breaker_opens_total");
      out.breaker_closes = registry.GetCounter("partix_breaker_closes_total");
      out.breaker_probes =
          registry.GetCounter("partix_breaker_half_open_probes_total");
      out.corrupt_responses =
          registry.GetCounter("partix_corrupt_responses_total");
      out.subquery_wall_ms = registry.GetHistogram("partix_subquery_wall_ms");
      out.queue_wait_ms = registry.GetHistogram("partix_queue_wait_ms");
      out.pool_threads = registry.GetGauge("partix_executor_pool_threads");
      return out;
    }();
    return t;
  }
};

}  // namespace

ThreadPool& Executor::SharedProcessPool() {
  // One pool for every executor in the process: concurrent queries and
  // concurrent clusters draw from the same workers instead of each
  // growing a private, never-shrunk pool. Function-local static so the
  // pool joins its workers cleanly at exit.
  static ThreadPool pool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

void Executor::set_breaker_policy(CircuitBreakerPolicy policy) {
  breaker_policy_ = policy;
  ResetBreakers();
}

void Executor::ResetBreakers() {
  std::lock_guard<std::mutex> vector_lock(breakers_mu_);
  for (auto& b : breakers_) {
    if (b == nullptr) continue;
    std::lock_guard<std::mutex> lock(b->mu);
    b->consecutive_failures = 0;
    b->open = false;
    b->probing = false;
  }
}

Executor::NodeBreakerState* Executor::BreakerFor(size_t node) const {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  if (node >= breakers_.size()) return nullptr;
  return breakers_[node].get();
}

bool Executor::breaker_open(size_t node) const {
  NodeBreakerState* state = BreakerFor(node);
  if (state == nullptr) return false;
  std::lock_guard<std::mutex> lock(state->mu);
  return state->open;
}

void Executor::EnsureBreakers(const std::vector<SubQuery>& subqueries) {
  size_t max_node = 0;
  for (const SubQuery& sub : subqueries) {
    max_node = std::max(max_node, sub.node);
    for (size_t r : sub.replicas) max_node = std::max(max_node, r);
  }
  std::lock_guard<std::mutex> lock(breakers_mu_);
  if (breakers_.size() < max_node + 1) breakers_.resize(max_node + 1);
  for (size_t i = 0; i <= max_node; ++i) {
    if (breakers_[i] == nullptr) {
      breakers_[i] = std::make_unique<NodeBreakerState>();
    }
  }
}

bool Executor::BreakerAllows(size_t node) {
  if (breaker_policy_.failure_threshold == 0) return true;
  NodeBreakerState* state = BreakerFor(node);
  if (state == nullptr) return true;
  NodeBreakerState& b = *state;
  std::lock_guard<std::mutex> lock(b.mu);
  if (!b.open) return true;
  if (!b.probing &&
      b.opened_at.ElapsedMillis() >= breaker_policy_.open_ms) {
    b.probing = true;  // hand out the single half-open probe
    ExecutorTelemetry::Get().breaker_probes->Add();
    return true;
  }
  return false;
}

void Executor::RecordSuccess(size_t node) {
  NodeBreakerState* state = BreakerFor(node);
  if (state == nullptr) return;
  NodeBreakerState& b = *state;
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.open) ExecutorTelemetry::Get().breaker_closes->Add();
  b.consecutive_failures = 0;
  b.open = false;
  b.probing = false;
}

void Executor::RecordFailure(size_t node) {
  if (breaker_policy_.failure_threshold == 0) return;
  NodeBreakerState* state = BreakerFor(node);
  if (state == nullptr) return;
  NodeBreakerState& b = *state;
  std::lock_guard<std::mutex> lock(b.mu);
  ++b.consecutive_failures;
  if (b.probing || b.consecutive_failures >= breaker_policy_.failure_threshold) {
    if (!b.open) ExecutorTelemetry::Get().breaker_opens->Add();
    b.open = true;
    b.probing = false;
    b.opened_at = Stopwatch(clock_);
  }
}

void Executor::RunOne(const SubQuery& sub, size_t index,
                      const DispatchOptions& options,
                      const Stopwatch& dispatch_watch, SubQueryOutcome* out) {
  const ExecutorTelemetry& counters = ExecutorTelemetry::Get();
  const RetryPolicy& retry = options.retry;
  const telemetry::Tracer* tracer = options.tracer;

  out->queue_wait_ms = dispatch_watch.ElapsedMillis();
  counters.subqueries->Add();
  counters.queue_wait_ms->Observe(out->queue_wait_ms);
  if (tracer != nullptr) out->span.start_ms = tracer->NowMs();

  Stopwatch watch(clock_);
  const std::vector<size_t> candidates =
      sub.replicas.empty() ? std::vector<size_t>{sub.node} : sub.replicas;
  out->node = candidates.front();
  Rng rng(MixSeed(retry.seed, index));

  // Intra-node morsels run on the SAME pool this worker occupies; the
  // engine's coordinator claims chunks itself (help-while-waiting), so a
  // saturated pool degrades to sequential instead of deadlocking.
  xdb::ExecParams exec;
  if (options.intra_node_parallelism > 1) {
    exec.morsel_parallelism = options.intra_node_parallelism;
    exec.morsel_pool = &EffectivePool();
  }
  if (options.stream != nullptr) {
    exec.stream_block_items = options.stream_block_items;
  }

  // Compile-once contract: when the plan ships a compiled sub-query, each
  // node is prepared at most once for this sub-query, on first contact;
  // retries and failovers (including wrap-around back to an earlier node)
  // reuse the cached handle, so fault recovery never recompiles.
  std::map<size_t, PreparedSubQueryPtr> prepared_by_node;

  // Finalizes the per-sub-query bookkeeping every return path shares:
  // wall time, aggregate counters, and the span's canonical
  // `fragment@node<i>` name plus summary tags.
  auto finish = [&] {
    // Streaming: close this sub-query's channel lane with its final
    // status — every return path runs finish exactly once, which is what
    // guarantees the consumer's Pull() always terminates.
    if (options.stream != nullptr) {
      options.stream->Finish(
          index, out->result.ok() ? Status::Ok() : out->result.status());
    }
    out->wall_ms = watch.ElapsedMillis();
    counters.subquery_wall_ms->Observe(out->wall_ms);
    if (out->attempts > 1) counters.retries->Add(out->attempts - 1);
    if (out->timed_out) counters.timeouts->Add();
    if (!out->result.ok()) counters.failures->Add();
    if (tracer != nullptr) {
      out->span.name = sub.fragment + "@node" + std::to_string(out->node);
      out->span.duration_ms = tracer->NowMs() - out->span.start_ms;
      out->span.AddTag("attempts", std::to_string(out->attempts));
      out->span.AddTag("failovers", std::to_string(out->failovers));
      if (out->prepares > 0) {
        out->span.AddTag("prepares", std::to_string(out->prepares));
        out->span.AddTag("plan_cache_hits",
                         std::to_string(out->plan_cache_hits));
      }
      out->span.AddTag("status",
                       StatusCodeName(out->result.ok()
                                          ? StatusCode::kOk
                                          : out->result.status().code()));
    }
  };

  const size_t max_attempts = std::max<size_t>(1, retry.max_attempts);
  const double rpc_sec = cluster_->network().emulated_rpc_sec;
  double backoff_ms = retry.base_backoff_ms;
  size_t cursor = 0;  // next candidate to consider
  Status last_error = Status::Unavailable("not attempted");

  // The one canonical deadline failure every expiry path produces —
  // before an attempt, mid-backoff, or when the budget would be spent
  // sleeping. Downstream code (query service aggregation, scheduler
  // verdicts, tests) matches on this exact shape.
  auto fail_deadline = [&] {
    out->timed_out = true;
    out->result = Status::DeadlineExceeded(
        "sub-query deadline (" + std::to_string(retry.subquery_deadline_ms) +
        " ms) exceeded after " + std::to_string(out->attempts) +
        " attempt(s): " + last_error.message());
    finish();
  };

  // Shared retry tail: advance the candidate cursor and apply one backoff
  // step when attempts remain. Returns false when the deadline would
  // expire mid-backoff — fail_deadline has already written the outcome
  // and the caller must return.
  auto backoff_for_retry = [&]() -> bool {
    cursor = (cursor + 1) % candidates.size();
    if (out->attempts < max_attempts && retry.base_backoff_ms > 0.0) {
      double sleep_ms =
          backoff_ms * (1.0 + rng.UniformDouble(-retry.jitter, retry.jitter));
      sleep_ms = std::max(0.0, sleep_ms);
      if (retry.subquery_deadline_ms > 0.0) {
        // The deadline expires mid-backoff: the mandated sleep would eat
        // the whole remaining budget, so no further attempt can run.
        // Fail fast with the canonical deadline error instead of
        // sleeping up to (or past) a deadline we already know is lost.
        const double remaining =
            retry.subquery_deadline_ms - watch.ElapsedMillis();
        if (remaining <= sleep_ms) {
          fail_deadline();
          return false;
        }
      }
      if (sleep_ms > 0.0) {
        counters.backoff_sleeps->Add();
        counters.backoff_sleep_us->Add(
            static_cast<uint64_t>(sleep_ms * 1e3));
        if (tracer != nullptr) {
          out->span.children.emplace_back("backoff");
          telemetry::TraceSpan& backoff_span = out->span.children.back();
          backoff_span.start_ms = tracer->NowMs();
          backoff_span.duration_ms = sleep_ms;  // scheduled, not measured
          backoff_span.AddTag("sleep_ms", std::to_string(sleep_ms));
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_ms / 1e3));
      }
      backoff_ms =
          std::min(backoff_ms * retry.backoff_multiplier, retry.max_backoff_ms);
    }
    return true;
  };

  while (out->attempts < max_attempts) {
    // Remaining sub-query budget, clamped: once the deadline has expired
    // the loop fails fast — a negative remainder must never flow
    // downstream as an attempt budget (<= 0 would read as "no timeout").
    double remaining_ms = std::numeric_limits<double>::infinity();
    if (retry.subquery_deadline_ms > 0.0) {
      remaining_ms = retry.subquery_deadline_ms - watch.ElapsedMillis();
      if (remaining_ms <= 0.0) {
        fail_deadline();
        return;
      }
    }

    // Pick the next candidate replica that is up and whose breaker admits
    // traffic, scanning at most one full cycle from the cursor. Health is
    // consulted first (pass 0 skips nodes the monitor flags as dead or
    // quarantined) and yields if it would leave nothing: pass 1 rescans
    // ignoring health, so an advisory verdict — possibly stale — can
    // never fail a sub-query the cluster could still serve. The health
    // check runs before BreakerAllows so a skipped candidate never
    // consumes a half-open probe.
    size_t node = candidates.front();
    bool found = false;
    const size_t passes = health_ != nullptr ? 2 : 1;
    for (size_t pass = 0; pass < passes && !found; ++pass) {
      for (size_t k = 0; k < candidates.size(); ++k) {
        size_t cand = candidates[(cursor + k) % candidates.size()];
        if (cluster_->IsNodeDown(cand)) continue;
        if (pass == 0 && health_ != nullptr && health_->ShouldAvoid(cand)) {
          continue;
        }
        if (!BreakerAllows(cand)) continue;
        node = cand;
        cursor = (cursor + k) % candidates.size();
        found = true;
        break;
      }
    }
    if (!found) {
      // Every replica is refusing traffic *right now* — down, or behind an
      // open breaker (possibly because another worker holds the one
      // half-open probe). That is a transient routing condition, not a
      // verdict on the sub-query: consume an attempt and retry with
      // backoff, so refused workers drain through the breaker once the
      // probe closes it. A refusal never contacts a node, so it counts no
      // engine request.
      ++out->attempts;
      counters.attempts->Add();
      last_error = Status::Unavailable(
          "all " + std::to_string(candidates.size()) +
          " replica(s) unreachable (down or circuit open)");
      if (out->attempts >= max_attempts) break;
      if (!backoff_for_retry()) return;
      continue;
    }
    // A failover is any move off the node the sub-query last targeted —
    // including a first attempt routed around a down primary.
    const bool failover =
        node != out->node || (out->attempts == 0 && node != sub.node);
    if (failover) {
      ++out->failovers;
      counters.failovers->Add();
    }
    out->node = node;
    ++out->attempts;
    counters.attempts->Add();

    telemetry::TraceSpan* attempt_span = nullptr;
    if (tracer != nullptr) {
      out->span.children.emplace_back(
          "attempt " + std::to_string(out->attempts) + "@node" +
          std::to_string(node));
      attempt_span = &out->span.children.back();
      attempt_span->start_ms = tracer->NowMs();
      if (failover) attempt_span->AddTag("failover", "true");
    }

    // Per-attempt budget: the configured attempt timeout composed with
    // what is left of the sub-query deadline (whichever is tighter).
    // `remaining_ms` is positive here — the loop head failed fast
    // otherwise — so the budget is never zero/negative ("disabled").
    // Computed BEFORE the attempt so the cluster can cap an injected
    // latency stall at it: a spike outlasting the budget stalls the
    // worker only for the budget, then fails fast, instead of sleeping
    // out a stall whose result the deadline has already written off.
    double attempt_budget_ms = retry.attempt_timeout_ms;
    if (remaining_ms != std::numeric_limits<double>::infinity()) {
      attempt_budget_ms = attempt_budget_ms > 0.0
                              ? std::min(attempt_budget_ms, remaining_ms)
                              : remaining_ms;
    }
    const double stall_budget_ms =
        attempt_budget_ms > 0.0 ? attempt_budget_ms : -1.0;

    Stopwatch attempt_watch(clock_);
    bool stream_opened = false;
    Result<xdb::QueryResult> result = [&]() -> Result<xdb::QueryResult> {
      const PreparedSubQuery* handle = nullptr;
      if (sub.compiled != nullptr) {
        auto it = prepared_by_node.find(node);
        if (it == prepared_by_node.end()) {
          const double prepare_start =
              tracer != nullptr ? tracer->NowMs() : 0.0;
          Result<PreparedSubQueryPtr> prep =
              cluster_->PrepareOnNode(node, sub.compiled);
          if (attempt_span != nullptr) {
            attempt_span->children.emplace_back("prepare");
            telemetry::TraceSpan& prepare_span =
                attempt_span->children.back();
            prepare_span.start_ms = prepare_start;
            prepare_span.duration_ms = tracer->NowMs() - prepare_start;
            if (prep.ok()) {
              prepare_span.AddTag("cache",
                                  (*prep)->cache_hit() ? "hit" : "miss");
              prepare_span.AddTag("compile_ms",
                                  std::to_string((*prep)->compile_ms()));
            } else {
              prepare_span.AddTag("status",
                                  StatusCodeName(prep.status().code()));
            }
          }
          // A failed prepare (e.g. the node went down after candidate
          // selection) flows through the normal retry/failover handling.
          if (!prep.ok()) return prep.status();
          ++out->prepares;
          if ((*prep)->cache_hit()) {
            ++out->plan_cache_hits;
          } else {
            ++out->plan_cache_misses;
          }
          out->compile_ms += (*prep)->compile_ms();
          it = prepared_by_node.emplace(node, std::move(*prep)).first;
        }
        handle = it->second.get();
      }
      if (rpc_sec > 0.0) {
        // Emulate the synchronous round trip to a remote DBMS node: the
        // worker blocks (holding no core) the way a real driver would
        // block on the wire. Overlapping these waits is the first win of
        // real parallelism.
        std::this_thread::sleep_for(std::chrono::duration<double>(rpc_sec));
      }
      if (options.stream != nullptr) {
        // Streaming attempt: open the node's block cursor, then forward
        // blocks into the channel as they arrive. Integrity and the
        // attempt budget are enforced per block; any failure here flows
        // through the normal retry/failover machinery, and the channel's
        // replay verification makes the next attempt's re-produced
        // prefix invisible to the consumer.
        Result<SubQueryStreamPtr> opened =
            handle != nullptr
                ? cluster_->ExecutePreparedStreamOnNode(node, *handle,
                                                        stall_budget_ms, exec)
                : cluster_->ExecuteStreamOnNode(node, sub.query,
                                                stall_budget_ms, exec);
        if (!opened.ok()) return opened.status();
        stream_opened = true;
        SubQueryStreamPtr stream = std::move(*opened);
        options.stream->BeginAttempt(index);
        for (;;) {
          xdb::ResultBlock block;
          Result<bool> more = stream->Next(&block);
          if (!more.ok()) return more.status();
          if (!*more) break;
          if (options.verify_response_digests && block.digest != 0 &&
              Fnv1a64(block.serialized) != block.digest) {
            ++out->corrupt_responses;
            counters.corrupt_responses->Add();
            if (attempt_span != nullptr) {
              attempt_span->AddTag("corrupt", "true");
            }
            return Status::Unavailable("corrupt response from node" +
                                       std::to_string(node) +
                                       " (digest mismatch)");
          }
          Status pushed = options.stream->Push(index, std::move(block));
          if (!pushed.ok()) return pushed;  // non-retryable by design
          if (attempt_budget_ms > 0.0 &&
              attempt_watch.ElapsedMillis() > attempt_budget_ms) {
            return Status::DeadlineExceeded(
                "attempt to node" + std::to_string(node) +
                " exceeded its budget (" +
                std::to_string(attempt_budget_ms) + " ms) mid-stream");
          }
        }
        // Clean end: the bytes went through the channel; the result
        // carries only the engine-side metrics.
        xdb::QueryResult done;
        done.metrics = stream->metrics();
        return done;
      }
      if (handle != nullptr) {
        return cluster_->ExecutePreparedOnNode(node, *handle,
                                               stall_budget_ms, exec);
      }
      return cluster_->ExecuteOnNode(node, sub.query, stall_budget_ms, exec);
    }();
    const double attempt_ms = attempt_watch.ElapsedMillis();

    // An attempt that reached the engine consumed one engine request —
    // track it whether or not the result survives, so node-side request
    // counters and outcome accounting conserve. The fault gate's
    // rejections (transient, down, circuit-open prepares) are retryable
    // kUnavailable and never touched the engine.
    // Streaming: an attempt whose stream *opened* reached the engine,
    // even if the stream later died mid-flight with a retryable error.
    const bool engine_served =
        result.ok() || stream_opened || !Retryable(result.status());
    if (engine_served) ++out->engine_requests;

    // End-to-end integrity: recompute the digest the node stamped before
    // the response crossed the (simulated) wire. A mismatch means the
    // bytes were mangled in flight — the engine's work happened (counted
    // above) but the result is unusable, so fold in its compile
    // accounting, discard it, and fail over as a retryable node fault. A
    // corrupt response must never be served.
    if (result.ok() && options.verify_response_digests &&
        result->response_digest != 0 &&
        Fnv1a64(result->serialized) != result->response_digest) {
      if (sub.compiled == nullptr) {
        out->compile_ms += result->metrics.compile_ms;
        out->plan_cache_hits += result->metrics.plan_cache_hits;
        out->plan_cache_misses += result->metrics.plan_cache_misses;
      }
      ++out->corrupt_responses;
      counters.corrupt_responses->Add();
      if (attempt_span != nullptr) attempt_span->AddTag("corrupt", "true");
      result = Status::Unavailable("corrupt response from node" +
                                   std::to_string(node) +
                                   " (digest mismatch)");
    }

    // (Streaming attempts enforce the budget per block instead: blocks
    // already forwarded through the channel cannot be discarded post hoc.)
    if (result.ok() && options.stream == nullptr && attempt_budget_ms > 0.0 &&
        attempt_ms > attempt_budget_ms) {
      // The node answered, but past its budget: a real client would have
      // hung up. Discard the result and treat as a timeout — after
      // folding in the engine-side work that DID happen (compile time,
      // plan-cache traffic on the string path), so discarded successes
      // leave no accounting hole.
      if (sub.compiled == nullptr) {
        out->compile_ms += result->metrics.compile_ms;
        out->plan_cache_hits += result->metrics.plan_cache_hits;
        out->plan_cache_misses += result->metrics.plan_cache_misses;
      }
      ++out->discarded_successes;
      result = Status::DeadlineExceeded(
          "attempt to node" + std::to_string(node) + " took " +
          std::to_string(attempt_ms) + " ms (budget " +
          std::to_string(attempt_budget_ms) + " ms)");
    }

    if (attempt_span != nullptr) {
      attempt_span->duration_ms = tracer->NowMs() - attempt_span->start_ms;
      attempt_span->AddTag(
          "status", StatusCodeName(result.ok() ? StatusCode::kOk
                                               : result.status().code()));
    }

    if (result.ok()) {
      if (sub.compiled == nullptr) {
        // String path: the node compiled (or plan-cache-served) inside
        // Execute; lift its accounting onto the outcome so both paths
        // report uniformly.
        out->compile_ms += result->metrics.compile_ms;
        out->plan_cache_hits += result->metrics.plan_cache_hits;
        out->plan_cache_misses += result->metrics.plan_cache_misses;
      }
      RecordSuccess(node);
      if (health_ != nullptr) health_->ReportSuccess(node);
      out->result = std::move(result);
      finish();
      return;
    }

    RecordFailure(node);
    // Health evidence: only faults attributable to the node (transient
    // rejections, timeouts, corrupt responses — the retryable set) raise
    // suspicion. Deterministic engine errors (parse failure, missing
    // collection) say nothing about node liveness.
    if (health_ != nullptr && Retryable(result.status())) {
      health_->ReportFailure(node);
    }
    last_error = result.status();
    if (last_error.code() == StatusCode::kDeadlineExceeded) {
      out->timed_out = true;
      ++out->timed_out_attempts;
    }
    if (!Retryable(last_error)) {
      // Deterministic engine errors (parse failure, missing collection,
      // ...) would fail identically on every replica: fail fast.
      out->result = std::move(result);
      finish();
      return;
    }
    if (!backoff_for_retry()) return;
  }

  out->result = Status(last_error.code(),
                       "sub-query failed after " +
                           std::to_string(out->attempts) +
                           " attempt(s): " + last_error.message());
  finish();
}

double Executor::Dispatch(const std::vector<SubQuery>& subqueries,
                          const DispatchOptions& options,
                          std::vector<SubQueryOutcome>* outcomes) {
  outcomes->clear();
  outcomes->resize(subqueries.size());
  const size_t n = subqueries.size();
  if (n == 0) return 0.0;
  EnsureBreakers(subqueries);
  ExecutorTelemetry::Get().dispatches->Add();
  Stopwatch watch(clock_);

  const size_t parallelism = options.parallelism;
  const size_t workers = parallelism == 0 ? n : std::min(parallelism, n);
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t cap = std::max(hw, cluster_->node_count());
  if (workers <= 1) {
    if (options.intra_node_parallelism > 1) {
      // Sequential fan-out, parallel nodes: the morsel workers each
      // engine spawns still come from the shared pool — make sure it has
      // threads to hand out (the engine's help-while-waiting coordinator
      // keeps an empty pool correct, just not parallel).
      EffectivePool().EnsureThreads(
          std::min(cap, options.intra_node_parallelism));
    }
    for (size_t i = 0; i < n; ++i) {
      RunOne(subqueries[i], i, options, watch, &(*outcomes)[i]);
    }
    return watch.ElapsedMillis();
  }

  // Shared-pool policy (see executor.h): run on the injected scheduler
  // pool when one is set, else the process-wide fallback. The pool is
  // grown (never shrunk) to serve this dispatch, bounded by
  // max(hardware threads, cluster nodes) — the index-claiming loop below
  // lets a smaller (or busy) pool drain any number of sub-queries.
  // Intra-node morsels borrow the same threads; growing toward the morsel
  // count (still under the cap) gives them somewhere to land without a
  // second pool.
  ThreadPool& pool = EffectivePool();
  pool.EnsureThreads(
      std::min(cap, std::max(workers, options.intra_node_parallelism)));
  const size_t pool_threads = pool.thread_count();
  ExecutorTelemetry::Get().pool_threads->Set(
      static_cast<double>(pool_threads));
  const size_t tasks = std::max<size_t>(1, std::min(workers, pool_threads));

  // `tasks` pool tasks, each pulling the next unclaimed sub-query index:
  // every outcome slot is written by exactly one thread, and concurrency
  // is capped at min(workers, pool size). Tasks never block on other
  // tasks (no nested Submit/Wait), so concurrent dispatches sharing the
  // pool drain FIFO without deadlock at any pool size.
  std::atomic<size_t> next{0};
  Latch done(tasks);
  for (size_t w = 0; w < tasks; ++w) {
    pool.Submit([this, &subqueries, &next, &done, &options, &watch,
                 outcomes, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        RunOne(subqueries[i], i, options, watch, &(*outcomes)[i]);
      }
      done.CountDown();
    });
  }
  done.Wait();
  return watch.ElapsedMillis();
}

}  // namespace partix::middleware
