#include "partix/publisher.h"

#include <string>

#include "fragmentation/fragmenter.h"

namespace partix::middleware {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

DocumentPtr ToWireFormat(const DocumentPtr& doc) {
  if (!doc->origin_tracking() || doc->empty()) return doc;
  auto out = std::make_shared<Document>(doc->pool(), doc->doc_name());
  out->CopySubtree(*doc, doc->root(), kNullNode);
  out->SetMetadata("px-src", doc->origin_doc());
  out->SetMetadata("px-root", std::to_string(doc->origin(doc->root())));
  std::string anc;
  for (const auto& [id, name] : doc->origin_ancestors()) {
    if (!anc.empty()) anc.push_back(',');
    anc += std::to_string(id) + ":" + name;
  }
  out->SetMetadata("px-anc", anc);
  return out;
}

Status DataPublisher::PublishCentralized(const xml::Collection& c,
                                         size_t node) {
  if (node >= cluster_->node_count()) {
    return Status::OutOfRange("node index out of range");
  }
  Driver& driver = cluster_->node(node);
  xdb::CollectionMeta meta;
  meta.schema = c.schema();
  meta.root_path = c.root_path();
  meta.kind = c.kind();
  PARTIX_RETURN_IF_ERROR(driver.CreateCollection(c.name(), meta));
  for (const DocumentPtr& doc : c.docs()) {
    PARTIX_RETURN_IF_ERROR(driver.StoreDocument(c.name(), *doc));
  }
  return catalog_->RegisterCentralized(c.name(), node);
}

Status DataPublisher::StoreFragments(
    const std::vector<xml::Collection>& fragments,
    const std::vector<FragmentPlacement>& placements) {
  for (const xml::Collection& frag_coll : fragments) {
    const FragmentPlacement* placement = nullptr;
    for (const FragmentPlacement& p : placements) {
      if (p.fragment == frag_coll.name()) {
        placement = &p;
        break;
      }
    }
    if (placement == nullptr) {
      return Status::InvalidArgument("fragment '" + frag_coll.name() +
                                     "' has no valid placement");
    }
    // Every replica gets a full copy, so the query service can fail over
    // without data movement.
    for (size_t node : placement->AllNodes()) {
      if (node >= cluster_->node_count()) {
        return Status::InvalidArgument(
            "fragment '" + frag_coll.name() + "' placed at node " +
            std::to_string(node) + ", but the cluster has " +
            std::to_string(cluster_->node_count()) + " node(s)");
      }
      Driver& driver = cluster_->node(node);
      xdb::CollectionMeta meta;
      meta.schema = frag_coll.schema();
      meta.root_path = frag_coll.root_path();
      meta.kind = frag_coll.kind();
      PARTIX_RETURN_IF_ERROR(
          driver.CreateCollection(frag_coll.name(), meta));
      for (const DocumentPtr& doc : frag_coll.docs()) {
        PARTIX_RETURN_IF_ERROR(
            driver.StoreDocument(frag_coll.name(), *ToWireFormat(doc)));
      }
    }
  }
  return Status::Ok();
}

Status DataPublisher::PublishFragmented(
    const xml::Collection& c, const frag::FragmentationSchema& schema,
    std::vector<FragmentPlacement> placements, size_t replication_factor) {
  if (schema.collection != c.name()) {
    return Status::InvalidArgument(
        "fragmentation schema is for collection '" + schema.collection +
        "', publishing '" + c.name() + "'");
  }
  if (placements.empty()) {
    if (replication_factor == 0 ||
        replication_factor > cluster_->node_count()) {
      return Status::InvalidArgument(
          "replication_factor " + std::to_string(replication_factor) +
          " must be in [1, " + std::to_string(cluster_->node_count()) +
          "]");
    }
    const size_t n = cluster_->node_count();
    for (size_t i = 0; i < schema.fragments.size(); ++i) {
      FragmentPlacement p{schema.fragments[i].name(), i % n};
      for (size_t r = 1; r < replication_factor; ++r) {
        p.backups.push_back((i + r) % n);
      }
      placements.push_back(std::move(p));
    }
  }
  PARTIX_ASSIGN_OR_RETURN(std::vector<xml::Collection> fragments,
                          frag::ApplyFragmentation(c, schema));
  PARTIX_RETURN_IF_ERROR(StoreFragments(fragments, placements));
  frag::FragmentationSchema registered = schema;
  return catalog_->Register(std::move(registered), std::move(placements));
}

}  // namespace partix::middleware
