#include "partix/publisher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/strings.h"
#include "fragmentation/fragmenter.h"
#include "xml/serializer.h"

namespace partix::middleware {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

DocumentPtr ToWireFormat(const DocumentPtr& doc) {
  if (!doc->origin_tracking() || doc->empty()) return doc;
  auto out = std::make_shared<Document>(doc->pool(), doc->doc_name());
  out->CopySubtree(*doc, doc->root(), kNullNode);
  out->SetMetadata("px-src", doc->origin_doc());
  out->SetMetadata("px-root", std::to_string(doc->origin(doc->root())));
  std::string anc;
  for (const auto& [id, name] : doc->origin_ancestors()) {
    if (!anc.empty()) anc.push_back(',');
    anc += std::to_string(id) + ":" + name;
  }
  out->SetMetadata("px-anc", anc);
  return out;
}

Status DataPublisher::PublishCentralized(const xml::Collection& c,
                                         size_t node) {
  if (node >= cluster_->node_count()) {
    return Status::OutOfRange("node index out of range");
  }
  xdb::CollectionMeta meta;
  meta.schema = c.schema();
  meta.root_path = c.root_path();
  meta.kind = c.kind();
  PARTIX_RETURN_IF_ERROR(
      cluster_->CreateCollectionOnNode(node, c.name(), meta));
  uint64_t serialized_bytes = 0;
  for (const DocumentPtr& doc : c.docs()) {
    std::string xml_bytes = xml::Serialize(*doc);
    serialized_bytes += xml_bytes.size();
    // Through the cluster's store data plane, like every publish: a store
    // is a write over the wire, subject to the node's fault profile.
    PARTIX_RETURN_IF_ERROR(cluster_->StoreSerializedOnNode(
        node, c.name(), doc->doc_name(), std::move(xml_bytes),
        doc->metadata()));
  }
  return catalog_->RegisterCentralized(c.name(), node, serialized_bytes);
}

Status DataPublisher::StoreFragments(
    const std::vector<xml::Collection>& fragments,
    std::vector<FragmentPlacement>& placements) {
  for (const xml::Collection& frag_coll : fragments) {
    FragmentPlacement* placement = nullptr;
    for (FragmentPlacement& p : placements) {
      if (p.fragment == frag_coll.name()) {
        placement = &p;
        break;
      }
    }
    if (placement == nullptr) {
      return Status::InvalidArgument("fragment '" + frag_coll.name() +
                                     "' has no valid placement");
    }
    // Serialize the wire documents once; every replica stores these exact
    // bytes, and the placement's content digest is computed from them —
    // so digest and stored copies agree by construction.
    std::vector<xdb::StoredDoc> wire_docs;
    wire_docs.reserve(frag_coll.docs().size());
    for (const DocumentPtr& doc : frag_coll.docs()) {
      DocumentPtr wire = ToWireFormat(doc);
      wire_docs.push_back(xdb::StoredDoc{
          wire->doc_name(), xml::Serialize(*wire), wire->metadata()});
    }
    // Digest in name order, matching Database::CollectionContentDigest.
    std::sort(wire_docs.begin(), wire_docs.end(),
              [](const xdb::StoredDoc& a, const xdb::StoredDoc& b) {
                return a.name < b.name;
              });
    uint64_t digest = Fnv1a64("");
    for (const xdb::StoredDoc& doc : wire_docs) {
      digest = Fnv1a64(doc.name, digest);
      digest = Fnv1a64(std::string_view("\0", 1), digest);
      digest = Fnv1a64(doc.xml, digest);
      digest = Fnv1a64(std::string_view("\0", 1), digest);
    }
    placement->content_digest = digest;
    // Record the fragment's serialized size next to the digest; the
    // scheduler's admission control estimates query footprints from it.
    uint64_t serialized_bytes = 0;
    for (const xdb::StoredDoc& doc : wire_docs) {
      serialized_bytes += doc.xml.size();
    }
    placement->serialized_bytes = serialized_bytes;
    // Every replica gets a full copy, so the query service can fail over
    // without data movement.
    for (size_t node : placement->AllNodes()) {
      if (node >= cluster_->node_count()) {
        return Status::InvalidArgument(
            "fragment '" + frag_coll.name() + "' placed at node " +
            std::to_string(node) + ", but the cluster has " +
            std::to_string(cluster_->node_count()) + " node(s)");
      }
      xdb::CollectionMeta meta;
      meta.schema = frag_coll.schema();
      meta.root_path = frag_coll.root_path();
      meta.kind = frag_coll.kind();
      PARTIX_RETURN_IF_ERROR(
          cluster_->CreateCollectionOnNode(node, frag_coll.name(), meta));
      for (const xdb::StoredDoc& doc : wire_docs) {
        PARTIX_RETURN_IF_ERROR(cluster_->StoreSerializedOnNode(
            node, frag_coll.name(), doc.name, doc.xml, doc.metadata));
      }
    }
  }
  return Status::Ok();
}

Status DataPublisher::ReplicateFragment(const std::string& fragment,
                                        size_t source, size_t target) {
  if (source >= cluster_->node_count() || target >= cluster_->node_count()) {
    return Status::OutOfRange("replica node index out of range");
  }
  if (source == target) {
    return Status::InvalidArgument(
        "cannot replicate '" + fragment + "' from node" +
        std::to_string(source) + " onto itself");
  }
  Driver& src = cluster_->node(source);
  if (!src.HasCollection(fragment)) {
    return Status::NotFound("node" + std::to_string(source) +
                            " holds no copy of '" + fragment + "'");
  }
  PARTIX_ASSIGN_OR_RETURN(xdb::CollectionMeta meta,
                          src.CollectionMetaOf(fragment));
  PARTIX_ASSIGN_OR_RETURN(std::vector<xdb::StoredDoc> docs,
                          src.ExportStoredDocs(fragment));
  if (cluster_->node(target).HasCollection(fragment)) {
    PARTIX_RETURN_IF_ERROR(cluster_->node(target).DropCollection(fragment));
  }
  PARTIX_RETURN_IF_ERROR(
      cluster_->CreateCollectionOnNode(target, fragment, std::move(meta)));
  for (xdb::StoredDoc& doc : docs) {
    PARTIX_RETURN_IF_ERROR(cluster_->StoreSerializedOnNode(
        target, fragment, std::move(doc.name), std::move(doc.xml),
        std::move(doc.metadata)));
  }
  return Status::Ok();
}

Status DataPublisher::PublishFragmented(
    const xml::Collection& c, const frag::FragmentationSchema& schema,
    std::vector<FragmentPlacement> placements, size_t replication_factor) {
  if (schema.collection != c.name()) {
    return Status::InvalidArgument(
        "fragmentation schema is for collection '" + schema.collection +
        "', publishing '" + c.name() + "'");
  }
  if (placements.empty()) {
    if (replication_factor == 0 ||
        replication_factor > cluster_->node_count()) {
      return Status::InvalidArgument(
          "replication_factor " + std::to_string(replication_factor) +
          " must be in [1, " + std::to_string(cluster_->node_count()) +
          "]");
    }
    const size_t n = cluster_->node_count();
    for (size_t i = 0; i < schema.fragments.size(); ++i) {
      FragmentPlacement p{schema.fragments[i].name(), i % n};
      for (size_t r = 1; r < replication_factor; ++r) {
        p.backups.push_back((i + r) % n);
      }
      placements.push_back(std::move(p));
    }
  }
  PARTIX_ASSIGN_OR_RETURN(std::vector<xml::Collection> fragments,
                          frag::ApplyFragmentation(c, schema));
  PARTIX_RETURN_IF_ERROR(StoreFragments(fragments, placements));
  frag::FragmentationSchema registered = schema;
  return catalog_->Register(std::move(registered), std::move(placements));
}

}  // namespace partix::middleware
