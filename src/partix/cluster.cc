#include "partix/cluster.h"

namespace partix::middleware {

ClusterSim::ClusterSim(size_t node_count, xdb::DatabaseOptions node_options,
                       NetworkModel network)
    : network_(network) {
  nodes_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<LocalXdbDriver>(
        "node" + std::to_string(i), node_options));
  }
  down_.assign(node_count, false);
}

void ClusterSim::SetNodeDown(size_t i, bool down) {
  if (i < down_.size()) down_[i] = down;
}

bool ClusterSim::IsNodeDown(size_t i) const {
  return i < down_.size() && down_[i];
}

void ClusterSim::DropAllCaches() {
  for (auto& node : nodes_) node->DropCaches();
}

}  // namespace partix::middleware
