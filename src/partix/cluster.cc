#include "partix/cluster.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace partix::middleware {

namespace {

/// Wraps a driver stream with one node's streaming fault knobs, all
/// deterministic: a per-block stall, a hard fail after N served blocks
/// (the mid-response node death failover must recover from), and — when
/// the open-time gate drew response corruption — one flipped character in
/// the first non-empty block, applied after the driver stamped that
/// block's digest so the mangling is detectable, exactly like the
/// materialized path's wire corruption.
class GatedStream : public SubQueryStream {
 public:
  GatedStream(SubQueryStreamPtr inner, size_t node,
              int64_t fail_after_blocks, double block_stall_ms,
              bool corrupt_response)
      : inner_(std::move(inner)),
        node_(node),
        fail_after_blocks_(fail_after_blocks),
        block_stall_ms_(block_stall_ms),
        corrupt_pending_(corrupt_response) {}

  Result<bool> Next(xdb::ResultBlock* out) override {
    if (fail_after_blocks_ >= 0 &&
        served_ >= static_cast<uint64_t>(fail_after_blocks_)) {
      return Status::Unavailable(
          "node" + std::to_string(node_) + " stream failed after " +
          std::to_string(fail_after_blocks_) + " block(s) (injected)");
    }
    if (block_stall_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(block_stall_ms_ / 1e3));
    }
    Result<bool> more = inner_->Next(out);
    if (!more.ok() || !*more) return more;
    ++served_;
    if (corrupt_pending_ && !out->serialized.empty()) {
      CorruptXmlText(&out->serialized, out->digest);
      corrupt_pending_ = false;
    }
    return more;
  }

  const xdb::QueryMetrics& metrics() const override {
    return inner_->metrics();
  }

 private:
  SubQueryStreamPtr inner_;
  size_t node_;
  int64_t fail_after_blocks_;
  double block_stall_ms_;
  bool corrupt_pending_;
  uint64_t served_ = 0;
};

}  // namespace

ClusterSim::ClusterSim(size_t node_count, xdb::DatabaseOptions node_options,
                       NetworkModel network)
    : network_(network) {
  nodes_.reserve(node_count);
  faults_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<LocalXdbDriver>(
        "node" + std::to_string(i), node_options));
    faults_.push_back(std::make_unique<NodeFaultState>(FaultProfile{}));
  }
}

Status ClusterSim::FaultGate(size_t i, double stall_budget_ms,
                             double* spike_ms, bool* corrupt_response,
                             bool* crash_restart) {
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  if (f.profile.down) {
    return Status::Unavailable("node" + std::to_string(i) + " is down");
  }
  if (f.profile.fail_after_requests >= 0 &&
      f.engine_requests >=
          static_cast<uint64_t>(f.profile.fail_after_requests)) {
    return Status::Unavailable(
        "node" + std::to_string(i) + " failed after " +
        std::to_string(f.profile.fail_after_requests) + " request(s)");
  }
  if (f.profile.fail_first_requests > 0 &&
      f.engine_requests <
          static_cast<uint64_t>(f.profile.fail_first_requests)) {
    ++f.engine_requests;
    return Status::Unavailable("injected transient error at node" +
                               std::to_string(i) + " (fail-first)");
  }
  if (f.profile.transient_error_rate > 0.0 &&
      f.rng.Bernoulli(f.profile.transient_error_rate)) {
    return Status::Unavailable("injected transient error at node" +
                               std::to_string(i));
  }
  if (f.profile.crash_restart_rate > 0.0 &&
      f.rng.Bernoulli(f.profile.crash_restart_rate)) {
    // The node process dies and restarts: the request is lost (retryable)
    // and the restarted node comes back with cold caches. The caller
    // drops the caches outside this mutex.
    *crash_restart = true;
    return Status::Unavailable("node" + std::to_string(i) +
                               " crash-restarted (injected)");
  }
  double spike = 0.0;
  if (f.profile.latency_spike_rate > 0.0 &&
      f.rng.Bernoulli(f.profile.latency_spike_rate)) {
    spike = f.profile.latency_spike_ms;
  }
  if (f.profile.response_corruption_rate > 0.0 &&
      f.rng.Bernoulli(f.profile.response_corruption_rate)) {
    *corrupt_response = true;
  }
  if (spike > 0.0 && stall_budget_ms >= 0.0 && spike > stall_budget_ms) {
    // The caller's attempt budget expires before the spike ends: a real
    // client hangs up at the budget, so the request never reaches the
    // engine and does not count as an engine request. Every knob above
    // already drew, so a capped run keeps the exact RNG schedule of an
    // uncapped one.
    *spike_ms = stall_budget_ms;
    *corrupt_response = false;  // no response to corrupt
    return Status::DeadlineExceeded(
        "injected latency spike (" + std::to_string(spike) + " ms) at node" +
        std::to_string(i) + " exceeded the attempt budget (" +
        std::to_string(stall_budget_ms) + " ms)");
  }
  *spike_ms = spike;
  ++f.engine_requests;
  return Status::Ok();
}

Result<xdb::QueryResult> ClusterSim::ExecuteGated(
    size_t i, double stall_budget_ms,
    const std::function<Result<xdb::QueryResult>()>& run) {
  double spike_ms = 0.0;
  bool corrupt_response = false;
  bool crash_restart = false;
  Status gate =
      FaultGate(i, stall_budget_ms, &spike_ms, &corrupt_response,
                &crash_restart);
  if (!gate.ok()) {
    // Cache drop and stalls happen outside the fault mutex: a restarting
    // or stalling node must not block fault draws for concurrent requests
    // to the same node.
    if (crash_restart) nodes_[i]->DropCaches();
    if (spike_ms > 0.0) {
      // Budget-capped spike: the client hangs on for the budget, then
      // gives up — fail fast instead of sleeping out a result nobody
      // will accept.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spike_ms / 1e3));
    }
    return gate;
  }
  if (spike_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(spike_ms / 1e3));
  }
  Result<xdb::QueryResult> result = run();
  if (result.ok() && corrupt_response) {
    // Corrupt *after* the node stamped its digest: this is the wire
    // mangling the bytes, not the engine producing a wrong answer.
    CorruptXmlText(&result->serialized, result->response_digest);
  }
  return result;
}

Result<SubQueryStreamPtr> ClusterSim::ExecuteStreamGated(
    size_t i, double stall_budget_ms,
    const std::function<Result<SubQueryStreamPtr>()>& open) {
  double spike_ms = 0.0;
  bool corrupt_response = false;
  bool crash_restart = false;
  Status gate = FaultGate(i, stall_budget_ms, &spike_ms, &corrupt_response,
                          &crash_restart);
  if (!gate.ok()) {
    if (crash_restart) nodes_[i]->DropCaches();
    if (spike_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spike_ms / 1e3));
    }
    return gate;
  }
  if (spike_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(spike_ms / 1e3));
  }
  // Snapshot the deterministic streaming knobs under the fault mutex at
  // open time: a control-plane profile swap mid-stream must not tear them.
  int64_t fail_after_blocks = -1;
  double block_stall_ms = 0.0;
  {
    NodeFaultState& f = *faults_[i];
    std::lock_guard<std::mutex> lock(f.mu);
    fail_after_blocks = f.profile.fail_stream_after_blocks;
    block_stall_ms = f.profile.stream_block_stall_ms;
  }
  Result<SubQueryStreamPtr> stream = open();
  if (!stream.ok()) return stream;
  return SubQueryStreamPtr(std::make_unique<GatedStream>(
      std::move(*stream), i, fail_after_blocks, block_stall_ms,
      corrupt_response));
}

Result<xdb::QueryResult> ClusterSim::ExecuteOnNode(
    size_t i, const std::string& query, double stall_budget_ms,
    const xdb::ExecParams& exec) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  return ExecuteGated(i, stall_budget_ms,
                      [&] { return nodes_[i]->Execute(query, exec); });
}

Result<PreparedSubQueryPtr> ClusterSim::PrepareOnNode(
    size_t i, const xquery::CompiledQueryPtr& compiled) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  // Liveness only — no stochastic fault draw, no engine-request count:
  // preparation must not perturb deterministic fault schedules (see
  // header contract).
  if (IsNodeDown(i)) {
    return Status::Unavailable("node" + std::to_string(i) + " is down");
  }
  return nodes_[i]->Prepare(compiled);
}

Result<xdb::QueryResult> ClusterSim::ExecutePreparedOnNode(
    size_t i, const PreparedSubQuery& prepared, double stall_budget_ms,
    const xdb::ExecParams& exec) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  return ExecuteGated(i, stall_budget_ms, [&] {
    return nodes_[i]->ExecutePrepared(prepared, exec);
  });
}

Result<SubQueryStreamPtr> ClusterSim::ExecuteStreamOnNode(
    size_t i, const std::string& query, double stall_budget_ms,
    const xdb::ExecParams& exec) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  return ExecuteStreamGated(i, stall_budget_ms, [&] {
    return nodes_[i]->ExecuteStream(query, exec);
  });
}

Result<SubQueryStreamPtr> ClusterSim::ExecutePreparedStreamOnNode(
    size_t i, const PreparedSubQuery& prepared, double stall_budget_ms,
    const xdb::ExecParams& exec) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  return ExecuteStreamGated(i, stall_budget_ms, [&] {
    return nodes_[i]->ExecutePreparedStream(prepared, exec);
  });
}

Status ClusterSim::CreateCollectionOnNode(size_t i,
                                          const std::string& collection,
                                          xdb::CollectionMeta meta) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  if (IsNodeDown(i)) {
    return Status::Unavailable("node" + std::to_string(i) + " is down");
  }
  return nodes_[i]->CreateCollection(collection, std::move(meta));
}

Status ClusterSim::StoreSerializedOnNode(
    size_t i, const std::string& collection, std::string doc_name,
    std::string xml, std::map<std::string, std::string> metadata) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  {
    NodeFaultState& f = *faults_[i];
    std::lock_guard<std::mutex> lock(f.mu);
    if (f.profile.down ||
        (f.profile.fail_after_requests >= 0 &&
         f.engine_requests >=
             static_cast<uint64_t>(f.profile.fail_after_requests))) {
      return Status::Unavailable("node" + std::to_string(i) + " is down");
    }
    if (f.profile.storage_corruption_rate > 0.0 &&
        f.rng.Bernoulli(f.profile.storage_corruption_rate)) {
      // Silent bit rot: the write "succeeds" with flipped bytes and no
      // error — only the scrubber's digest cross-check can notice.
      CorruptXmlText(&xml, f.engine_requests);
    }
  }
  return nodes_[i]->StoreSerializedDocument(collection, std::move(doc_name),
                                            std::move(xml),
                                            std::move(metadata));
}

void ClusterSim::SetFaultProfile(size_t i, FaultProfile profile) {
  if (i >= faults_.size()) return;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  f.profile = profile;
  f.engine_requests = 0;
  f.rng = Rng(profile.seed);
}

void ClusterSim::SetNodeDown(size_t i, bool down) {
  if (i >= faults_.size()) return;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  f.profile.down = down;
}

bool ClusterSim::IsNodeDown(size_t i) const {
  if (i >= faults_.size()) return false;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  return f.profile.down ||
         (f.profile.fail_after_requests >= 0 &&
          f.engine_requests >=
              static_cast<uint64_t>(f.profile.fail_after_requests));
}

uint64_t ClusterSim::NodeRequestCount(size_t i) const {
  if (i >= faults_.size()) return 0;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  return f.engine_requests;
}

void ClusterSim::DropAllCaches() {
  for (auto& node : nodes_) node->DropCaches();
}

}  // namespace partix::middleware
