#include "partix/cluster.h"

#include <chrono>
#include <thread>

namespace partix::middleware {

ClusterSim::ClusterSim(size_t node_count, xdb::DatabaseOptions node_options,
                       NetworkModel network)
    : network_(network) {
  nodes_.reserve(node_count);
  faults_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<LocalXdbDriver>(
        "node" + std::to_string(i), node_options));
    faults_.push_back(std::make_unique<NodeFaultState>(FaultProfile{}));
  }
}

Status ClusterSim::FaultGate(size_t i, double* spike_ms) {
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  if (f.profile.down) {
    return Status::Unavailable("node" + std::to_string(i) + " is down");
  }
  if (f.profile.fail_after_requests >= 0 &&
      f.engine_requests >=
          static_cast<uint64_t>(f.profile.fail_after_requests)) {
    return Status::Unavailable(
        "node" + std::to_string(i) + " failed after " +
        std::to_string(f.profile.fail_after_requests) + " request(s)");
  }
  if (f.profile.fail_first_requests > 0 &&
      f.engine_requests <
          static_cast<uint64_t>(f.profile.fail_first_requests)) {
    ++f.engine_requests;
    return Status::Unavailable("injected transient error at node" +
                               std::to_string(i) + " (fail-first)");
  }
  if (f.profile.transient_error_rate > 0.0 &&
      f.rng.Bernoulli(f.profile.transient_error_rate)) {
    return Status::Unavailable("injected transient error at node" +
                               std::to_string(i));
  }
  if (f.profile.latency_spike_rate > 0.0 &&
      f.rng.Bernoulli(f.profile.latency_spike_rate)) {
    *spike_ms = f.profile.latency_spike_ms;
  }
  ++f.engine_requests;
  return Status::Ok();
}

Result<xdb::QueryResult> ClusterSim::ExecuteOnNode(size_t i,
                                                   const std::string& query) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  double spike_ms = 0.0;
  PARTIX_RETURN_IF_ERROR(FaultGate(i, &spike_ms));
  if (spike_ms > 0.0) {
    // Stall outside the fault mutex: a slow node must not block fault
    // draws for concurrent requests to the same node.
    std::this_thread::sleep_for(std::chrono::duration<double>(spike_ms / 1e3));
  }
  return nodes_[i]->Execute(query);
}

Result<PreparedSubQueryPtr> ClusterSim::PrepareOnNode(
    size_t i, const xquery::CompiledQueryPtr& compiled) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  // Liveness only — no stochastic fault draw, no engine-request count:
  // preparation must not perturb deterministic fault schedules (see
  // header contract).
  if (IsNodeDown(i)) {
    return Status::Unavailable("node" + std::to_string(i) + " is down");
  }
  return nodes_[i]->Prepare(compiled);
}

Result<xdb::QueryResult> ClusterSim::ExecutePreparedOnNode(
    size_t i, const PreparedSubQuery& prepared) {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node " + std::to_string(i) +
                              " out of range");
  }
  double spike_ms = 0.0;
  PARTIX_RETURN_IF_ERROR(FaultGate(i, &spike_ms));
  if (spike_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(spike_ms / 1e3));
  }
  return nodes_[i]->ExecutePrepared(prepared);
}

void ClusterSim::SetFaultProfile(size_t i, FaultProfile profile) {
  if (i >= faults_.size()) return;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  f.profile = profile;
  f.engine_requests = 0;
  f.rng = Rng(profile.seed);
}

void ClusterSim::SetNodeDown(size_t i, bool down) {
  if (i >= faults_.size()) return;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  f.profile.down = down;
}

bool ClusterSim::IsNodeDown(size_t i) const {
  if (i >= faults_.size()) return false;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  return f.profile.down ||
         (f.profile.fail_after_requests >= 0 &&
          f.engine_requests >=
              static_cast<uint64_t>(f.profile.fail_after_requests));
}

uint64_t ClusterSim::NodeRequestCount(size_t i) const {
  if (i >= faults_.size()) return 0;
  NodeFaultState& f = *faults_[i];
  std::lock_guard<std::mutex> lock(f.mu);
  return f.engine_requests;
}

void ClusterSim::DropAllCaches() {
  for (auto& node : nodes_) node->DropCaches();
}

}  // namespace partix::middleware
