#ifndef PARTIX_PARTIX_REPAIR_H_
#define PARTIX_PARTIX_REPAIR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "partix/catalog.h"
#include "telemetry/trace.h"

namespace partix::middleware {

class ClusterSim;
class DataPublisher;
class HealthMonitor;

/// One replica copy created (or attempted) by a repair round.
struct RepairAction {
  std::string collection;
  std::string fragment;
  size_t source = 0;
  size_t target = 0;
  bool ok = false;
  std::string error;  // empty when ok
};

/// Outcome of one RepairPlanner::RepairOnce round.
struct RepairReport {
  /// Placements found holding at least one dead replica.
  size_t under_replicated = 0;
  /// Replica copies restored and digest-verified.
  size_t repaired = 0;
  /// Repair attempts that failed (no live source, replication error,
  /// post-copy digest mismatch). The placement keeps its old replica set
  /// for these — a later round retries.
  size_t failed = 0;
  std::vector<RepairAction> actions;
  /// Catalog version installed by the atomic cutover; 0 when nothing
  /// changed (no cutover happened).
  uint64_t catalog_version = 0;
  /// Span tree of the round (root "repair", one child per action) when a
  /// tracer was installed; empty otherwise.
  telemetry::TraceSpan span;
};

/// Detects under-replicated fragments and restores their replication
/// factor onto healthy nodes.
///
/// One RepairOnce round: take a catalog snapshot; treat every node the
/// health monitor has declared dead as lost; for each placement that
/// lists a lost replica, copy the fragment from a live, digest-verified
/// source replica onto the least-loaded healthy nodes that hold no copy,
/// verify each new copy's digest, and rebuild the placement (dead
/// replicas dropped, surviving order preserved, new replicas appended;
/// a dead primary is succeeded by the first surviving replica). The
/// rebuilt catalog is then Install()ed on the versioned catalog in one
/// atomic cutover — in-flight queries keep routing on the snapshot they
/// started with, repaired placements serve queries admitted afterwards.
///
/// Thread-safety: RepairOnce is safe to run concurrently with query
/// traffic (it reads snapshots, writes through the thread-safe cluster
/// data plane, and swaps the catalog atomically). Do not run two repair
/// rounds concurrently with each other; set_tracer is coordinator-only.
class RepairPlanner {
 public:
  RepairPlanner(ClusterSim* cluster, DataPublisher* publisher,
                HealthMonitor* health, VersionedCatalog* catalog)
      : cluster_(cluster),
        publisher_(publisher),
        health_(health),
        catalog_(catalog) {}

  /// Spans the next RepairOnce against this tracer (nullptr disables).
  void set_tracer(const telemetry::Tracer* tracer) { tracer_ = tracer; }

  RepairReport RepairOnce();

 private:
  ClusterSim* cluster_;
  DataPublisher* publisher_;
  HealthMonitor* health_;
  VersionedCatalog* catalog_;
  const telemetry::Tracer* tracer_ = nullptr;
};

/// Outcome of one Scrubber::ScrubOnce round.
struct ScrubReport {
  /// Replica copies digest-checked this round.
  size_t checked = 0;
  /// Placements skipped because the catalog records no expected digest
  /// (pre-digest deployments).
  size_t skipped_no_digest = 0;
  /// Copies whose live digest diverged from the catalog's (silent bit
  /// rot, torn writes) — each was quarantined and repair was attempted.
  size_t divergent = 0;
  /// Divergent copies rebuilt from a clean replica and verified; their
  /// node's quarantine was lifted.
  size_t repaired = 0;
  /// Divergent copies that could not be repaired (no clean source, or
  /// the rebuilt copy failed verification). The node stays quarantined.
  size_t failed = 0;
};

/// Anti-entropy scrubber: cross-checks every live replica's fragment
/// digest against the catalog's published digest, quarantines nodes
/// holding divergent copies (the executor routes around them), rebuilds
/// the copy from a clean replica, verifies it, and lifts the quarantine.
/// Detects what the write path cannot: corruption at rest, after the
/// store acknowledged.
///
/// Thread-safety: ScrubOnce is safe against concurrent query traffic
/// (same reasoning as RepairPlanner); one scrub round at a time.
/// Start/Stop run ScrubOnce on a background thread and are
/// coordinator-only.
class Scrubber {
 public:
  Scrubber(ClusterSim* cluster, DataPublisher* publisher,
           HealthMonitor* health, VersionedCatalog* catalog)
      : cluster_(cluster),
        publisher_(publisher),
        health_(health),
        catalog_(catalog) {}
  ~Scrubber();

  ScrubReport ScrubOnce();

  /// Background scrubbing every `interval_ms` until Stop() (or
  /// destruction). Idempotent.
  void Start(double interval_ms = 50.0);
  void Stop();

 private:
  ClusterSim* cluster_;
  DataPublisher* publisher_;
  HealthMonitor* health_;
  VersionedCatalog* catalog_;

  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
  std::thread scrubber_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_REPAIR_H_
