#include "partix/query_service.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/strings.h"
#include "engine/database.h"
#include "partix/executor.h"
#include "partix/stream.h"
#include "telemetry/metrics.h"
#include "xml/document.h"
#include "xquery/parser.h"

namespace partix::middleware {

namespace {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

/// One fetched fragment document plus its parsed wire metadata.
struct FetchedDoc {
  DocumentPtr doc;
  std::string src;                       // px-src (or own name)
  uint64_t root_id = 0;                  // px-root
  std::vector<std::pair<uint64_t, std::string>> ancestors;  // px-anc
  bool has_wire_ids = false;
};

Result<FetchedDoc> ParseWireDoc(DocumentPtr doc) {
  FetchedDoc out;
  out.doc = std::move(doc);
  const Document& d = *out.doc;
  if (d.empty()) {
    return Status::InvalidArgument("empty fragment document");
  }
  out.src = d.doc_name();
  // Reconstruction IDs travel as out-of-band document metadata so they
  // never appear in query results.
  std::string src = d.GetMetadata("px-src");
  if (!src.empty()) {
    out.src = src;
    out.has_wire_ids = true;
    int64_t v = 0;
    if (!ParseInt64(d.GetMetadata("px-root"), &v)) {
      return Status::Corruption("bad px-root metadata on '" +
                                d.doc_name() + "'");
    }
    out.root_id = static_cast<uint64_t>(v);
    // Materialize the metadata string: SplitSkipEmpty returns views into
    // it, and a temporary would die at the end of the range-init
    // expression, leaving them dangling.
    const std::string ancestors = d.GetMetadata("px-anc");
    for (std::string_view entry : SplitSkipEmpty(ancestors, ',')) {
      size_t colon = entry.find(':');
      if (colon == std::string_view::npos) {
        return Status::Corruption("bad px-anc metadata");
      }
      int64_t id = 0;
      if (!ParseInt64(entry.substr(0, colon), &id)) {
        return Status::Corruption("bad px-anc id");
      }
      out.ancestors.emplace_back(static_cast<uint64_t>(id),
                                 std::string(entry.substr(colon + 1)));
    }
  }
  return out;
}

/// Copies the attributes and children of `src_root` under `dst_parent`.
void CopyContentInto(Document* dst, NodeId dst_parent, const Document& src,
                     NodeId src_root) {
  for (NodeId c = src.first_child(src_root); c != kNullNode;
       c = src.next_sibling(c)) {
    dst->CopySubtree(src, c, dst_parent);
  }
}

/// Joins the fragment documents of one source document (sorted by root
/// id) into a single document approximating the original structure:
/// scaffolding ancestors are re-created, containers with equal
/// reconstruction ids are merged, fragment subtrees are attached in
/// reconstruction-id order.
Result<DocumentPtr> JoinGroup(const std::string& source,
                              std::vector<FetchedDoc> docs,
                              const std::shared_ptr<xml::NamePool>& pool) {
  // Stable: fragments sharing a reconstruction id (FragMode2 siblings
  // merged into one container) must keep their arrival order, or the
  // merged children permute across runs.
  std::stable_sort(docs.begin(), docs.end(),
                   [](const FetchedDoc& a, const FetchedDoc& b) {
                     return a.root_id < b.root_id;
                   });
  auto out = std::make_shared<Document>(pool, source);
  std::map<uint64_t, NodeId> containers;  // reconstruction id -> built node

  for (const FetchedDoc& fd : docs) {
    const Document& d = *fd.doc;
    NodeId frag_root = d.root();
    // Ensure the ancestor chain exists.
    NodeId parent = kNullNode;
    for (const auto& [id, name] : fd.ancestors) {
      auto it = containers.find(id);
      if (it == containers.end()) {
        NodeId built = parent == kNullNode && out->empty()
                           ? out->CreateRoot(name)
                           : out->AppendElement(
                                 parent == kNullNode ? out->root() : parent,
                                 name);
        containers.emplace(id, built);
        parent = built;
      } else {
        parent = it->second;
      }
    }
    auto it = containers.find(fd.root_id);
    if (it != containers.end()) {
      // Merge into an existing container (FragMode2 siblings, or a base
      // fragment arriving after a scaffold was created).
      CopyContentInto(out.get(), it->second, d, frag_root);
      continue;
    }
    NodeId attached;
    if (parent == kNullNode) {
      if (out->empty()) {
        attached = out->CreateRoot(d.name(frag_root));
      } else {
        return Status::Corruption(
            "fragment of '" + source +
            "' has no ancestor chain but a root already exists");
      }
    } else {
      attached = out->AppendElement(parent, d.name(frag_root));
    }
    containers.emplace(fd.root_id, attached);
    CopyContentInto(out.get(), attached, d, frag_root);
  }
  if (out->empty()) {
    return Status::Corruption("join of '" + source + "' produced nothing");
  }
  return DocumentPtr(out);
}

/// Canonical "fragment at node" token used by every error message and
/// missing-fragment report: `fragment@node<i>`.
std::string FragAtNode(const std::string& fragment, size_t node) {
  return fragment + "@node" + std::to_string(node);
}

/// The replica list of a sub-query (primary-only when unset).
std::vector<size_t> ReplicasOrPrimary(const SubQuery& sub) {
  if (!sub.replicas.empty()) return sub.replicas;
  return {sub.node};
}

/// Coordinator-side counters and phase latency histograms.
struct ServiceTelemetry {
  telemetry::Counter* queries;
  telemetry::Counter* query_failures;
  telemetry::Counter* partial_results;
  telemetry::Histogram* decompose_ms;
  telemetry::Histogram* compose_ms;
  telemetry::Histogram* query_wall_ms;
  telemetry::Histogram* ttfb_ms;

  static const ServiceTelemetry& Get() {
    static const ServiceTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      ServiceTelemetry out;
      out.queries = registry.GetCounter("partix_queries_total");
      out.query_failures = registry.GetCounter("partix_query_failures_total");
      out.partial_results =
          registry.GetCounter("partix_partial_results_total");
      out.decompose_ms = registry.GetHistogram("partix_decompose_ms");
      out.compose_ms = registry.GetHistogram("partix_compose_ms");
      out.query_wall_ms = registry.GetHistogram("partix_query_wall_ms");
      out.ttfb_ms = registry.GetHistogram("partix_ttfb_ms");
      return out;
    }();
    return t;
  }
};

/// Shifts every span start in a subtree by `delta_ms` (used to splice the
/// decompose phase in front of a span tree recorded by ExecutePlan).
void ShiftSpans(telemetry::TraceSpan* span, double delta_ms) {
  span->start_ms += delta_ms;
  for (telemetry::TraceSpan& child : span->children) {
    ShiftSpans(&child, delta_ms);
  }
}

/// Coordinator-wide gauge of result bytes held by in-flight executions
/// (partial results awaiting composition + composed answers not yet
/// returned). Add()-deltas aggregate across concurrent executions.
telemetry::Gauge* InflightResultBytesGauge() {
  static telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
      "partix_inflight_result_bytes");
  return g;
}

/// RAII accounting of one execution's in-flight result bytes: every
/// Add() moves the gauge and charges the governor's pinned consumer (when
/// attached); the destructor releases everything on every return path.
class InflightResultCharge {
 public:
  InflightResultCharge(memory::MemoryGovernor* governor, int id)
      : governor_(governor), id_(id) {}
  ~InflightResultCharge() {
    InflightResultBytesGauge()->Add(-static_cast<double>(bytes_));
    if (governor_ != nullptr && bytes_ > 0) governor_->Release(id_, bytes_);
  }
  InflightResultCharge(const InflightResultCharge&) = delete;
  InflightResultCharge& operator=(const InflightResultCharge&) = delete;

  void Add(size_t bytes) {
    if (bytes == 0) return;
    bytes_ += bytes;
    InflightResultBytesGauge()->Add(static_cast<double>(bytes));
    if (governor_ != nullptr) governor_->Charge(id_, bytes);
  }

  /// Early release of bytes no longer held (a partial drained into the
  /// composed answer, a staged lane discarded on failure). Without this
  /// the coordinator's peak charge double-counts every result byte:
  /// once as a partial and again inside the composed answer.
  void Release(size_t bytes) {
    if (bytes == 0) return;
    bytes = std::min(bytes, bytes_);
    bytes_ -= bytes;
    InflightResultBytesGauge()->Add(-static_cast<double>(bytes));
    if (governor_ != nullptr) governor_->Release(id_, bytes);
  }

 private:
  memory::MemoryGovernor* governor_;
  int id_;
  size_t bytes_ = 0;
};

}  // namespace

QueryService::~QueryService() { set_memory_governor(nullptr); }

void QueryService::set_memory_governor(memory::MemoryGovernor* governor) {
  if (governor_ != nullptr) {
    governor_->UnregisterConsumer(governor_id_);
    governor_id_ = -1;
  }
  governor_ = governor;
  if (governor_ != nullptr) {
    governor_id_ = governor_->RegisterConsumer(
        "inflight_results", memory::MemoryGovernor::kPriorityPinned,
        nullptr);
  }
}

Result<DistributedPlan> QueryService::Decompose(
    const std::string& query,
    std::shared_ptr<const DistributionCatalog>* held) const {
  if (versioned_ == nullptr) return decomposer_.Decompose(query);
  // Versioned mode: plan against one immutable snapshot. The caller
  // parks it in `*held` for the duration of planning; the plan itself
  // carries values (fragment names, node indexes, rewritten queries),
  // so execution needs no catalog at all.
  *held = versioned_->Snapshot();
  return QueryDecomposer(held->get()).Decompose(query);
}

Result<DistributedResult> QueryService::Execute(
    const std::string& query, const ExecutionOptions& options) {
  // Compile-once contract: this coordinator thread parses `query` exactly
  // once, in Decompose. Sub-queries are structural rewrites of that AST
  // and ComposeJoin reuses the compiled original, so no execution path
  // below re-parses on this thread. (Thread-local counter: worker-thread
  // parses — none are expected either — would not mask a coordinator
  // regression here.)
  const uint64_t parses_before = xquery::ThreadParseCount();
  Stopwatch watch(clock_);
  std::shared_ptr<const DistributionCatalog> snapshot;
  PARTIX_ASSIGN_OR_RETURN(DistributedPlan plan, Decompose(query, &snapshot));
  const double decompose_ms = watch.ElapsedMillis();
  ServiceTelemetry::Get().decompose_ms->Observe(decompose_ms);
  PARTIX_ASSIGN_OR_RETURN(DistributedResult result,
                          ExecutePlan(plan, options));
  assert(xquery::ThreadParseCount() - parses_before <= 1 &&
         "middleware execution parsed the query more than once");
  (void)parses_before;
  // The paper measures "the time between the moment PartiX receives the
  // query until final result composition": planning is part of it.
  result.decompose_ms = decompose_ms;
  result.response_ms += decompose_ms;
  result.wall_ms += decompose_ms;
  result.ttfb_ms += decompose_ms;
  if (result.traced) {
    // Splice the decompose phase in front of the span tree ExecutePlan
    // recorded: shift its phases right, prepend a decompose span.
    for (telemetry::TraceSpan& child : result.trace.children) {
      ShiftSpans(&child, decompose_ms);
    }
    telemetry::TraceSpan decompose_span;
    decompose_span.name = "decompose";
    decompose_span.start_ms = 0.0;
    decompose_span.duration_ms = decompose_ms;
    decompose_span.AddTag("subqueries",
                          std::to_string(plan.subqueries.size()));
    result.trace.children.insert(result.trace.children.begin(),
                                 std::move(decompose_span));
    result.trace.duration_ms = result.wall_ms;
  }
  return result;
}

Result<std::string> QueryService::Explain(const std::string& query) const {
  std::shared_ptr<const DistributionCatalog> snapshot;
  PARTIX_ASSIGN_OR_RETURN(DistributedPlan plan, Decompose(query, &snapshot));
  std::string out = "collection:   " + plan.collection + "\n";
  out += "composition:  " + std::string(CompositionName(plan.composition)) +
         "\n";
  out += "sub-queries:  " + std::to_string(plan.subqueries.size());
  if (plan.pruned_fragments > 0) {
    out += "  (" + std::to_string(plan.pruned_fragments) +
           " fragment(s) pruned by data localization)";
  }
  out += "\n";
  for (const SubQuery& sub : plan.subqueries) {
    const std::vector<size_t> replicas = ReplicasOrPrimary(sub);
    size_t route = sub.node;
    std::string annotation;
    if (replicas.size() > 1) {
      bool found = false;
      for (size_t r : replicas) {
        if (r < cluster_->node_count() && !cluster_->IsNodeDown(r)) {
          route = r;
          found = true;
          break;
        }
      }
      if (!found) {
        annotation = "  [all replicas down]";
      } else if (route != sub.node) {
        annotation = "  [primary node" + std::to_string(sub.node) +
                     " down -> failover]";
      }
    }
    out += "  node " + std::to_string(route) + "  " + sub.fragment;
    if (replicas.size() > 1) {
      out += "  [replicas:";
      for (size_t i = 0; i < replicas.size(); ++i) {
        out += (i == 0 ? " " : ",") + std::string("node") +
               std::to_string(replicas[i]);
      }
      out += "]";
    }
    out += annotation + "\n    " + sub.query + "\n";
  }
  for (const std::string& note : plan.notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

Result<std::string> QueryService::ExplainAnalyze(
    const std::string& query, const ExecutionOptions& options) {
  PARTIX_ASSIGN_OR_RETURN(std::string plan_text, Explain(query));
  ExecutionOptions traced = options;
  traced.trace = true;
  PARTIX_ASSIGN_OR_RETURN(DistributedResult result, Execute(query, traced));
  std::string out = std::move(plan_text);
  out += "\nexecution (wall " + FormatNumber(result.wall_ms) + " ms, " +
         std::to_string(result.result_items) + " item(s), retries " +
         std::to_string(result.retries) + ", failovers " +
         std::to_string(result.failovers) + ", compile " +
         FormatNumber(result.compile_ms) + " ms, plan cache " +
         std::to_string(result.plan_cache_hits) + " hit(s) / " +
         std::to_string(result.plan_cache_misses) + " miss(es)):\n";
  for (const SubQueryStats& stats : result.subqueries) {
    out += "  " + FragAtNode(stats.fragment, stats.node) + ": plan cache " +
           (stats.plan_cache_hits > 0 ? "hit" : "miss") + " (" +
           std::to_string(stats.plan_cache_bytes) +
           " bytes cached), compile " + FormatNumber(stats.compile_ms) +
           " ms\n";
  }
  out += telemetry::RenderSpanTree(result.trace);
  return out;
}

Result<DistributedResult> QueryService::ExecutePlan(
    const DistributedPlan& plan, const ExecutionOptions& options) {
  if (plan.subqueries.empty()) {
    return Status::InvalidArgument("plan has no sub-queries");
  }
  const ServiceTelemetry& counters = ServiceTelemetry::Get();
  counters.queries->Add();
  DistributedResult out;
  out.pruned_fragments = plan.pruned_fragments;
  Stopwatch wall_watch(clock_);

  // The tracer (when tracing) anchors every span of this execution to one
  // epoch on the service's clock; the executor's workers time their spans
  // against the same tracer.
  telemetry::Tracer tracer(clock_);
  if (options.trace) {
    out.traced = true;
    out.trace.name = "query";
    out.trace.start_ms = 0.0;
    out.trace.AddTag("composition",
                     std::string(CompositionName(plan.composition)));
  }
  // Finalizes the root span and coordinator metrics on every return path
  // that produced a DistributedResult.
  auto finish = [&] {
    counters.query_wall_ms->Observe(out.wall_ms);
    if (out.traced) {
      out.trace.duration_ms = tracer.NowMs();
      out.trace.AddTag("complete", out.complete ? "true" : "false");
    }
  };

  if (options.cold_caches) cluster_->DropAllCaches();

  // Validate routing before dispatching anything, and report *every*
  // problem at once: an operator restoring a cluster needs the full
  // picture, not whichever unreachable fragment happened to come first.
  // Tokens are `fragment@node<i>` in every error path.
  std::string out_of_range;
  for (const SubQuery& sub : plan.subqueries) {
    for (size_t node : ReplicasOrPrimary(sub)) {
      if (node >= cluster_->node_count()) {
        if (!out_of_range.empty()) out_of_range += ", ";
        out_of_range += FragAtNode(sub.fragment, node);
      }
    }
  }
  if (!out_of_range.empty()) {
    counters.query_failures->Add();
    return Status::OutOfRange("sub-query node(s) out of range: " +
                              out_of_range);
  }

  // Liveness: a fragment is unreachable only when *every* replica is
  // down — the executor routes around individual down nodes.
  std::vector<const SubQuery*> dispatched;
  std::string unreachable;
  size_t unreachable_count = 0;
  for (const SubQuery& sub : plan.subqueries) {
    bool any_live = false;
    for (size_t node : ReplicasOrPrimary(sub)) {
      if (!cluster_->IsNodeDown(node)) {
        any_live = true;
        break;
      }
    }
    if (any_live) {
      dispatched.push_back(&sub);
      continue;
    }
    ++unreachable_count;
    for (size_t node : ReplicasOrPrimary(sub)) {
      if (!unreachable.empty()) unreachable += ", ";
      unreachable += FragAtNode(sub.fragment, node);
    }
    out.missing_fragments.push_back(sub.fragment);
  }
  if (unreachable_count > 0 &&
      options.partial_results == PartialResultPolicy::kFail) {
    counters.query_failures->Add();
    return Status::Unavailable(std::to_string(unreachable_count) +
                               " needed fragment(s) unreachable: " +
                               unreachable);
  }

  // Fan the live sub-queries out across the executor's worker threads
  // (the response-time *model* stays what it always was; `wall_ms` is
  // what really elapsed).
  std::vector<SubQuery> live;
  live.reserve(dispatched.size());
  for (const SubQuery* sub : dispatched) live.push_back(*sub);
  DispatchOptions dispatch_options;
  dispatch_options.parallelism = options.parallelism;
  dispatch_options.intra_node_parallelism = options.intra_node_parallelism;
  dispatch_options.retry = options.retry;
  dispatch_options.verify_response_digests = options.verify_integrity;
  if (options.trace) dispatch_options.tracer = &tracer;
  const double dispatch_start_ms = options.trace ? tracer.NowMs() : 0.0;
  std::vector<SubQueryOutcome> outcomes;

  // In-flight result accounting: result bytes held on this coordinator
  // (streamed staging, materialized partials, the composed answer) are
  // charged against the governor's pinned consumer until this execution
  // returns.
  InflightResultCharge inflight(governor_, governor_id_);

  // Streaming compose state, filled by the consumer loop below and read
  // by the composition switch; untouched on the materialized path.
  double ttfb_ms = -1.0;
  std::string streamed;                 // union: the answer, built in-stream
  uint64_t streamed_items = 0;
  std::vector<xdb::QueryResult> staged_lanes;  // sum: digits; join: items
  std::vector<bool> lane_ok;

  if (options.streaming) {
    // Streaming pipeline: workers push fixed-size result blocks into a
    // bounded channel while this thread drains lanes in plan order and
    // composes incrementally. Dispatch runs on a dedicated thread so the
    // coordinator thread is free to consume. Deadlock-freedom: the
    // consumer drains lanes in plan order, workers claim sub-queries in
    // ascending index order, and the lane under the consumer's cursor is
    // exempt from the buffer cap (see stream.h).
    staged_lanes.resize(live.size());
    lane_ok.assign(live.size(), false);
    BlockChannel channel(live.size(), options.stream_buffer_bytes,
                         governor_, governor_id_);
    dispatch_options.stream = &channel;
    dispatch_options.stream_block_items = options.stream_block_items;
    std::thread dispatcher([&] {
      cluster_->executor().Dispatch(live, dispatch_options, &outcomes);
    });
    // Union under kFail appends straight into the answer: any sub-query
    // failure fails the whole query, so no committed byte can outlive a
    // lane that later fails. Every other mode stages per lane and commits
    // only on clean lane end — the commit barrier that keeps a sub-query
    // which failed over (or failed outright) mid-stream from leaving a
    // mixed prefix in the answer.
    const bool direct_union =
        plan.composition == Composition::kUnion &&
        options.partial_results == PartialResultPolicy::kFail;
    bool abort_compose = false;
    for (size_t i = 0; i < live.size() && !abort_compose; ++i) {
      std::string staged;
      uint64_t staged_items = 0;
      size_t staged_bytes = 0;
      uint64_t lane_items = 0;
      bool lane_emitted = false;
      bool lane_failed = false;
      for (;;) {
        xdb::ResultBlock block;
        Result<bool> more = channel.Pull(i, &block);
        if (!more.ok()) {
          lane_failed = true;
          break;
        }
        if (!*more) break;
        const size_t bytes = block.serialized.size();
        switch (plan.composition) {
          case Composition::kUnion:
            if (direct_union) {
              lane_items += block.items.size();
              if (bytes > 0) {
                if (!lane_emitted && !streamed.empty()) {
                  streamed.push_back('\n');
                }
                lane_emitted = true;
                if (ttfb_ms < 0.0) ttfb_ms = wall_watch.ElapsedMillis();
                inflight.Add(bytes);
                streamed += block.serialized;
              }
            } else {
              inflight.Add(bytes);
              staged_bytes += bytes;
              staged += block.serialized;
              staged_items += block.items.size();
            }
            break;
          case Composition::kSumCounts:
            inflight.Add(bytes);
            staged_bytes += bytes;
            staged_lanes[i].serialized += block.serialized;
            break;
          case Composition::kJoinReconstruct:
            // The join consumes items, not bytes; like the materialized
            // join, the staged item trees are not byte-charged.
            for (xquery::Item& item : block.items) {
              staged_lanes[i].items.push_back(std::move(item));
            }
            break;
        }
      }
      if (lane_failed) {
        // Commit barrier: drop everything this lane staged. Under direct
        // union the whole query fails below, so stop composing.
        inflight.Release(staged_bytes);
        staged_lanes[i] = xdb::QueryResult();
        if (direct_union) abort_compose = true;
        continue;
      }
      lane_ok[i] = true;
      if (plan.composition == Composition::kUnion) {
        if (direct_union) {
          if (lane_emitted) streamed_items += lane_items;
        } else if (!staged.empty()) {
          if (!streamed.empty()) streamed.push_back('\n');
          if (ttfb_ms < 0.0) ttfb_ms = wall_watch.ElapsedMillis();
          streamed += staged;
          streamed_items += staged_items;
        }
        // An all-empty lane contributes neither bytes nor items, matching
        // the materialized union.
      }
    }
    // Unblock any producers still running (remaining lanes after an
    // abort, replay tails), then wait for the executor to finish filling
    // the outcome slots.
    for (size_t i = 0; i < live.size(); ++i) channel.DrainDiscard(i);
    dispatcher.join();
    out.stream_blocks = channel.consumed();
    dispatch_options.stream = nullptr;  // channel dies with this scope
  } else {
    cluster_->executor().Dispatch(live, dispatch_options, &outcomes);
  }
  if (options.trace) {
    // Workers filled disjoint outcome slots; assemble them under one
    // dispatch phase span in plan order.
    telemetry::TraceSpan dispatch_span;
    dispatch_span.name = "dispatch";
    dispatch_span.start_ms = dispatch_start_ms;
    dispatch_span.duration_ms = tracer.NowMs() - dispatch_start_ms;
    dispatch_span.AddTag("parallelism", std::to_string(options.parallelism));
    dispatch_span.children.reserve(outcomes.size());
    for (SubQueryOutcome& o : outcomes) {
      dispatch_span.children.push_back(std::move(o.span));
    }
    out.trace.children.push_back(std::move(dispatch_span));
  }
  out.parallelism = options.parallelism == 0
                        ? std::max<size_t>(1, live.size())
                        : std::max<size_t>(
                              1, std::min(options.parallelism, live.size()));

  // Fault-tolerance accounting, over every dispatched sub-query (failed
  // ones included: their retries happened).
  for (const SubQueryOutcome& o : outcomes) {
    if (o.attempts > 1) out.retries += o.attempts - 1;
    out.failovers += o.failovers;
    if (o.timed_out) ++out.timed_out_subqueries;
    out.corrupt_responses += o.corrupt_responses;
    out.engine_requests += o.engine_requests;
    out.discarded_successes += o.discarded_successes;
    out.compile_ms += o.compile_ms;
    out.plan_cache_hits += o.plan_cache_hits;
    out.plan_cache_misses += o.plan_cache_misses;
  }

  // Per-sub-query error aggregation: one failed node must not hide the
  // others' failures. Each entry names the fragment at the node that
  // produced (or last refused) the result.
  std::string failures;
  StatusCode failure_code = StatusCode::kOk;
  size_t failed = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const Result<xdb::QueryResult>& r = outcomes[i].result;
    if (r.ok()) continue;
    ++failed;
    if (failure_code == StatusCode::kOk) failure_code = r.status().code();
    if (!failures.empty()) failures += "; ";
    failures += FragAtNode(live[i].fragment, outcomes[i].node) + ": " +
                r.status().ToString();
  }
  if (failed > 0) {
    if (options.partial_results == PartialResultPolicy::kFail) {
      counters.query_failures->Add();
      return Status(failure_code,
                    std::to_string(failed) + " of " +
                        std::to_string(live.size()) +
                        " sub-queries failed: " + failures);
    }
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].result.ok()) {
        out.missing_fragments.push_back(live[i].fragment);
      }
    }
  }

  std::vector<xdb::QueryResult> partials;
  partials.reserve(live.size());
  uint64_t total_result_bytes = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    Result<xdb::QueryResult>& result = outcomes[i].result;
    if (!result.ok()) continue;
    SubQueryStats stats;
    stats.fragment = live[i].fragment;
    stats.node = outcomes[i].node;
    stats.elapsed_ms = result->metrics.elapsed_ms;
    stats.wall_ms = outcomes[i].wall_ms;
    stats.result_bytes = result->metrics.result_bytes;
    stats.docs_parsed = result->metrics.docs_parsed;
    stats.attempts = outcomes[i].attempts;
    stats.failovers = outcomes[i].failovers;
    stats.corrupt_responses = outcomes[i].corrupt_responses;
    stats.engine_requests = outcomes[i].engine_requests;
    stats.timed_out_attempts = outcomes[i].timed_out_attempts;
    stats.discarded_successes = outcomes[i].discarded_successes;
    stats.compile_ms = outcomes[i].compile_ms;
    stats.plan_cache_hits = outcomes[i].plan_cache_hits;
    stats.plan_cache_misses = outcomes[i].plan_cache_misses;
    stats.plan_cache_bytes = result->metrics.plan_cache_bytes;
    out.slowest_node_ms = std::max(out.slowest_node_ms, stats.elapsed_ms);
    out.sum_node_ms += stats.elapsed_ms;
    total_result_bytes += stats.result_bytes;
    out.subqueries.push_back(std::move(stats));
    if (!options.streaming) partials.push_back(std::move(*result));
  }
  // Materialized path: every partial is now held at once, so charge the
  // lot; the streaming path charged its (bounded) staging block-by-block
  // as it consumed the channel.
  if (!options.streaming) inflight.Add(total_result_bytes);
  if (!out.missing_fragments.empty()) {
    // Report missing fragments in plan order regardless of whether they
    // were skipped (unreachable) or failed after dispatch.
    std::set<std::string> missing(out.missing_fragments.begin(),
                                  out.missing_fragments.end());
    out.missing_fragments.clear();
    for (const SubQuery& sub : plan.subqueries) {
      if (missing.count(sub.fragment) != 0) {
        out.missing_fragments.push_back(sub.fragment);
      }
    }
  }
  out.complete = out.missing_fragments.empty();
  if (!out.complete) counters.partial_results->Add();

  // Transmission: dispatching the sub-queries + shipping partial results
  // to the coordinator.
  const NetworkModel& net = cluster_->network();
  out.transmission_ms =
      1e3 * (static_cast<double>(live.size()) * net.latency_sec +
             static_cast<double>(total_result_bytes) /
                 net.bandwidth_bytes_per_sec);

  // Composition.
  Stopwatch compose_watch(clock_);
  const double compose_start_ms = options.trace ? tracer.NowMs() : 0.0;
  switch (plan.composition) {
    case Composition::kUnion: {
      if (options.streaming) {
        // Already composed in-stream; this is the commit of the answer.
        out.serialized = std::move(streamed);
        out.result_items = streamed_items;
        break;
      }
      for (xdb::QueryResult& partial : partials) {
        if (partial.serialized.empty()) continue;
        if (!out.serialized.empty()) out.serialized.push_back('\n');
        out.serialized += partial.serialized;
        out.result_items += partial.metrics.result_items;
        // A partial drained into the answer no longer needs its own
        // charge (or its buffer): without this release the peak charge
        // double-counts every result byte.
        inflight.Release(partial.serialized.size());
        std::string().swap(partial.serialized);
      }
      break;
    }
    case Composition::kSumCounts: {
      double sum = 0.0;
      if (options.streaming) {
        for (size_t i = 0; i < staged_lanes.size(); ++i) {
          if (!lane_ok[i]) continue;
          double v = 0.0;
          if (!ParseDouble(staged_lanes[i].serialized, &v)) {
            return Status::Internal(
                "sum composition over a non-numeric partial result: '" +
                staged_lanes[i].serialized + "'");
          }
          sum += v;
        }
      } else {
        for (xdb::QueryResult& partial : partials) {
          double v = 0.0;
          if (!ParseDouble(partial.serialized, &v)) {
            return Status::Internal(
                "sum composition over a non-numeric partial result: '" +
                partial.serialized + "'");
          }
          sum += v;
          inflight.Release(partial.serialized.size());
        }
      }
      out.serialized = FormatNumber(sum);
      out.result_items = 1;
      break;
    }
    case Composition::kJoinReconstruct: {
      if (options.streaming) {
        for (size_t i = 0; i < staged_lanes.size(); ++i) {
          if (lane_ok[i]) partials.push_back(std::move(staged_lanes[i]));
        }
      } else {
        // The join reads the fetched items, not their serialized bytes:
        // release those before reconstruction starts allocating.
        for (xdb::QueryResult& partial : partials) {
          inflight.Release(partial.serialized.size());
          std::string().swap(partial.serialized);
        }
      }
      PARTIX_ASSIGN_OR_RETURN(
          out.serialized,
          ComposeJoin(plan, std::move(partials), &out.result_items));
      break;
    }
  }
  out.result_bytes = out.serialized.size();
  // The composed answer is held until this frame returns. Streaming
  // union already charged its bytes as they were appended.
  if (!(options.streaming && plan.composition == Composition::kUnion)) {
    inflight.Add(out.result_bytes);
  }
  out.composition_ms = compose_watch.ElapsedMillis();
  counters.compose_ms->Observe(out.composition_ms);
  // TTFB: streaming union stamps the first committed byte up in the
  // consumer loop; everywhere else the answer exists only now.
  if (ttfb_ms < 0.0) ttfb_ms = wall_watch.ElapsedMillis();
  out.ttfb_ms = ttfb_ms;
  counters.ttfb_ms->Observe(out.ttfb_ms);
  if (options.trace) {
    telemetry::TraceSpan compose_span;
    compose_span.name = "compose";
    compose_span.start_ms = compose_start_ms;
    compose_span.duration_ms = tracer.NowMs() - compose_start_ms;
    compose_span.AddTag("kind",
                        std::string(CompositionName(plan.composition)));
    out.trace.children.push_back(std::move(compose_span));
  }

  out.response_ms = out.slowest_node_ms + out.composition_ms +
                    (options.include_transmission ? out.transmission_ms
                                                  : 0.0);
  out.wall_ms = wall_watch.ElapsedMillis();
  finish();
  return out;
}

Result<std::string> QueryService::ComposeJoin(
    const DistributedPlan& plan, std::vector<xdb::QueryResult> partials,
    uint64_t* result_items) {
  // A scratch engine hosts the joined documents under the original
  // collection name; the original query then runs unchanged.
  xdb::DatabaseOptions options;
  options.cache_capacity_bytes = size_t{256} << 20;
  xdb::Database scratch(options);
  PARTIX_RETURN_IF_ERROR(scratch.CreateCollection(plan.collection));

  // Group fetched documents by source document.
  std::map<std::string, std::vector<FetchedDoc>> groups;
  for (xdb::QueryResult& partial : partials) {
    for (const xquery::Item& item : partial.items) {
      if (!item.IsNode()) {
        return Status::Internal(
            "fetch sub-query returned a non-node item");
      }
      const xquery::NodeRef& ref = item.AsNode();
      if (ref.node != xml::kDocumentNode &&
          (ref.doc->empty() || ref.node != ref.doc->root())) {
        return Status::Internal(
            "fetch sub-query returned a non-document node");
      }
      PARTIX_ASSIGN_OR_RETURN(FetchedDoc fd, ParseWireDoc(ref.doc));
      groups[fd.src].push_back(std::move(fd));
    }
  }

  for (auto& [source, docs] : groups) {
    bool wire = false;
    for (const FetchedDoc& fd : docs) wire = wire || fd.has_wire_ids;
    if (!wire && docs.size() == 1) {
      // Whole-document fragment (horizontal fetch): store as-is.
      PARTIX_RETURN_IF_ERROR(
          scratch.StoreDocument(plan.collection, *docs[0].doc));
      continue;
    }
    PARTIX_ASSIGN_OR_RETURN(DocumentPtr joined,
                            JoinGroup(source, std::move(docs),
                                      scratch.pool()));
    PARTIX_RETURN_IF_ERROR(scratch.StoreDocument(plan.collection, *joined));
  }

  // Reuse the plan's compiled original query: the scratch engine analyzes
  // the shared AST without re-parsing. Hand-built plans without a
  // compiled form fall back to the string path.
  xdb::QueryResult final_result;
  if (plan.compiled != nullptr) {
    PARTIX_ASSIGN_OR_RETURN(xdb::PrepareOutcome prepared,
                            scratch.Prepare(plan.compiled));
    PARTIX_ASSIGN_OR_RETURN(final_result,
                            scratch.ExecutePrepared(*prepared.plan));
  } else {
    PARTIX_ASSIGN_OR_RETURN(final_result,
                            scratch.Execute(plan.original_query));
  }
  *result_items = final_result.metrics.result_items;
  return final_result.serialized;
}

}  // namespace partix::middleware
