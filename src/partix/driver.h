#ifndef PARTIX_PARTIX_DRIVER_H_
#define PARTIX_PARTIX_DRIVER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/database.h"

namespace partix::middleware {

/// The PartiX Driver (paper §4): a uniform interface between the
/// middleware and one XQuery-enabled DBMS node. Any XML DBMS that
/// processes XQuery can participate; the only build here wraps the
/// embedded xdb engine (the eXist stand-in), but the query service is
/// written against this interface.
class Driver {
 public:
  virtual ~Driver() = default;

  virtual Status CreateCollection(const std::string& name,
                                  xdb::CollectionMeta meta) = 0;
  virtual Status StoreDocument(const std::string& collection,
                               const xml::Document& doc) = 0;
  virtual Result<xdb::QueryResult> Execute(const std::string& query) = 0;

  /// Drops parsed-document caches (cold-start emulation for benchmarks).
  virtual void DropCaches() = 0;

  /// Human-readable identification for logs.
  virtual std::string Describe() const = 0;
};

/// Driver for an in-process xdb::Database instance.
class LocalXdbDriver : public Driver {
 public:
  explicit LocalXdbDriver(std::string name,
                          xdb::DatabaseOptions options = {});

  Status CreateCollection(const std::string& name,
                          xdb::CollectionMeta meta) override;
  Status StoreDocument(const std::string& collection,
                       const xml::Document& doc) override;
  Result<xdb::QueryResult> Execute(const std::string& query) override;
  void DropCaches() override;
  std::string Describe() const override;

  xdb::Database& database() { return db_; }

 private:
  std::string name_;
  xdb::Database db_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_DRIVER_H_
