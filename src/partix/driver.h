#ifndef PARTIX_PARTIX_DRIVER_H_
#define PARTIX_PARTIX_DRIVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "xquery/compiled_query.h"

namespace partix::middleware {

/// A node-side prepared statement: the driver-specific artifact handed
/// back by Driver::Prepare. Executing through it skips parse and static
/// analysis entirely, which is what lets the executor pay compilation at
/// most once per (sub-query, node) across retries and replica failovers.
///
/// Thread-safety: immutable once returned; safe to share across threads.
/// A handle is only valid on the driver that produced it (it may wrap
/// engine- or connection-specific state).
class PreparedSubQuery {
 public:
  virtual ~PreparedSubQuery() = default;

  /// True when the node served preparation from its plan cache.
  bool cache_hit() const { return cache_hit_; }
  /// Node-side compile cost (ms); 0 on cache hits.
  double compile_ms() const { return compile_ms_; }

 protected:
  bool cache_hit_ = false;
  double compile_ms_ = 0.0;
};

using PreparedSubQueryPtr = std::shared_ptr<const PreparedSubQuery>;

/// A pull-based streamed sub-query response: the driver-side face of the
/// batched result pipeline. Blocks arrive in result order; their
/// serializations concatenate to exactly what the materialized Execute
/// would have returned, and each block carries a driver-stamped digest so
/// the executor can verify integrity block-by-block. metrics() is
/// complete once Next() has returned false.
///
/// Thread contract: NOT thread-safe, and (for lock-bound drivers like
/// LocalXdbDriver) the stream holds node-side locks from open to
/// destruction — create, drain, and destroy it on ONE thread. Dropping a
/// stream early is legal and releases node resources.
class SubQueryStream {
 public:
  virtual ~SubQueryStream() = default;

  /// Produces the next block into `*out`. Returns false at end of
  /// stream; an error ends the stream.
  virtual Result<bool> Next(xdb::ResultBlock* out) = 0;

  /// Engine-side metrics accumulated so far; complete after the stream
  /// is drained.
  virtual const xdb::QueryMetrics& metrics() const = 0;
};

using SubQueryStreamPtr = std::unique_ptr<SubQueryStream>;

/// The PartiX Driver (paper §4): a uniform interface between the
/// middleware and one XQuery-enabled DBMS node. Any XML DBMS that
/// processes XQuery can participate; the only build here wraps the
/// embedded xdb engine (the eXist stand-in), but the query service is
/// written against this interface.
///
/// Thread-safety contract: implementations must tolerate concurrent
/// Execute/Prepare/ExecutePrepared/DropCaches calls from executor worker
/// threads — a node is "one DBMS", and one DBMS accepts requests from
/// many connections at once. Under the multi-query scheduler those
/// workers serve *different queries*: queries on the same node may run
/// concurrently (LocalXdbDriver admits readers in parallel and only
/// serializes writes, like a real DBMS's MGL), and per-node fairness is
/// the scheduler's admission gate, not a driver mutex.
class Driver {
 public:
  virtual ~Driver() = default;

  virtual Status CreateCollection(const std::string& name,
                                  xdb::CollectionMeta meta) = 0;
  virtual Status StoreDocument(const std::string& collection,
                               const xml::Document& doc) = 0;

  /// Stores pre-serialized XML with out-of-band metadata, byte-for-byte
  /// as given. This is the replication path: publisher and repair ship
  /// `xdb::StoredDoc` triples so every replica's stored bytes (and
  /// content digest) match the source exactly.
  virtual Status StoreSerializedDocument(
      const std::string& collection, std::string doc_name, std::string xml,
      std::map<std::string, std::string> metadata) = 0;

  /// Executes a query. Implementations stamp
  /// `QueryResult::response_digest` (FNV-1a of the serialized result)
  /// node-side before the response crosses the wire, so the executor can
  /// detect in-flight corruption end-to-end. `exec` carries per-call
  /// execution knobs (intra-node morsel parallelism); drivers that cannot
  /// honor them run sequentially — results are identical either way.
  virtual Result<xdb::QueryResult> Execute(
      const std::string& query, const xdb::ExecParams& exec = {}) = 0;

  /// Compiles (or fetches from the node's plan cache) a prepared handle
  /// for a query the middleware already compiled. The handle is reusable
  /// for any number of ExecutePrepared calls on this driver.
  virtual Result<PreparedSubQueryPtr> Prepare(
      const xquery::CompiledQueryPtr& compiled) = 0;

  /// Executes a handle obtained from this driver's Prepare. Pays no parse
  /// and no static analysis (`metrics.compile_ms == 0`).
  virtual Result<xdb::QueryResult> ExecutePrepared(
      const PreparedSubQuery& prepared, const xdb::ExecParams& exec = {}) = 0;

  /// Streaming forms of Execute/ExecutePrepared: a pull-based block
  /// cursor instead of one materialized response. Blocks are digest-
  /// stamped individually; the concatenation is byte-identical to the
  /// materialized call. For ExecutePreparedStream the handle must outlive
  /// the stream.
  virtual Result<SubQueryStreamPtr> ExecuteStream(
      const std::string& query, const xdb::ExecParams& exec = {}) = 0;
  virtual Result<SubQueryStreamPtr> ExecutePreparedStream(
      const PreparedSubQuery& prepared, const xdb::ExecParams& exec = {}) = 0;

  /// Drops parsed-document caches (cold-start emulation for benchmarks).
  virtual void DropCaches() = 0;

  // ---- Replica repair / anti-entropy surface ----

  /// True when the node holds `collection`.
  virtual bool HasCollection(const std::string& collection) = 0;

  /// Content digest of a collection's stored bytes (name-ordered FNV-1a,
  /// see xdb::Database::CollectionContentDigest). The scrubber compares
  /// this across replicas against the catalog's published digest.
  virtual Result<uint64_t> CollectionDigest(const std::string& collection) = 0;

  /// The collection's metadata (schema binding), copied — repair recreates
  /// the collection on the target node with the same binding.
  virtual Result<xdb::CollectionMeta> CollectionMetaOf(
      const std::string& collection) = 0;

  /// Every stored document as raw (name, xml, metadata) triples in name
  /// order: the payload replica repair copies between nodes.
  virtual Result<std::vector<xdb::StoredDoc>> ExportStoredDocs(
      const std::string& collection) = 0;

  /// Drops a collection (quarantine-and-rebuild path of the scrubber).
  virtual Status DropCollection(const std::string& collection) = 0;

  /// Human-readable identification for logs.
  virtual std::string Describe() const = 0;
};

/// Driver for an in-process xdb::Database instance.
///
/// Thread-safe for the Driver interface with reader-writer semantics: the
/// query surface (Execute/Prepare/ExecutePrepared and the repair-side
/// reads) holds a shared lock, so any number of executor workers — and
/// the morsel workers a query fans out inside the engine — read the node
/// concurrently; DDL and document loading take the lock exclusively.
/// True cross-node parallelism is unchanged: distinct nodes share no
/// mutable state (each engine has its own name pool, stores, caches,
/// indexes). Lock queueing is observable per class via the
/// partix_driver_{read,write}_lock_wait_ms histograms.
class LocalXdbDriver : public Driver {
 public:
  explicit LocalXdbDriver(std::string name,
                          xdb::DatabaseOptions options = {});

  Status CreateCollection(const std::string& name,
                          xdb::CollectionMeta meta) override;
  Status StoreDocument(const std::string& collection,
                       const xml::Document& doc) override;
  Status StoreSerializedDocument(
      const std::string& collection, std::string doc_name, std::string xml,
      std::map<std::string, std::string> metadata) override;
  Result<xdb::QueryResult> Execute(const std::string& query,
                                   const xdb::ExecParams& exec = {}) override;
  Result<PreparedSubQueryPtr> Prepare(
      const xquery::CompiledQueryPtr& compiled) override;
  Result<xdb::QueryResult> ExecutePrepared(
      const PreparedSubQuery& prepared,
      const xdb::ExecParams& exec = {}) override;
  Result<SubQueryStreamPtr> ExecuteStream(
      const std::string& query, const xdb::ExecParams& exec = {}) override;
  Result<SubQueryStreamPtr> ExecutePreparedStream(
      const PreparedSubQuery& prepared,
      const xdb::ExecParams& exec = {}) override;
  void DropCaches() override;
  bool HasCollection(const std::string& collection) override;
  Result<uint64_t> CollectionDigest(const std::string& collection) override;
  Result<xdb::CollectionMeta> CollectionMetaOf(
      const std::string& collection) override;
  Result<std::vector<xdb::StoredDoc>> ExportStoredDocs(
      const std::string& collection) override;
  Status DropCollection(const std::string& collection) override;
  std::string Describe() const override;

  /// Unsynchronized access to the embedded engine, for deployment
  /// persistence and tests: coordinator-thread-only, and only while no
  /// dispatch is in flight.
  xdb::Database& database() { return db_; }

 private:
  std::string name_;
  /// Readers (queries, repair reads) shared; writers (DDL, loads) exclusive.
  mutable std::shared_mutex mu_;
  xdb::Database db_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_DRIVER_H_
