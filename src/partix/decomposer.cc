#include "partix/decomposer.h"

#include <map>
#include <optional>
#include <set>

#include "common/strings.h"
#include "xpath/predicate.h"
#include "xquery/ast.h"
#include "xquery/compiled_query.h"

namespace partix::middleware {

namespace {

using frag::FragmentDef;
using frag::FragmentKind;
using frag::HybridMode;
using xpath::CompareOp;
using xpath::Predicate;
using xquery::AxisStep;
using xquery::BinaryOp;
using xquery::ContextItem;
using xquery::Expr;
using xquery::ExprPtr;
using xquery::FlworExpr;
using xquery::ForLetClause;
using xquery::FunctionCall;
using xquery::PathExpr;
using xquery::StringLit;
using xquery::VarRef;

// ---------------------------------------------------------------------
// Query mining
// ---------------------------------------------------------------------

/// What the decomposer learned about a query.
struct Mined {
  std::set<std::string> collections;
  /// Positive conjunctive predicates over full (document-root-absolute)
  /// paths.
  std::vector<Predicate> constraints;
  /// Every full path the query touches.
  std::vector<xpath::Path> touched;
  /// False when the query uses constructs the miner cannot track; plans
  /// then fall back to all-fragments / join.
  bool analyzable = true;
  /// Name of a top-level single-argument aggregate ("count", "sum", ...)
  /// or empty.
  std::string top_aggregate;
};

std::optional<std::string> AsCollectionCall(const Expr& e) {
  if (!e.Is<FunctionCall>()) return std::nullopt;
  const auto& f = e.As<FunctionCall>();
  if (f.name != "collection" && f.name != "doc") return std::nullopt;
  if (f.args.size() != 1 || !f.args[0]->Is<StringLit>()) return std::nullopt;
  return f.args[0]->As<StringLit>().value;
}

/// Extracts the literal string of a string/integer literal expression.
std::optional<std::string> AsLiteral(const Expr& e) {
  if (e.Is<StringLit>()) return e.As<StringLit>().value;
  if (e.Is<xquery::NumberLit>()) {
    return FormatNumber(e.As<xquery::NumberLit>().value);
  }
  return std::nullopt;
}

CompareOp ToCompareOp(BinaryOp::Op op) {
  switch (op) {
    case BinaryOp::Op::kEq:
      return CompareOp::kEq;
    case BinaryOp::Op::kNe:
      return CompareOp::kNe;
    case BinaryOp::Op::kLt:
      return CompareOp::kLt;
    case BinaryOp::Op::kLe:
      return CompareOp::kLe;
    case BinaryOp::Op::kGt:
      return CompareOp::kGt;
    default:
      return CompareOp::kGe;
  }
}

/// Walks a query AST collecting collections, touched full paths, and
/// conjunctive predicate constraints.
class Miner {
 public:
  Mined Run(const Expr& root) {
    if (root.Is<FunctionCall>()) {
      const auto& f = root.As<FunctionCall>();
      if (f.args.size() == 1 &&
          (f.name == "count" || f.name == "sum" || f.name == "avg" ||
           f.name == "min" || f.name == "max")) {
        mined_.top_aggregate = f.name;
      }
    }
    Walk(root);
    return std::move(mined_);
  }

 private:
  /// Resolves a path expression to full steps from the document root.
  /// Returns nullopt when the source is not a tracked variable or a
  /// collection call. `within_predicate_base`: base steps when resolving
  /// relative paths inside a step predicate.
  std::optional<std::vector<xpath::Step>> FullSteps(
      const PathExpr& p, const std::vector<xpath::Step>* predicate_base) {
    std::vector<xpath::Step> base;
    if (p.source == nullptr) {
      // Absolute path: only meaningful inside a predicate over a document
      // context we know; we do not track those, but they are also rare in
      // collection queries.
      return std::nullopt;
    } else if (p.source->Is<ContextItem>()) {
      if (predicate_base == nullptr) return std::nullopt;
      base = *predicate_base;
    } else if (p.source->Is<VarRef>()) {
      auto it = vars_.find(p.source->As<VarRef>().name);
      if (it == vars_.end()) return std::nullopt;
      base = it->second;
    } else {
      std::optional<std::string> coll = AsCollectionCall(*p.source);
      if (!coll) return std::nullopt;
      mined_.collections.insert(*coll);
      // base stays empty: steps are document-root-absolute.
    }
    for (const AxisStep& s : p.steps) base.push_back(s.step);
    return base;
  }

  /// Mines one conjunct (inside a where clause or step predicate) for a
  /// constraint.
  void MineConjunct(const Expr& e,
                    const std::vector<xpath::Step>* predicate_base) {
    if (e.Is<BinaryOp>()) {
      const auto& b = e.As<BinaryOp>();
      if (b.op == BinaryOp::Op::kAnd) {
        MineConjunct(*b.lhs, predicate_base);
        MineConjunct(*b.rhs, predicate_base);
        return;
      }
      const bool is_cmp =
          b.op == BinaryOp::Op::kEq || b.op == BinaryOp::Op::kNe ||
          b.op == BinaryOp::Op::kLt || b.op == BinaryOp::Op::kLe ||
          b.op == BinaryOp::Op::kGt || b.op == BinaryOp::Op::kGe;
      if (!is_cmp) return;
      const Expr* path_side = nullptr;
      const Expr* lit_side = nullptr;
      BinaryOp::Op op = b.op;
      if (b.lhs->Is<PathExpr>()) {
        path_side = b.lhs.get();
        lit_side = b.rhs.get();
      } else if (b.rhs->Is<PathExpr>()) {
        path_side = b.rhs.get();
        lit_side = b.lhs.get();
        // Mirror the operator: lit < path  ==  path > lit.
        switch (op) {
          case BinaryOp::Op::kLt:
            op = BinaryOp::Op::kGt;
            break;
          case BinaryOp::Op::kLe:
            op = BinaryOp::Op::kGe;
            break;
          case BinaryOp::Op::kGt:
            op = BinaryOp::Op::kLt;
            break;
          case BinaryOp::Op::kGe:
            op = BinaryOp::Op::kLe;
            break;
          default:
            break;
        }
      } else {
        return;
      }
      std::optional<std::vector<xpath::Step>> steps =
          FullSteps(path_side->As<PathExpr>(), predicate_base);
      std::optional<std::string> lit = AsLiteral(*lit_side);
      if (steps && lit) {
        xpath::Path path(*steps);
        mined_.touched.push_back(path);
        mined_.constraints.push_back(
            Predicate::Compare(std::move(path), ToCompareOp(op), *lit));
      }
      return;
    }
    if (e.Is<FunctionCall>()) {
      const auto& f = e.As<FunctionCall>();
      if (f.name == "contains" && f.args.size() == 2 &&
          f.args[0]->Is<PathExpr>() && f.args[1]->Is<StringLit>()) {
        std::optional<std::vector<xpath::Step>> steps =
            FullSteps(f.args[0]->As<PathExpr>(), predicate_base);
        if (steps) {
          xpath::Path path(*steps);
          mined_.touched.push_back(path);
          mined_.constraints.push_back(Predicate::Contains(
              std::move(path), f.args[1]->As<StringLit>().value));
        }
        return;
      }
      if (f.name == "exists" && f.args.size() == 1 &&
          f.args[0]->Is<PathExpr>()) {
        std::optional<std::vector<xpath::Step>> steps =
            FullSteps(f.args[0]->As<PathExpr>(), predicate_base);
        if (steps) {
          xpath::Path path(*steps);
          mined_.touched.push_back(path);
          mined_.constraints.push_back(Predicate::Exists(std::move(path)));
        }
        return;
      }
      return;
    }
    if (e.Is<PathExpr>()) {
      std::optional<std::vector<xpath::Step>> steps =
          FullSteps(e.As<PathExpr>(), predicate_base);
      if (steps) {
        xpath::Path path(*steps);
        mined_.touched.push_back(path);
        mined_.constraints.push_back(Predicate::Exists(std::move(path)));
      }
    }
  }

  /// Handles a path expression encountered anywhere: records the touched
  /// path (or flags the query unanalyzable) and mines its step predicates.
  /// `record_touched` is false for for/let binding paths, which only
  /// *iterate* — data is touched through paths extended from the bound
  /// variable, or through the bare variable when it is materialized.
  void HandlePath(const PathExpr& p, bool record_touched = true) {
    if (p.source != nullptr) {
      if (p.source->Is<ContextItem>()) {
        // Context-item paths outside predicates are not tracked.
        mined_.analyzable = false;
      } else if (!p.source->Is<VarRef>() && !AsCollectionCall(*p.source)) {
        Walk(*p.source);
      }
    }
    std::optional<std::vector<xpath::Step>> full = FullSteps(p, nullptr);
    if (!full) {
      // Paths over unknown sources (let-bound variables, constructed
      // nodes, absolute) defeat localization.
      if (p.source == nullptr || p.source->Is<VarRef>()) {
        mined_.analyzable = false;
      }
    } else if (record_touched) {
      mined_.touched.push_back(xpath::Path(*full));
    }
    // Step predicates: mine conjuncts with the base = steps so far.
    std::vector<xpath::Step> base;
    if (full) {
      base.assign(full->begin(), full->end() - p.steps.size());
    }
    for (const AxisStep& s : p.steps) {
      base.push_back(s.step);
      for (const ExprPtr& pred : s.predicates) {
        if (full) {
          MineConjunct(*pred, &base);
        } else {
          Walk(*pred);
        }
      }
    }
  }

  void Walk(const Expr& e) {
    if (e.Is<PathExpr>()) {
      HandlePath(e.As<PathExpr>());
      return;
    }
    if (e.Is<FunctionCall>()) {
      std::optional<std::string> coll = AsCollectionCall(e);
      if (coll) {
        mined_.collections.insert(*coll);
        return;
      }
      for (const ExprPtr& arg : e.As<FunctionCall>().args) Walk(*arg);
      return;
    }
    if (e.Is<FlworExpr>()) {
      const auto& f = e.As<FlworExpr>();
      std::map<std::string, std::vector<xpath::Step>> saved = vars_;
      for (const ForLetClause& clause : f.clauses) {
        bool tracked = false;
        if (clause.expr->Is<PathExpr>()) {
          const auto& p = clause.expr->As<PathExpr>();
          std::optional<std::vector<xpath::Step>> full =
              FullSteps(p, nullptr);
          HandlePath(p, /*record_touched=*/false);
          if (full) {
            vars_[clause.var] = *full;
            tracked = true;
          }
        } else if (AsCollectionCall(*clause.expr)) {
          mined_.collections.insert(*AsCollectionCall(*clause.expr));
          vars_[clause.var] = {};
          tracked = true;
        } else {
          Walk(*clause.expr);
        }
        if (!tracked) vars_.erase(clause.var);
      }
      if (f.where != nullptr) {
        MineConjunct(*f.where, nullptr);
        WalkPredsOnly(*f.where);
      }
      Walk(*f.ret);
      vars_ = std::move(saved);
      return;
    }
    if (e.Is<BinaryOp>()) {
      Walk(*e.As<BinaryOp>().lhs);
      Walk(*e.As<BinaryOp>().rhs);
      return;
    }
    if (e.Is<xquery::UnaryMinus>()) {
      Walk(*e.As<xquery::UnaryMinus>().operand);
      return;
    }
    if (e.Is<xquery::ElementCtor>()) {
      for (const ExprPtr& c : e.As<xquery::ElementCtor>().content) Walk(*c);
      return;
    }
    if (e.Is<xquery::IfExpr>()) {
      const auto& i = e.As<xquery::IfExpr>();
      Walk(*i.cond);
      Walk(*i.then_branch);
      Walk(*i.else_branch);
      return;
    }
    if (e.Is<xquery::QuantifiedExpr>()) {
      // Quantifiers bind their own variables; stay conservative rather
      // than model them.
      mined_.analyzable = false;
      const auto& q = e.As<xquery::QuantifiedExpr>();
      for (const xquery::ForLetClause& b : q.bindings) Walk(*b.expr);
      Walk(*q.satisfies);
      return;
    }
    if (e.Is<VarRef>()) {
      // A bare variable materializes whatever it is bound to.
      auto it = vars_.find(e.As<VarRef>().name);
      if (it != vars_.end()) {
        if (!it->second.empty()) {
          mined_.touched.push_back(xpath::Path(it->second));
        } else {
          // Bound to a bare collection(): the whole documents are used.
          mined_.analyzable = false;
        }
      } else {
        mined_.analyzable = false;
      }
      return;
    }
    // Literals / ContextItem: nothing.
  }

  /// Records touched paths inside a where clause without re-mining
  /// constraints (MineConjunct already did) — needed so the fragment
  /// "needed" analysis sees paths used only in predicates.
  void WalkPredsOnly(const Expr& e) {
    if (e.Is<BinaryOp>()) {
      WalkPredsOnly(*e.As<BinaryOp>().lhs);
      WalkPredsOnly(*e.As<BinaryOp>().rhs);
      return;
    }
    if (e.Is<FunctionCall>()) {
      for (const ExprPtr& arg : e.As<FunctionCall>().args) {
        WalkPredsOnly(*arg);
      }
      return;
    }
    if (e.Is<PathExpr>()) {
      std::optional<std::vector<xpath::Step>> full =
          FullSteps(e.As<PathExpr>(), nullptr);
      if (full) {
        mined_.touched.push_back(xpath::Path(*full));
      } else if (e.As<PathExpr>().source != nullptr &&
                 e.As<PathExpr>().source->Is<VarRef>() &&
                 vars_.count(e.As<PathExpr>().source->As<VarRef>().name) ==
                     0) {
        mined_.analyzable = false;
      }
      return;
    }
    if (e.Is<VarRef>() && vars_.count(e.As<VarRef>().name) == 0) {
      mined_.analyzable = false;
    }
  }

  std::map<std::string, std::vector<xpath::Step>> vars_;
  Mined mined_;
};

// ---------------------------------------------------------------------
// Predicate contradiction (data localization)
// ---------------------------------------------------------------------

/// Three-way comparison of predicate values: numeric when both parse as
/// numbers, lexicographic otherwise (the semantics of xpath::Predicate).
int CompareLiterals(const std::string& a, const std::string& b) {
  double da = 0.0;
  double db = 0.0;
  if (ParseDouble(a, &da) && ParseDouble(b, &db)) {
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  int cmp = a.compare(b);
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

/// True when `value` satisfies the constraint `x op bound`.
bool SatisfiesOp(const std::string& value, CompareOp op,
                 const std::string& bound) {
  int cmp = CompareLiterals(value, bound);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// True when the constraint sets {x : x opa a} and {x : x opb b} are
/// disjoint under the total order of CompareLiterals.
bool RangesDisjoint(CompareOp opa, const std::string& a, CompareOp opb,
                    const std::string& b) {
  // Point constraints: test the point against the other side.
  if (opa == CompareOp::kEq) return !SatisfiesOp(a, opb, b);
  if (opb == CompareOp::kEq) return !SatisfiesOp(b, opa, a);
  // ≠ leaves everything but one point: never disjoint from another range
  // over an order with more than one value.
  if (opa == CompareOp::kNe || opb == CompareOp::kNe) return false;
  // Both are half-lines. Disjoint iff one is an upper bound, the other a
  // lower bound, and they do not overlap.
  auto is_upper = [](CompareOp op) {
    return op == CompareOp::kLt || op == CompareOp::kLe;
  };
  if (is_upper(opa) == is_upper(opb)) return false;  // same direction
  const std::string& upper = is_upper(opa) ? a : b;
  CompareOp upper_op = is_upper(opa) ? opa : opb;
  const std::string& lower = is_upper(opa) ? b : a;
  CompareOp lower_op = is_upper(opa) ? opb : opa;
  int cmp = CompareLiterals(upper, lower);  // upper bound vs lower bound
  if (cmp < 0) return true;
  if (cmp > 0) return false;
  // Bounds touch: empty unless both ends include the point.
  return upper_op == CompareOp::kLt || lower_op == CompareOp::kGt;
}

/// True when every node `q` can select is also selected by `f` on any
/// document. Conservative: exact step equality, or `f` being a lone
/// descendant step (//X) whose element name matches `q`'s final step.
bool PathSubsumes(const xpath::Path& f, const xpath::Path& q) {
  if (f == q) return true;
  if (f.size() == 1 && f.steps()[0].axis == xpath::Axis::kDescendant &&
      !f.steps()[0].wildcard && !f.steps()[0].is_attribute &&
      f.steps()[0].position == 0 && !q.empty()) {
    const xpath::Step& last = q.steps().back();
    return !last.is_attribute && !last.wildcard &&
           last.name == f.steps()[0].name;
  }
  return false;
}

/// True when a document satisfying query predicate `q` cannot satisfy
/// fragmentation predicate `f` (assuming single-occurrence paths, the
/// standard fragmentation-design assumption).
bool Contradicts(const Predicate& q, const Predicate& f) {
  // empty(P) in the fragment vs any positive q on a path P prefixes.
  if (f.kind() == Predicate::Kind::kExists && f.negated()) {
    if (!q.negated() && f.path().IsPrefixOf(q.path())) return true;
    return false;
  }
  if (q.kind() == Predicate::Kind::kContains ||
      f.kind() == Predicate::Kind::kContains) {
    // Handled below with subsumption instead of exact path equality.
  } else if (!(q.path() == f.path())) {
    return false;
  }
  if (q.kind() == Predicate::Kind::kCompare &&
      f.kind() == Predicate::Kind::kCompare && !q.negated() &&
      !f.negated()) {
    return RangesDisjoint(q.op(), q.value(), f.op(), f.value());
  }
  if (q.kind() == Predicate::Kind::kContains && !q.negated() &&
      f.kind() == Predicate::Kind::kContains && f.negated()) {
    // q requires some node under its path to contain q.value; f forbids
    // every node under its (subsuming) path from containing f.value;
    // contradiction when containing q.value implies containing f.value.
    return PathSubsumes(f.path(), q.path()) &&
           Contains(q.value(), f.value());
  }
  return false;
}

/// True when any query constraint contradicts any conjunct of μ.
bool FragmentPruned(const std::vector<Predicate>& query_constraints,
                    const std::vector<Predicate>& mu) {
  for (const Predicate& q : query_constraints) {
    for (const Predicate& f : mu) {
      if (Contradicts(q, f)) return true;
    }
  }
  return false;
}

/// Localizes a fragment predicate defined over instance subtrees (hybrid):
/// prepends the container path steps, e.g. /Item/Section = "CD" under
/// container /Store/Items becomes /Store/Items/Item/Section = "CD".
Predicate LocalizePredicate(const Predicate& p,
                            const xpath::Path& container) {
  std::vector<xpath::Step> steps = container.steps();
  for (const xpath::Step& s : p.path().steps()) steps.push_back(s);
  xpath::Path full(std::move(steps));
  switch (p.kind()) {
    case Predicate::Kind::kCompare: {
      Predicate out = Predicate::Compare(full, p.op(), p.value());
      return p.negated() ? out.Complement() : out;
    }
    case Predicate::Kind::kContains: {
      Predicate out = Predicate::Contains(full, p.value());
      return p.negated() ? out.Complement() : out;
    }
    case Predicate::Kind::kExists:
    default: {
      Predicate out = Predicate::Exists(full);
      return p.negated() ? out.Complement() : out;
    }
  }
}

// ---------------------------------------------------------------------
// Rewriting
// ---------------------------------------------------------------------

/// Rewrites every collection("old")-rooted path for execution against a
/// fragment: renames the collection and drops up to `drop_steps` leading
/// child-axis steps (the path prefix that lies above the fragment's
/// document roots). Fails when a dropped step is not a plain child step or
/// carries predicates.
Status RewriteForFragment(Expr* e, const std::string& old_name,
                          const std::string& new_name, size_t drop_steps) {
  if (e->Is<PathExpr>()) {
    auto& p = e->As<PathExpr>();
    bool rooted = false;
    if (p.source != nullptr) {
      std::optional<std::string> coll = AsCollectionCall(*p.source);
      if (coll && *coll == old_name) {
        p.source->As<FunctionCall>().args[0]->As<StringLit>().value =
            new_name;
        rooted = true;
      } else if (p.source != nullptr) {
        PARTIX_RETURN_IF_ERROR(
            RewriteForFragment(p.source.get(), old_name, new_name,
                               drop_steps));
      }
    }
    if (rooted && drop_steps > 0) {
      size_t to_drop = std::min(drop_steps, p.steps.size());
      for (size_t i = 0; i < to_drop; ++i) {
        const AxisStep& s = p.steps[i];
        if (s.step.axis != xpath::Axis::kChild || s.step.wildcard ||
            s.step.is_attribute || !s.predicates.empty() ||
            s.step.position > 0) {
          return Status::FailedPrecondition(
              "path prefix step '" + s.step.name +
              "' is not rewritable for fragment '" + new_name + "'");
        }
      }
      p.steps.erase(p.steps.begin(), p.steps.begin() + to_drop);
    }
    for (AxisStep& s : p.steps) {
      for (ExprPtr& pred : s.predicates) {
        PARTIX_RETURN_IF_ERROR(
            RewriteForFragment(pred.get(), old_name, new_name, drop_steps));
      }
    }
    return Status::Ok();
  }
  if (e->Is<FunctionCall>()) {
    auto& f = e->As<FunctionCall>();
    std::optional<std::string> coll = AsCollectionCall(*e);
    if (coll && *coll == old_name) {
      f.args[0]->As<StringLit>().value = new_name;
      return Status::Ok();
    }
    for (ExprPtr& arg : f.args) {
      PARTIX_RETURN_IF_ERROR(
          RewriteForFragment(arg.get(), old_name, new_name, drop_steps));
    }
    return Status::Ok();
  }
  if (e->Is<FlworExpr>()) {
    auto& f = e->As<FlworExpr>();
    for (ForLetClause& clause : f.clauses) {
      PARTIX_RETURN_IF_ERROR(RewriteForFragment(clause.expr.get(), old_name,
                                                new_name, drop_steps));
    }
    if (f.where != nullptr) {
      PARTIX_RETURN_IF_ERROR(
          RewriteForFragment(f.where.get(), old_name, new_name, drop_steps));
    }
    return RewriteForFragment(f.ret.get(), old_name, new_name, drop_steps);
  }
  if (e->Is<BinaryOp>()) {
    auto& b = e->As<BinaryOp>();
    PARTIX_RETURN_IF_ERROR(
        RewriteForFragment(b.lhs.get(), old_name, new_name, drop_steps));
    return RewriteForFragment(b.rhs.get(), old_name, new_name, drop_steps);
  }
  if (e->Is<xquery::UnaryMinus>()) {
    return RewriteForFragment(e->As<xquery::UnaryMinus>().operand.get(),
                              old_name, new_name, drop_steps);
  }
  if (e->Is<xquery::ElementCtor>()) {
    for (ExprPtr& c : e->As<xquery::ElementCtor>().content) {
      PARTIX_RETURN_IF_ERROR(
          RewriteForFragment(c.get(), old_name, new_name, drop_steps));
    }
    return Status::Ok();
  }
  if (e->Is<xquery::IfExpr>()) {
    auto& i = e->As<xquery::IfExpr>();
    PARTIX_RETURN_IF_ERROR(
        RewriteForFragment(i.cond.get(), old_name, new_name, drop_steps));
    PARTIX_RETURN_IF_ERROR(RewriteForFragment(i.then_branch.get(), old_name,
                                              new_name, drop_steps));
    return RewriteForFragment(i.else_branch.get(), old_name, new_name,
                              drop_steps);
  }
  return Status::Ok();
}

/// Produces the rewritten sub-query for one fragment as a compiled
/// artifact, or an error when the query is not rewritable for it. The
/// clone is rewritten structurally and wrapped without ever re-parsing;
/// the rendered text rides along for Explain and error messages.
Result<xquery::CompiledQueryPtr> RewriteCompiled(
    const Expr& ast, const std::string& collection,
    const std::string& fragment, size_t drop_steps) {
  ExprPtr clone = xquery::CloneExpr(ast);
  PARTIX_RETURN_IF_ERROR(
      RewriteForFragment(clone.get(), collection, fragment, drop_steps));
  std::string text = xquery::ExprToString(*clone);
  return xquery::CompiledQuery::FromAst(std::move(text), std::move(clone));
}

/// `collection("fragment")` as a compiled artifact, built structurally
/// (fetch sub-queries of the join-reconstruct path).
xquery::CompiledQueryPtr FetchQuery(const std::string& fragment) {
  FunctionCall call;
  call.name = "collection";
  call.args.push_back(xquery::MakeExpr(StringLit{fragment}));
  return xquery::CompiledQuery::FromAst(
      "collection(\"" + fragment + "\")",
      xquery::MakeExpr(std::move(call)));
}

// ---------------------------------------------------------------------
// Fragment "needed" analysis for projections
// ---------------------------------------------------------------------

/// True when a touched path can reach data held by a projection fragment
/// with path `p` and prune set `gamma`.
bool ProjectionNeeded(const xpath::Path& touched, const xpath::Path& p,
                      const std::vector<xpath::Path>& gamma) {
  // Conservative on descendant/wildcard steps: treat as intersecting.
  for (const xpath::Step& s : touched.steps()) {
    if (s.axis == xpath::Axis::kDescendant || s.wildcard) return true;
  }
  if (!p.IsPrefixOf(touched) && !touched.IsPrefixOf(p)) return false;
  for (const xpath::Path& e : gamma) {
    if (e.IsPrefixOf(touched)) return false;  // pruned out of this fragment
  }
  return true;
}

/// Builds a SubQuery routed to every replica of `fragment` (primary
/// first), so the executor can fail over without re-planning.
Result<SubQuery> MakeSubQuery(const DistributionEntry& entry,
                              const std::string& fragment,
                              xquery::CompiledQueryPtr compiled) {
  PARTIX_ASSIGN_OR_RETURN(std::vector<size_t> replicas,
                          entry.ReplicasOf(fragment));
  SubQuery sub;
  sub.fragment = fragment;
  sub.node = replicas.front();
  sub.replicas = std::move(replicas);
  sub.query = compiled->text();
  sub.compiled = std::move(compiled);
  return sub;
}

}  // namespace

const char* CompositionName(Composition c) {
  switch (c) {
    case Composition::kUnion:
      return "union";
    case Composition::kSumCounts:
      return "sum";
    case Composition::kJoinReconstruct:
      return "join-reconstruct";
  }
  return "?";
}

Result<DistributedPlan> QueryDecomposer::Decompose(
    const std::string& query) const {
  // The single parse of the whole middleware execution: sub-queries are
  // derived from this AST by cloning + structural rewriting, and the
  // compiled artifact travels with the plan so no downstream layer (node
  // engines, retries, join composition) ever re-parses the text.
  PARTIX_ASSIGN_OR_RETURN(xquery::CompiledQueryPtr compiled,
                          xquery::CompiledQuery::Compile(query));
  const Expr& ast = compiled->ast();
  Mined mined = Miner().Run(ast);

  if (mined.collections.empty()) {
    return Status::InvalidArgument(
        "query references no collection; nothing to route");
  }

  // Identify the (single) fragmented collection.
  std::string fragmented;
  for (const std::string& coll : mined.collections) {
    if (catalog_->IsFragmented(coll)) {
      if (!fragmented.empty()) {
        return Status::Unimplemented(
            "queries over multiple fragmented collections are not "
            "supported");
      }
      fragmented = coll;
    }
  }

  DistributedPlan plan;
  plan.original_query = query;
  plan.compiled = compiled;

  if (fragmented.empty()) {
    // Centralized execution at the node holding the collection: the
    // original query ships unchanged, compiled form included.
    const std::string& coll = *mined.collections.begin();
    PARTIX_ASSIGN_OR_RETURN(size_t node, catalog_->CentralizedNode(coll));
    plan.collection = coll;
    plan.composition = Composition::kUnion;
    SubQuery sub;
    sub.fragment = coll;
    sub.node = node;
    sub.replicas = {node};
    sub.query = query;
    sub.compiled = compiled;
    plan.subqueries.push_back(std::move(sub));
    plan.notes.push_back("collection is centralized; no decomposition");
    return plan;
  }
  if (mined.collections.size() > 1) {
    return Status::Unimplemented(
        "queries mixing fragmented and other collections are not "
        "supported");
  }

  PARTIX_ASSIGN_OR_RETURN(const DistributionEntry* entry,
                          catalog_->Get(fragmented));
  const frag::FragmentationSchema& schema = entry->schema;
  plan.collection = fragmented;

  const bool decomposable_aggregate =
      mined.top_aggregate == "count" || mined.top_aggregate == "sum";
  const bool awkward_aggregate =
      !mined.top_aggregate.empty() && !decomposable_aggregate;

  auto add_fetch_subqueries =
      [&](const std::vector<const FragmentDef*>& defs) -> Status {
    for (const FragmentDef* def : defs) {
      PARTIX_ASSIGN_OR_RETURN(
          SubQuery sub,
          MakeSubQuery(*entry, def->name(), FetchQuery(def->name())));
      plan.subqueries.push_back(std::move(sub));
    }
    plan.composition = Composition::kJoinReconstruct;
    return Status::Ok();
  };

  switch (schema.DominantKind()) {
    case FragmentKind::kHorizontal: {
      std::vector<const FragmentDef*> targets;
      for (const FragmentDef& def : schema.fragments) {
        if (mined.analyzable &&
            FragmentPruned(mined.constraints,
                           def.horizontal().mu.predicates())) {
          ++plan.pruned_fragments;
          continue;
        }
        targets.push_back(&def);
      }
      if (plan.pruned_fragments > 0) {
        plan.notes.push_back(
            "data localization pruned " +
            std::to_string(plan.pruned_fragments) + " fragment(s)");
      }
      if (awkward_aggregate && targets.size() > 1) {
        plan.notes.push_back("aggregate '" + mined.top_aggregate +
                             "' is not distributive; fetching fragments");
        PARTIX_RETURN_IF_ERROR(add_fetch_subqueries(targets));
        return plan;
      }
      for (const FragmentDef* def : targets) {
        PARTIX_ASSIGN_OR_RETURN(
            xquery::CompiledQueryPtr sub_compiled,
            RewriteCompiled(ast, fragmented, def->name(), 0));
        PARTIX_ASSIGN_OR_RETURN(
            SubQuery sub,
            MakeSubQuery(*entry, def->name(), std::move(sub_compiled)));
        plan.subqueries.push_back(std::move(sub));
      }
      plan.composition = decomposable_aggregate && plan.subqueries.size() > 1
                             ? Composition::kSumCounts
                             : Composition::kUnion;
      return plan;
    }

    case FragmentKind::kVertical: {
      std::vector<const FragmentDef*> needed;
      for (const FragmentDef& def : schema.fragments) {
        const frag::VerticalDef& v = def.vertical();
        bool used = !mined.analyzable || mined.touched.empty();
        for (const xpath::Path& t : mined.touched) {
          if (ProjectionNeeded(t, v.path, v.prune)) {
            used = true;
            break;
          }
        }
        if (used) needed.push_back(&def);
      }
      if (needed.empty()) {
        return Status::InvalidArgument(
            "query touches no fragment of '" + fragmented + "'");
      }
      if (needed.size() == 1 && mined.analyzable && !awkward_aggregate) {
        const frag::VerticalDef& v = needed[0]->vertical();
        Result<xquery::CompiledQueryPtr> rewritten = RewriteCompiled(
            ast, fragmented, needed[0]->name(), v.path.size() - 1);
        if (rewritten.ok()) {
          PARTIX_ASSIGN_OR_RETURN(
              SubQuery sub,
              MakeSubQuery(*entry, needed[0]->name(), std::move(*rewritten)));
          plan.subqueries.push_back(std::move(sub));
          plan.composition = Composition::kUnion;
          plan.pruned_fragments = schema.fragments.size() - 1;
          plan.notes.push_back("single-fragment vertical rewrite");
          return plan;
        }
        plan.notes.push_back("rewrite failed: " +
                             rewritten.status().message());
      }
      plan.notes.push_back("multi-fragment vertical query; join at "
                           "middleware");
      PARTIX_RETURN_IF_ERROR(add_fetch_subqueries(needed));
      plan.pruned_fragments = schema.fragments.size() - needed.size();
      return plan;
    }

    case FragmentKind::kHybrid: {
      // Partition defs: instance fragments (non-trivial μ) vs pure
      // projections.
      std::vector<const FragmentDef*> instance_defs;
      std::vector<const FragmentDef*> pure_defs;
      for (const FragmentDef& def : schema.fragments) {
        if (def.kind() == FragmentKind::kHybrid &&
            !def.hybrid().mu.IsTrue()) {
          instance_defs.push_back(&def);
        } else {
          pure_defs.push_back(&def);
        }
      }
      auto def_path = [](const FragmentDef* def) -> const xpath::Path& {
        return def->kind() == FragmentKind::kHybrid ? def->hybrid().path
                                                    : def->vertical().path;
      };
      auto def_prune =
          [](const FragmentDef* def) -> const std::vector<xpath::Path>& {
        return def->kind() == FragmentKind::kHybrid ? def->hybrid().prune
                                                    : def->vertical().prune;
      };

      std::vector<const FragmentDef*> needed_instance;
      std::vector<const FragmentDef*> needed_pure;
      for (const FragmentDef* def : instance_defs) {
        bool used = !mined.analyzable || mined.touched.empty();
        for (const xpath::Path& t : mined.touched) {
          if (ProjectionNeeded(t, def_path(def), def_prune(def))) {
            used = true;
            break;
          }
        }
        if (used && mined.analyzable) {
          // μ-based localization.
          std::vector<Predicate> localized;
          for (const Predicate& p : def->hybrid().mu.predicates()) {
            localized.push_back(LocalizePredicate(p, def_path(def)));
          }
          if (FragmentPruned(mined.constraints, localized)) {
            used = false;
            ++plan.pruned_fragments;
          }
        }
        if (used) needed_instance.push_back(def);
      }
      for (const FragmentDef* def : pure_defs) {
        bool used = !mined.analyzable || mined.touched.empty();
        for (const xpath::Path& t : mined.touched) {
          if (ProjectionNeeded(t, def_path(def), def_prune(def))) {
            used = true;
            break;
          }
        }
        if (used) needed_pure.push_back(def);
      }

      if (plan.pruned_fragments > 0) {
        plan.notes.push_back(
            "data localization pruned " +
            std::to_string(plan.pruned_fragments) + " fragment(s)");
      }

      const bool mode1 =
          schema.hybrid_mode == HybridMode::kOneDocPerSubtree;

      if (!needed_instance.empty() && needed_pure.empty() &&
          mined.analyzable && !awkward_aggregate) {
        // Horizontal-style plan over the instance fragments.
        bool ok = true;
        std::vector<SubQuery> subs;
        for (const FragmentDef* def : needed_instance) {
          size_t drop = def_path(def).size() - (mode1 ? 0 : 1);
          Result<xquery::CompiledQueryPtr> rewritten =
              RewriteCompiled(ast, fragmented, def->name(), drop);
          if (!rewritten.ok()) {
            plan.notes.push_back("rewrite failed: " +
                                 rewritten.status().message());
            ok = false;
            break;
          }
          PARTIX_ASSIGN_OR_RETURN(
              SubQuery sub,
              MakeSubQuery(*entry, def->name(), std::move(*rewritten)));
          subs.push_back(std::move(sub));
        }
        if (ok) {
          plan.subqueries = std::move(subs);
          plan.composition =
              decomposable_aggregate && plan.subqueries.size() > 1
                  ? Composition::kSumCounts
                  : Composition::kUnion;
          return plan;
        }
      }
      if (needed_instance.empty() && needed_pure.size() == 1 &&
          mined.analyzable && !awkward_aggregate) {
        const FragmentDef* def = needed_pure[0];
        Result<xquery::CompiledQueryPtr> rewritten = RewriteCompiled(
            ast, fragmented, def->name(), def_path(def).size() - 1);
        if (rewritten.ok()) {
          PARTIX_ASSIGN_OR_RETURN(
              SubQuery sub,
              MakeSubQuery(*entry, def->name(), std::move(*rewritten)));
          plan.subqueries.push_back(std::move(sub));
          plan.composition = Composition::kUnion;
          plan.notes.push_back("single pure-projection fragment");
          return plan;
        }
        plan.notes.push_back("rewrite failed: " +
                             rewritten.status().message());
      }
      // Fallback: fetch every needed fragment and evaluate locally.
      std::vector<const FragmentDef*> all_needed = needed_instance;
      for (const FragmentDef* def : needed_pure) all_needed.push_back(def);
      if (all_needed.empty()) {
        for (const FragmentDef& def : schema.fragments) {
          all_needed.push_back(&def);
        }
      }
      plan.notes.push_back("hybrid fallback: join at middleware");
      PARTIX_RETURN_IF_ERROR(add_fetch_subqueries(all_needed));
      return plan;
    }
  }
  return Status::Internal("unhandled fragmentation kind");
}

}  // namespace partix::middleware
