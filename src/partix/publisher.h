#ifndef PARTIX_PARTIX_PUBLISHER_H_
#define PARTIX_PARTIX_PUBLISHER_H_

#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "xml/collection.h"

namespace partix::middleware {

/// Distributed XML Data Publisher (paper §4): receives XML documents,
/// applies the fragmentation previously defined for the collection, and
/// sends the resulting fragments to be stored at the remote DBMS nodes,
/// registering the design in the distribution catalog.
///
/// Vertical/hybrid fragment documents are shipped in a wire format that
/// carries the reconstruction IDs (px-src, px-root, px-anc) as out-of-band
/// document metadata so that the query service can join partial results —
/// "we keep an ID in each vertical fragment for reconstruction purposes".
class DataPublisher {
 public:
  DataPublisher(ClusterSim* cluster, DistributionCatalog* catalog)
      : cluster_(cluster), catalog_(catalog) {}

  /// Stores an unfragmented collection at `node` and registers it as
  /// centralized.
  Status PublishCentralized(const xml::Collection& c, size_t node);

  /// Fragments `c` per `schema`, stores each fragment at *every* node of
  /// its placement's replica set, and registers the design. When
  /// `placements` is empty, replica r of fragment i goes to node
  /// (i + r) mod node_count for r in [0, replication_factor);
  /// `replication_factor` is ignored when explicit placements are given
  /// (their backup lists already encode it).
  ///
  /// Each fragment's wire documents are serialized once middleware-side
  /// and every replica stores those exact bytes, so the content digest
  /// recorded on the registered placement holds at every copy by
  /// construction (absent injected storage corruption).
  Status PublishFragmented(const xml::Collection& c,
                           const frag::FragmentationSchema& schema,
                           std::vector<FragmentPlacement> placements = {},
                           size_t replication_factor = 1);

  /// Copies one fragment collection byte-for-byte from `source` to
  /// `target`: same collection metadata, same serialized documents, same
  /// out-of-band reconstruction IDs. An existing copy at the target is
  /// dropped first (the caller decided to overwrite it — this is the
  /// repair path). Catalog-independent: replica repair and the scrubber
  /// call it while the authoritative catalog is a snapshot they are
  /// about to supersede.
  Status ReplicateFragment(const std::string& fragment, size_t source,
                           size_t target);

 private:
  /// Stores every fragment at its replica set and stamps each placement's
  /// `content_digest` from the serialized wire bytes.
  Status StoreFragments(const std::vector<xml::Collection>& fragments,
                        std::vector<FragmentPlacement>& placements);

  ClusterSim* cluster_;
  DistributionCatalog* catalog_;
};

/// Builds the wire-format twin of a fragment document: identical content,
/// with the reconstruction IDs (px-src / px-root / px-anc) attached as
/// out-of-band document metadata that stores persist and queries never
/// see. Documents without origin tracking are returned unchanged.
xml::DocumentPtr ToWireFormat(const xml::DocumentPtr& doc);

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_PUBLISHER_H_
