#ifndef PARTIX_PARTIX_CATALOG_H_
#define PARTIX_PARTIX_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"
#include "xml/schema.h"

namespace partix::middleware {

/// XML Schema Catalog Service (paper §4): registers the data types used by
/// the distributed collections.
class SchemaCatalog {
 public:
  Status Register(const std::string& name, xml::SchemaPtr schema);
  Result<xml::SchemaPtr> Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, xml::SchemaPtr> schemas_;
};

/// Where one fragment lives: a primary cluster node plus zero or more
/// backup replicas (failover order). Every listed node holds a full copy
/// of the fragment; the query service prefers the primary and the
/// executor fails over along `backups` when nodes are unreachable.
struct FragmentPlacement {
  std::string fragment;
  size_t node = 0;              // primary replica
  std::vector<size_t> backups;  // additional replicas, in failover order

  /// All replica nodes, primary first.
  std::vector<size_t> AllNodes() const;
};

/// Everything the middleware knows about one distributed collection: its
/// fragmentation design and the placement of each fragment.
struct DistributionEntry {
  frag::FragmentationSchema schema;
  std::vector<FragmentPlacement> placements;

  /// Primary node of `fragment`.
  Result<size_t> NodeOf(const std::string& fragment) const;

  /// Every replica of `fragment`, primary first.
  Result<std::vector<size_t>> ReplicasOf(const std::string& fragment) const;
};

/// XML Distribution Catalog Service (paper §4): stores fragment
/// definitions and their allocation, consulted by the query decomposer for
/// data localization.
class DistributionCatalog {
 public:
  /// Registers a fragmentation design. Each fragment must have a
  /// placement.
  Status Register(frag::FragmentationSchema schema,
                  std::vector<FragmentPlacement> placements);

  /// Registers an unfragmented (centralized) collection at a node.
  Status RegisterCentralized(const std::string& collection, size_t node);

  bool IsFragmented(const std::string& collection) const;

  Result<const DistributionEntry*> Get(const std::string& collection) const;

  /// Node holding an unfragmented collection.
  Result<size_t> CentralizedNode(const std::string& collection) const;

  std::vector<std::string> FragmentedCollections() const;

  /// (collection, node) pairs registered as centralized.
  std::vector<std::pair<std::string, size_t>> CentralizedCollections()
      const;

 private:
  std::map<std::string, DistributionEntry> entries_;
  std::map<std::string, size_t> centralized_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_CATALOG_H_
