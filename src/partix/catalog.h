#ifndef PARTIX_PARTIX_CATALOG_H_
#define PARTIX_PARTIX_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"
#include "xml/schema.h"

namespace partix::middleware {

/// XML Schema Catalog Service (paper §4): registers the data types used by
/// the distributed collections.
class SchemaCatalog {
 public:
  Status Register(const std::string& name, xml::SchemaPtr schema);
  Result<xml::SchemaPtr> Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, xml::SchemaPtr> schemas_;
};

/// Where one fragment lives: a primary cluster node plus zero or more
/// backup replicas (failover order). Every listed node holds a full copy
/// of the fragment; the query service prefers the primary and the
/// executor fails over along `backups` when nodes are unreachable.
struct FragmentPlacement {
  std::string fragment;
  size_t node = 0;              // primary replica
  std::vector<size_t> backups;  // additional replicas, in failover order
  /// Expected content digest of the fragment's stored bytes (name-ordered
  /// FNV-1a over (doc name, xml) pairs; see
  /// xdb::Database::CollectionContentDigest), recorded by the publisher
  /// at publish time. The anti-entropy scrubber compares every replica's
  /// live digest against this to detect silent divergence, and replica
  /// repair verifies a copy against it before cutover. 0 = unknown
  /// (pre-digest deployments): replicas can still be cross-checked
  /// against each other, but not against a ground truth.
  uint64_t content_digest = 0;
  /// Total serialized bytes of the fragment's documents, recorded by the
  /// publisher at publish time. The scheduler's admission control
  /// estimates a query's memory footprint from these (serialized size ×
  /// a parse-expansion factor). 0 = unknown (pre-sizing deployments):
  /// admission falls back to a flat default footprint.
  uint64_t serialized_bytes = 0;

  /// All replica nodes, primary first.
  std::vector<size_t> AllNodes() const;
};

/// Everything the middleware knows about one distributed collection: its
/// fragmentation design and the placement of each fragment.
struct DistributionEntry {
  frag::FragmentationSchema schema;
  std::vector<FragmentPlacement> placements;

  /// Primary node of `fragment`.
  Result<size_t> NodeOf(const std::string& fragment) const;

  /// Every replica of `fragment`, primary first.
  Result<std::vector<size_t>> ReplicasOf(const std::string& fragment) const;
};

/// XML Distribution Catalog Service (paper §4): stores fragment
/// definitions and their allocation, consulted by the query decomposer for
/// data localization.
class DistributionCatalog {
 public:
  /// Registers a fragmentation design. Each fragment must have a
  /// placement.
  Status Register(frag::FragmentationSchema schema,
                  std::vector<FragmentPlacement> placements);

  /// Registers an unfragmented (centralized) collection at a node.
  /// `serialized_bytes` (optional) records the collection's total
  /// serialized size for admission-control footprint estimates.
  Status RegisterCentralized(const std::string& collection, size_t node,
                             uint64_t serialized_bytes = 0);

  /// Total serialized bytes recorded for `collection` — the sum over a
  /// fragmented collection's placements, or the centralized figure.
  /// 0 when the collection is unknown or was published without sizes.
  uint64_t SerializedBytesOf(const std::string& collection) const;

  bool IsFragmented(const std::string& collection) const;

  Result<const DistributionEntry*> Get(const std::string& collection) const;

  /// Node holding an unfragmented collection.
  Result<size_t> CentralizedNode(const std::string& collection) const;

  std::vector<std::string> FragmentedCollections() const;

  /// (collection, node) pairs registered as centralized.
  std::vector<std::pair<std::string, size_t>> CentralizedCollections()
      const;

  /// Replaces a fragmented collection's placements wholesale (replica
  /// repair publishes its post-repair placement map through this).
  /// Validates like Register: every fragment of the collection's schema
  /// must be placed, with distinct replica nodes. The fragmentation
  /// schema itself is untouched.
  Status UpdatePlacements(const std::string& collection,
                          std::vector<FragmentPlacement> placements);

 private:
  /// Register-style placement validation shared with UpdatePlacements.
  static Status ValidatePlacements(
      const frag::FragmentationSchema& schema,
      const std::vector<FragmentPlacement>& placements);

  std::map<std::string, DistributionEntry> entries_;
  std::map<std::string, size_t> centralized_;
  std::map<std::string, uint64_t> centralized_bytes_;
};

/// A versioned, atomically swappable distribution catalog: readers take
/// an immutable snapshot and route a whole query against it; writers
/// (replica repair) build a successor catalog off-line and Install() it
/// in one pointer swap. In-flight queries keep the snapshot they started
/// with — they never observe a half-updated placement map — and queries
/// admitted after the swap see the repaired topology. This is the atomic
/// cutover that lets repair run concurrently with query traffic.
///
/// Thread-safety: Snapshot/Install/version are thread-safe (one mutex
/// around a shared_ptr swap; snapshots are immutable afterwards).
class VersionedCatalog {
 public:
  explicit VersionedCatalog(DistributionCatalog initial);

  /// The current catalog, immutable. Cheap (shared_ptr copy); hold it for
  /// the duration of one query's planning.
  std::shared_ptr<const DistributionCatalog> Snapshot() const;

  /// Atomically replaces the catalog with `next` and bumps the version.
  /// Returns the new version number.
  uint64_t Install(DistributionCatalog next);

  /// Monotonic version, starting at 1 for the initial catalog.
  uint64_t version() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const DistributionCatalog> current_;
  uint64_t version_ = 1;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_CATALOG_H_
