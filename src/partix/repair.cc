#include "partix/repair.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "partix/allocation.h"
#include "partix/cluster.h"
#include "partix/health.h"
#include "partix/publisher.h"
#include "telemetry/metrics.h"

namespace partix::middleware {

namespace {

struct RepairTelemetry {
  telemetry::Counter* rounds;
  telemetry::Counter* under_replicated;
  telemetry::Counter* repairs;
  telemetry::Counter* repair_failures;
  telemetry::Counter* cutovers;
  telemetry::Counter* scrub_rounds;
  telemetry::Counter* scrub_checked;
  telemetry::Counter* scrub_divergent;
  telemetry::Counter* scrub_repairs;
  telemetry::Counter* scrub_failures;

  static const RepairTelemetry& Get() {
    static const RepairTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      RepairTelemetry out;
      out.rounds = registry.GetCounter("partix_repair_rounds_total");
      out.under_replicated =
          registry.GetCounter("partix_under_replicated_placements_total");
      out.repairs = registry.GetCounter("partix_repairs_total");
      out.repair_failures =
          registry.GetCounter("partix_repair_failures_total");
      out.cutovers = registry.GetCounter("partix_catalog_cutovers_total");
      out.scrub_rounds = registry.GetCounter("partix_scrub_rounds_total");
      out.scrub_checked = registry.GetCounter("partix_scrub_checked_total");
      out.scrub_divergent =
          registry.GetCounter("partix_scrub_divergent_total");
      out.scrub_repairs = registry.GetCounter("partix_scrub_repairs_total");
      out.scrub_failures =
          registry.GetCounter("partix_scrub_failures_total");
      return out;
    }();
    return t;
  }
};

/// A live replica of `placement` whose stored copy can seed a repair:
/// reachable, holding the collection, and — when the catalog records a
/// digest — byte-identical to what was published. Returns the cluster
/// node index, or node_count when none qualifies.
size_t PickSource(ClusterSim* cluster, const FragmentPlacement& placement,
                  const std::set<size_t>& lost) {
  for (size_t node : placement.AllNodes()) {
    if (lost.count(node) != 0) continue;
    if (node >= cluster->node_count() || cluster->IsNodeDown(node)) continue;
    Driver& driver = cluster->node(node);
    if (!driver.HasCollection(placement.fragment)) continue;
    if (placement.content_digest != 0) {
      Result<uint64_t> digest = driver.CollectionDigest(placement.fragment);
      if (!digest.ok() || *digest != placement.content_digest) continue;
    }
    return node;
  }
  return cluster->node_count();
}

/// Digest-verifies a freshly copied replica against the catalog's
/// published digest (vacuously true for pre-digest placements).
bool VerifyCopy(ClusterSim* cluster, const FragmentPlacement& placement,
                size_t node) {
  if (placement.content_digest == 0) return true;
  Result<uint64_t> digest =
      cluster->node(node).CollectionDigest(placement.fragment);
  return digest.ok() && *digest == placement.content_digest;
}

}  // namespace

RepairReport RepairPlanner::RepairOnce() {
  const RepairTelemetry& telemetry = RepairTelemetry::Get();
  telemetry.rounds->Add();
  RepairReport report;
  const double span_start = tracer_ != nullptr ? tracer_->NowMs() : 0.0;
  if (tracer_ != nullptr) {
    report.span = telemetry::TraceSpan("repair");
    report.span.start_ms = span_start;
  }

  std::shared_ptr<const DistributionCatalog> snapshot = catalog_->Snapshot();
  std::set<size_t> lost;
  for (size_t node : health_->DeadNodes()) lost.insert(node);

  const size_t node_count = cluster_->node_count();
  std::vector<size_t> loads = CatalogReplicaCounts(*snapshot, node_count);
  DistributionCatalog next = *snapshot;
  bool changed = false;

  for (const std::string& collection : snapshot->FragmentedCollections()) {
    Result<const DistributionEntry*> entry = snapshot->Get(collection);
    if (!entry.ok()) continue;
    std::vector<FragmentPlacement> placements = (*entry)->placements;
    bool collection_changed = false;

    for (FragmentPlacement& placement : placements) {
      const std::vector<size_t> all = placement.AllNodes();
      std::vector<size_t> live;
      for (size_t node : all) {
        if (lost.count(node) == 0) live.push_back(node);
      }
      if (live.size() == all.size()) continue;
      ++report.under_replicated;
      telemetry.under_replicated->Add();

      const size_t source = PickSource(cluster_, placement, lost);
      if (source == node_count) {
        // Every surviving copy is unreachable or divergent: nothing
        // trustworthy to re-replicate from. Leave the placement alone (a
        // query can still try the listed replicas) and let a later round
        // retry once a source heals.
        ++report.failed;
        telemetry.repair_failures->Add();
        continue;
      }

      const size_t missing = all.size() - live.size();
      for (size_t m = 0; m < missing; ++m) {
        // Least-loaded healthy node holding no copy of this fragment.
        size_t target = node_count;
        for (size_t n = 0; n < node_count; ++n) {
          if (lost.count(n) != 0 || cluster_->IsNodeDown(n)) continue;
          if (std::find(live.begin(), live.end(), n) != live.end()) continue;
          if (target == node_count || loads[n] < loads[target]) target = n;
        }
        if (target == node_count) {
          // Fewer healthy nodes than the replication factor asks for.
          ++report.failed;
          telemetry.repair_failures->Add();
          break;
        }

        RepairAction action;
        action.collection = collection;
        action.fragment = placement.fragment;
        action.source = source;
        action.target = target;
        Status copied =
            publisher_->ReplicateFragment(placement.fragment, source, target);
        if (copied.ok() && !VerifyCopy(cluster_, placement, target)) {
          // The copy landed corrupted (e.g. storage fault on the repair
          // write): drop it rather than leave a divergent replica the
          // catalog would vouch for.
          cluster_->node(target).DropCollection(placement.fragment);
          copied = Status::Corruption(
              "repaired copy of '" + placement.fragment + "' on node" +
              std::to_string(target) + " failed digest verification");
        }
        action.ok = copied.ok();
        if (!copied.ok()) action.error = copied.message();
        if (tracer_ != nullptr) {
          report.span.children.emplace_back(
              placement.fragment + " node" + std::to_string(source) +
              "->node" + std::to_string(target));
          telemetry::TraceSpan& child = report.span.children.back();
          child.start_ms = tracer_->NowMs();
          child.AddTag("status", copied.ok() ? "ok" : copied.message());
        }
        report.actions.push_back(std::move(action));
        if (!copied.ok()) {
          ++report.failed;
          telemetry.repair_failures->Add();
          continue;
        }
        ++report.repaired;
        telemetry.repairs->Add();
        ++loads[target];
        live.push_back(target);
      }

      // Rebuild the placement from the survivors plus the new copies,
      // preserving failover order; a dead primary is succeeded by the
      // first survivor.
      if (!live.empty()) {
        placement.node = live.front();
        placement.backups.assign(live.begin() + 1, live.end());
        collection_changed = true;
      }
    }

    if (collection_changed) {
      // Cannot fail: the placements came from a registered entry and the
      // rebuild preserves one distinct node per replica per fragment.
      Status updated = next.UpdatePlacements(collection, std::move(placements));
      if (updated.ok()) changed = true;
    }
  }

  if (changed) {
    report.catalog_version = catalog_->Install(std::move(next));
    telemetry.cutovers->Add();
  }
  if (tracer_ != nullptr) {
    report.span.duration_ms = tracer_->NowMs() - span_start;
    report.span.AddTag("under_replicated",
                       std::to_string(report.under_replicated));
    report.span.AddTag("repaired", std::to_string(report.repaired));
    report.span.AddTag("failed", std::to_string(report.failed));
  }
  return report;
}

Scrubber::~Scrubber() { Stop(); }

ScrubReport Scrubber::ScrubOnce() {
  const RepairTelemetry& telemetry = RepairTelemetry::Get();
  telemetry.scrub_rounds->Add();
  ScrubReport report;
  std::shared_ptr<const DistributionCatalog> snapshot = catalog_->Snapshot();

  for (const std::string& collection : snapshot->FragmentedCollections()) {
    Result<const DistributionEntry*> entry = snapshot->Get(collection);
    if (!entry.ok()) continue;
    for (const FragmentPlacement& placement : (*entry)->placements) {
      if (placement.content_digest == 0) {
        ++report.skipped_no_digest;
        continue;
      }
      const std::vector<size_t> replicas = placement.AllNodes();
      for (size_t node : replicas) {
        if (node >= cluster_->node_count() || cluster_->IsNodeDown(node)) {
          continue;  // unreachable: repair's problem, not the scrubber's
        }
        if (health_->StateOf(node) == NodeHealth::kDead) continue;
        ++report.checked;
        telemetry.scrub_checked->Add();
        Result<uint64_t> digest =
            cluster_->node(node).CollectionDigest(placement.fragment);
        if (digest.ok() && *digest == placement.content_digest) continue;

        // Divergent (or missing) copy: quarantine the node so queries
        // route around it, rebuild from a clean replica, verify, and
        // lift the quarantine only when the copy checks out.
        ++report.divergent;
        telemetry.scrub_divergent->Add();
        health_->SetQuarantined(node, true);

        size_t source = cluster_->node_count();
        for (size_t other : replicas) {
          if (other == node || other >= cluster_->node_count()) continue;
          if (cluster_->IsNodeDown(other)) continue;
          Result<uint64_t> other_digest =
              cluster_->node(other).CollectionDigest(placement.fragment);
          if (other_digest.ok() &&
              *other_digest == placement.content_digest) {
            source = other;
            break;
          }
        }
        if (source == cluster_->node_count()) {
          // No clean copy anywhere: leave the node quarantined with its
          // divergent (but possibly partially useful) copy in place.
          ++report.failed;
          telemetry.scrub_failures->Add();
          continue;
        }
        Status copied =
            publisher_->ReplicateFragment(placement.fragment, source, node);
        if (copied.ok()) {
          Result<uint64_t> rebuilt =
              cluster_->node(node).CollectionDigest(placement.fragment);
          if (!rebuilt.ok() || *rebuilt != placement.content_digest) {
            copied = Status::Corruption("rebuilt copy diverged again");
          }
        }
        if (copied.ok()) {
          ++report.repaired;
          telemetry.scrub_repairs->Add();
          health_->SetQuarantined(node, false);
        } else {
          ++report.failed;
          telemetry.scrub_failures->Add();
        }
      }
    }
  }
  return report;
}

void Scrubber::Start(double interval_ms) {
  std::lock_guard<std::mutex> lock(scrub_mu_);
  if (scrubber_.joinable()) return;
  scrub_stop_ = false;
  scrubber_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(scrub_mu_);
    while (!scrub_stop_) {
      lock.unlock();
      ScrubOnce();
      lock.lock();
      scrub_cv_.wait_for(lock,
                         std::chrono::duration<double, std::milli>(interval_ms),
                         [this] { return scrub_stop_; });
    }
  });
}

void Scrubber::Stop() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
    scrub_cv_.notify_all();
    joinable = std::move(scrubber_);
  }
  if (joinable.joinable()) joinable.join();
}

}  // namespace partix::middleware
