#ifndef PARTIX_PARTIX_STREAM_H_
#define PARTIX_PARTIX_STREAM_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "memory/governor.h"

namespace partix::middleware {

/// The bounded block buffer between executor workers and the composing
/// coordinator: one producer lane per sub-query (each fed by whichever
/// worker currently runs that sub-query's attempt), one consumer that
/// drains lanes in plan order. This is what makes the streaming result
/// path's memory *bounded*: blocks are charged to the memory governor as
/// they are committed and released as they are consumed, and producers
/// block once `buffer_cap_bytes` of blocks sit unconsumed — except the
/// lane the consumer is currently draining, which is always admitted.
///
/// Deadlock-freedom: the consumer drains lanes in plan order, and the
/// executor's dispatch claims sub-queries in increasing index order, so
/// the lane the consumer waits on always has a worker assigned (or
/// already finished) — and that lane's producer is never blocked by the
/// byte cap. Producers of not-yet-drained lanes may block, which is the
/// point: they hold node-side locks, not coordinator memory.
///
/// Failover replay: when a sub-query's attempt dies mid-stream and the
/// executor retries on a replica, the replacement stream re-produces the
/// result from the beginning. The channel keeps a digest of every block
/// it ever committed for the lane; after BeginAttempt(), Push() verifies
/// each re-produced block against that record and silently drops it —
/// the consumer never sees a duplicate, and bytes already forwarded are
/// never composed twice (the consumed prefix is exactly the replayed
/// prefix). A digest mismatch means the replica's result diverges from
/// the prefix already handed to the consumer, which is not recoverable
/// by retrying: Push fails with a non-retryable kInternal.
///
/// Thread-safety: all methods are thread-safe; lanes are independent.
/// Consumer calls (Pull/DrainDiscard) must come from one thread at a
/// time. Destroy only after every producer has finished (the query
/// service joins the dispatch before dropping the channel).
class BlockChannel {
 public:
  /// `governor` (nullable) is charged for buffered bytes under
  /// `consumer_id`; the channel releases everything it charged by
  /// destruction (zero-leak, whatever path the query took).
  BlockChannel(size_t subquery_count, size_t buffer_cap_bytes,
               memory::MemoryGovernor* governor, int consumer_id);
  ~BlockChannel();
  BlockChannel(const BlockChannel&) = delete;
  BlockChannel& operator=(const BlockChannel&) = delete;

  // ---- Producer side (executor workers) ----

  /// Marks the start of a (re)attempt for lane `i`: subsequent Push()es
  /// replay-verify against the committed prefix before new blocks append.
  void BeginAttempt(size_t i);

  /// Commits one block to lane `i` (or verifies-and-drops it while
  /// replaying a failover prefix). Blocks while the channel is over its
  /// byte cap and `i` is not the lane the consumer is draining. Fails
  /// with kInternal on replay divergence — non-retryable.
  Status Push(size_t i, xdb::ResultBlock block);

  /// Ends lane `i` with the sub-query's final status. Called exactly once
  /// per lane, after all retries resolved.
  void Finish(size_t i, Status status);

  // ---- Consumer side (one thread) ----

  /// Takes the next block of lane `i`, blocking until one is available
  /// or the lane finished. Returns false at clean end of lane; returns
  /// the lane's final error (after yielding any already-committed
  /// blocks) when it failed.
  Result<bool> Pull(size_t i, xdb::ResultBlock* out);

  /// Drains and discards the remainder of lane `i`, blocking until the
  /// lane finishes — keeps producers from wedging on the byte cap after
  /// the consumer stops composing (e.g. another lane failed).
  void DrainDiscard(size_t i);

  // ---- Accounting (tests, telemetry cross-checks) ----

  /// Conservation: produced() == consumed() + discarded() once every
  /// lane is finished and drained or the channel is destroyed.
  uint64_t produced() const;
  uint64_t consumed() const;
  uint64_t discarded() const;

 private:
  struct Lane {
    std::deque<xdb::ResultBlock> queue;
    /// FNV-1a of every block ever committed, in commit order — the
    /// replay-verification record for failover.
    std::vector<uint64_t> digests;
    uint64_t committed = 0;
    uint64_t replay_pos = 0;
    bool finished = false;
    Status final_status = Status::Ok();
  };

  /// Releases `bytes`/`blocks` worth of externally visible accounting
  /// (gauge + governor). Called outside mu_.
  void ReleaseAccounting(size_t bytes);

  const size_t cap_bytes_;
  memory::MemoryGovernor* const governor_;
  const int consumer_id_;

  mutable std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;
  std::vector<Lane> lanes_;
  size_t cursor_ = 0;
  size_t buffered_bytes_ = 0;
  bool closed_ = false;
  uint64_t produced_ = 0;
  uint64_t consumed_ = 0;
  uint64_t discarded_ = 0;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_STREAM_H_
