#ifndef PARTIX_PARTIX_CLUSTER_H_
#define PARTIX_PARTIX_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "partix/driver.h"
#include "partix/executor.h"

namespace partix::middleware {

/// Network cost model for the simulated cluster. The paper computes
/// communication time as result size divided by the Gigabit Ethernet
/// transmission speed, plus the (negligible) cost of shipping sub-queries;
/// we model both explicitly.
struct NetworkModel {
  /// Payload bandwidth. 1 Gbit/s = 125e6 bytes/s.
  double bandwidth_bytes_per_sec = 125e6;
  /// Fixed per-message latency (sub-query dispatch, TCP round trip).
  /// Enters the *modeled* transmission time only.
  double latency_sec = 100e-6;
  /// When > 0, the executor physically blocks each sub-query dispatch for
  /// this long on its worker thread, emulating the synchronous RPC round
  /// trip a driver pays against a genuinely remote DBMS node (the paper's
  /// prototype spoke XML-RPC to eXist). Off by default — it affects the
  /// *measured* `wall_ms`, never the modeled response time.
  /// `bench/parallel_speedup` uses it for its remote-deployment series.
  double emulated_rpc_sec = 0.0;

  double TransferSeconds(uint64_t bytes) const {
    return latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// A simulated cluster of DBMS nodes. Each node is an independent
/// xdb::Database (its own name pool, stores, caches, indexes) behind a
/// Driver that serializes engine access, so distinct nodes can execute
/// sub-queries genuinely in parallel (see Executor). The query service
/// reports both the *modeled* parallel response time — the maximum over
/// the involved nodes, the paper's methodology ("we have used the time
/// spent by the slowest site") — and the *measured* wall-clock of the real
/// fan-out.
///
/// Thread-safety contract: the data plane (node(i).Execute via the
/// executor) is safe from worker threads. The control plane —
/// SetNodeDown, DropAllCaches, database(i), construction — is
/// coordinator-thread-only and must not race a Dispatch in flight.
class ClusterSim {
 public:
  ClusterSim(size_t node_count, xdb::DatabaseOptions node_options,
             NetworkModel network);

  size_t node_count() const { return nodes_.size(); }
  Driver& node(size_t i) { return *nodes_[i]; }

  /// Direct access to a node's embedded engine (local drivers only) —
  /// used by deployment persistence and tests. Bypasses the driver's
  /// serialization: coordinator-thread-only.
  xdb::Database& database(size_t i) { return nodes_[i]->database(); }
  const NetworkModel& network() const { return network_; }
  NetworkModel& mutable_network() { return network_; }

  /// The sub-query executor for this cluster (shared by query services;
  /// its worker pool persists across queries).
  Executor& executor() { return executor_; }

  /// Failure injection: a down node rejects every request until brought
  /// back up. Data survives (the node is unreachable, not wiped).
  void SetNodeDown(size_t i, bool down);
  bool IsNodeDown(size_t i) const;

  /// Cold-start all nodes.
  void DropAllCaches();

 private:
  std::vector<std::unique_ptr<LocalXdbDriver>> nodes_;
  std::vector<bool> down_;
  NetworkModel network_;
  Executor executor_{this};
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_CLUSTER_H_
