#ifndef PARTIX_PARTIX_CLUSTER_H_
#define PARTIX_PARTIX_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "partix/driver.h"
#include "partix/executor.h"

namespace partix::middleware {

/// Network cost model for the simulated cluster. The paper computes
/// communication time as result size divided by the Gigabit Ethernet
/// transmission speed, plus the (negligible) cost of shipping sub-queries;
/// we model both explicitly.
struct NetworkModel {
  /// Payload bandwidth. 1 Gbit/s = 125e6 bytes/s.
  double bandwidth_bytes_per_sec = 125e6;
  /// Fixed per-message latency (sub-query dispatch, TCP round trip).
  /// Enters the *modeled* transmission time only.
  double latency_sec = 100e-6;
  /// When > 0, the executor physically blocks each sub-query dispatch for
  /// this long on its worker thread, emulating the synchronous RPC round
  /// trip a driver pays against a genuinely remote DBMS node (the paper's
  /// prototype spoke XML-RPC to eXist). Off by default — it affects the
  /// *measured* `wall_ms`, never the modeled response time.
  /// `bench/parallel_speedup` uses it for its remote-deployment series.
  double emulated_rpc_sec = 0.0;

  double TransferSeconds(uint64_t bytes) const {
    return latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// Per-node fault-injection profile. All knobs compose; the default is a
/// healthy node. Every stochastic knob draws from a per-node RNG seeded
/// with `seed`, so a given profile produces the same fault sequence on
/// every run (requests arriving from concurrent workers consume draws in
/// arrival order — use sequential dispatch when a test needs the exact
/// per-request sequence).
struct FaultProfile {
  /// Permanently unreachable: every request is rejected with
  /// kUnavailable until the profile is replaced.
  bool down = false;
  /// Probability that a request is rejected with a transient
  /// kUnavailable error (the node stays up).
  double transient_error_rate = 0.0;
  /// Probability that a served request stalls for `latency_spike_ms`
  /// before executing (emulates GC pauses / IO stalls).
  double latency_spike_rate = 0.0;
  double latency_spike_ms = 0.0;
  /// The node serves this many engine requests, then becomes permanently
  /// down (-1 = never). Transient rejections do not count.
  int64_t fail_after_requests = -1;
  /// The first `fail_first_requests` engine requests are rejected with a
  /// transient kUnavailable, then the node is healthy. Deterministic
  /// counterpart of `transient_error_rate` for retry tests.
  int64_t fail_first_requests = 0;
  /// Probability that the node crash-restarts on a request: the request
  /// is rejected with a transient kUnavailable and the node's caches are
  /// dropped (the restarted process comes back cold). Consumes no
  /// engine-request budget — the engine never saw the request.
  double crash_restart_rate = 0.0;
  /// Probability that a *served* request's response is corrupted in
  /// flight: the engine executes normally, then one text character of the
  /// serialized result is flipped after the node-side digest was stamped,
  /// so integrity verification (ExecutionOptions::verify_integrity) can
  /// detect the mangled response and fail over.
  double response_corruption_rate = 0.0;
  /// Streaming data plane only: the node's block stream serves this many
  /// blocks, then every further Next() fails with a retryable
  /// kUnavailable (-1 = never). Deterministic — consumes no RNG draw
  /// (the open already drew the gate's stochastic knobs). Models a node
  /// dying mid-response after part of the result crossed the wire, the
  /// case failover must handle by discarding the partial prefix.
  int64_t fail_stream_after_blocks = -1;
  /// Streaming data plane only: every block Next() stalls this long
  /// before the engine produces the block (deterministic, no RNG draw).
  /// Emulates a slow producer for deadline-expires-mid-stream tests.
  double stream_block_stall_ms = 0.0;
  /// Probability that a document *stored* through the cluster's data
  /// plane (publisher, replica repair) is silently corrupted at rest: one
  /// text character of the serialized bytes flips before the store
  /// persists them. Detected by the anti-entropy scrubber's digest
  /// cross-check, never by the write itself.
  double storage_corruption_rate = 0.0;
  /// Seed of this node's fault RNG.
  uint64_t seed = 0;
};

/// A simulated cluster of DBMS nodes. Each node is an independent
/// xdb::Database (its own name pool, stores, caches, indexes) behind a
/// Driver that serializes engine access, so distinct nodes can execute
/// sub-queries genuinely in parallel (see Executor). The query service
/// reports both the *modeled* parallel response time — the maximum over
/// the involved nodes, the paper's methodology ("we have used the time
/// spent by the slowest site") — and the *measured* wall-clock of the real
/// fan-out.
///
/// Thread-safety contract: the data plane (ExecuteOnNode / IsNodeDown /
/// NodeRequestCount, used by executor workers) is thread-safe — each
/// node's fault state is guarded by its own mutex. The control plane —
/// SetFaultProfile, SetNodeDown, DropAllCaches, database(i),
/// mutable_network, construction — is coordinator-thread-only and must
/// not race a Dispatch in flight.
class ClusterSim {
 public:
  ClusterSim(size_t node_count, xdb::DatabaseOptions node_options,
             NetworkModel network);

  size_t node_count() const { return nodes_.size(); }
  Driver& node(size_t i) { return *nodes_[i]; }

  /// Direct access to a node's embedded engine (local drivers only) —
  /// used by deployment persistence and tests. Bypasses the driver's
  /// serialization: coordinator-thread-only.
  xdb::Database& database(size_t i) { return nodes_[i]->database(); }
  const NetworkModel& network() const { return network_; }
  NetworkModel& mutable_network() { return network_; }

  /// The sub-query executor for this cluster (shared by query services;
  /// its worker pool persists across queries).
  Executor& executor() { return executor_; }

  /// The data plane: runs `query` on node `i` through its fault profile —
  /// a down (or fail-after-exhausted) node rejects with kUnavailable,
  /// transient faults reject without touching the engine, latency spikes
  /// stall the calling worker — then delegates to the node's driver.
  /// Thread-safe; this is what the executor dispatches through.
  ///
  /// `stall_budget_ms` caps how long an injected latency spike may stall
  /// this call: when the spike exceeds it, the call stalls only for the
  /// budget and then fails fast with kDeadlineExceeded instead of
  /// sleeping out a stall the caller's deadline has already written off.
  /// < 0 (the default) = uncapped.
  ///
  /// `exec` forwards per-call execution knobs (intra-node morsel
  /// parallelism) to the node's driver.
  Result<xdb::QueryResult> ExecuteOnNode(size_t i, const std::string& query,
                                         double stall_budget_ms = -1.0,
                                         const xdb::ExecParams& exec = {});

  /// Prepares a compiled query on node `i`'s driver. A down (or
  /// fail-after-exhausted) node rejects with kUnavailable, but the fault
  /// gate's stochastic knobs are NOT consulted: preparation consumes no
  /// fault-RNG draw and no engine-request budget, so fault-injection
  /// schedules (and the tests that pin them) see exactly one draw per
  /// *executed* attempt, prepared or not. Thread-safe.
  Result<PreparedSubQueryPtr> PrepareOnNode(
      size_t i, const xquery::CompiledQueryPtr& compiled);

  /// Prepared counterpart of ExecuteOnNode: the same fault gate (one draw
  /// / one engine-request per attempt, same stall-budget cap), then the
  /// node's driver executes the handle without recompiling. Thread-safe.
  Result<xdb::QueryResult> ExecutePreparedOnNode(
      size_t i, const PreparedSubQuery& prepared,
      double stall_budget_ms = -1.0, const xdb::ExecParams& exec = {});

  /// Streaming counterparts of ExecuteOnNode/ExecutePreparedOnNode: the
  /// same fault gate runs ONCE at open (one draw / one engine request per
  /// attempt — a stream is one engine request no matter how many blocks
  /// it yields), then the returned stream applies the node's
  /// deterministic streaming knobs: per-block stalls
  /// (stream_block_stall_ms), fail-after-N-blocks
  /// (fail_stream_after_blocks), and — when the gate drew response
  /// corruption — one flipped character in the first non-empty block,
  /// after the driver stamped that block's digest. Thread-safe to open;
  /// the returned stream follows the driver stream's one-thread contract.
  Result<SubQueryStreamPtr> ExecuteStreamOnNode(
      size_t i, const std::string& query, double stall_budget_ms = -1.0,
      const xdb::ExecParams& exec = {});
  Result<SubQueryStreamPtr> ExecutePreparedStreamOnNode(
      size_t i, const PreparedSubQuery& prepared,
      double stall_budget_ms = -1.0, const xdb::ExecParams& exec = {});

  /// Store data plane: creates a collection on node `i` through its
  /// liveness gate (a down node rejects with kUnavailable). Thread-safe;
  /// the publisher and replica repair route collection DDL through here.
  Status CreateCollectionOnNode(size_t i, const std::string& collection,
                                xdb::CollectionMeta meta);

  /// Store data plane: persists pre-serialized bytes on node `i`. A down
  /// node rejects with kUnavailable; when the node's
  /// `storage_corruption_rate` fires, one text character of `xml` flips
  /// before the store persists it — silent bit rot that only a digest
  /// cross-check can see. Thread-safe.
  Status StoreSerializedOnNode(size_t i, const std::string& collection,
                               std::string doc_name, std::string xml,
                               std::map<std::string, std::string> metadata);

  /// Failure injection: replaces node `i`'s fault profile, resetting its
  /// request counter and reseeding its RNG from `profile.seed`. Data
  /// survives (the node is unreachable, not wiped). Out-of-range `i` is a
  /// no-op. Control plane: must not race a Dispatch in flight.
  void SetFaultProfile(size_t i, FaultProfile profile);

  /// Shorthand for the permanent-down bit of the fault profile (other
  /// knobs are preserved).
  void SetNodeDown(size_t i, bool down);

  /// True when node `i` rejects every request: explicitly down, or its
  /// fail-after-N budget is exhausted. Thread-safe.
  bool IsNodeDown(size_t i) const;

  /// Engine requests node `i` has served or attempted (excludes requests
  /// rejected by the fault gate). Thread-safe; used by tests to prove a
  /// breaker-opened node is no longer contacted.
  uint64_t NodeRequestCount(size_t i) const;

  /// Cold-start all nodes.
  void DropAllCaches();

 private:
  /// Fault state of one node; `mu` guards every field.
  struct NodeFaultState {
    explicit NodeFaultState(FaultProfile p) : profile(p), rng(p.seed) {}
    mutable std::mutex mu;
    FaultProfile profile;
    uint64_t engine_requests = 0;
    Rng rng;
  };

  /// Runs node `i`'s fault gate for one engine request: rejects when the
  /// node is down / budget-exhausted / transiently faulted / crash-
  /// restarting, otherwise counts the request and reports any latency
  /// spike to stall for and whether the response must be corrupted in
  /// flight. Stochastic knobs draw in a fixed order (transient, crash,
  /// spike, corruption) and only when their rate is > 0, so enabling a
  /// new knob never perturbs the draw schedule of profiles that don't
  /// use it. Shared by ExecuteOnNode and ExecutePreparedOnNode so both
  /// paths have identical fault semantics. On a crash-restart rejection
  /// `*crash_restart` is set and the caller drops the node's caches
  /// outside the fault mutex. A spike longer than `stall_budget_ms`
  /// (when >= 0) fails the gate with kDeadlineExceeded and `*spike_ms`
  /// set to the capped stall — the request hangs up at the budget and
  /// never reaches the engine, so it does not count as an engine
  /// request (the RNG still draws every knob, keeping the schedule
  /// identical to an uncapped run).
  Status FaultGate(size_t i, double stall_budget_ms, double* spike_ms,
                   bool* corrupt_response, bool* crash_restart);

  /// Shared tail of ExecuteOnNode/ExecutePreparedOnNode: fault gate,
  /// capped stall, driver execution via `run`, response corruption.
  Result<xdb::QueryResult> ExecuteGated(
      size_t i, double stall_budget_ms,
      const std::function<Result<xdb::QueryResult>()>& run);

  /// Streaming tail: fault gate once at open, capped stall, stream open
  /// via `open`, then the driver stream wrapped with this node's
  /// deterministic streaming knobs (snapshotted under the fault mutex at
  /// open time).
  Result<SubQueryStreamPtr> ExecuteStreamGated(
      size_t i, double stall_budget_ms,
      const std::function<Result<SubQueryStreamPtr>()>& open);

  std::vector<std::unique_ptr<LocalXdbDriver>> nodes_;
  std::vector<std::unique_ptr<NodeFaultState>> faults_;
  NetworkModel network_;
  Executor executor_{this};
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_CLUSTER_H_
