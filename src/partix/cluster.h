#ifndef PARTIX_PARTIX_CLUSTER_H_
#define PARTIX_PARTIX_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "partix/driver.h"

namespace partix::middleware {

/// Network cost model for the simulated cluster. The paper computes
/// communication time as result size divided by the Gigabit Ethernet
/// transmission speed, plus the (negligible) cost of shipping sub-queries;
/// we model both explicitly.
struct NetworkModel {
  /// Payload bandwidth. 1 Gbit/s = 125e6 bytes/s.
  double bandwidth_bytes_per_sec = 125e6;
  /// Fixed per-message latency (sub-query dispatch, TCP round trip).
  double latency_sec = 100e-6;

  double TransferSeconds(uint64_t bytes) const {
    return latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// A simulated cluster of DBMS nodes. Each node is an independent
/// xdb::Database (its own name pool, stores, caches, indexes). Sub-queries
/// execute sequentially in-process, but the query service reports the
/// *parallel* response time — the maximum over the involved nodes — the
/// same methodology as the paper's evaluation ("the parallel execution of
/// a query was simulated assuming that all fragments are placed at
/// different sites ... we have used the time spent by the slowest site").
class ClusterSim {
 public:
  ClusterSim(size_t node_count, xdb::DatabaseOptions node_options,
             NetworkModel network);

  size_t node_count() const { return nodes_.size(); }
  Driver& node(size_t i) { return *nodes_[i]; }

  /// Direct access to a node's embedded engine (local drivers only) —
  /// used by deployment persistence and tests.
  xdb::Database& database(size_t i) { return nodes_[i]->database(); }
  const NetworkModel& network() const { return network_; }

  /// Failure injection: a down node rejects every request until brought
  /// back up. Data survives (the node is unreachable, not wiped).
  void SetNodeDown(size_t i, bool down);
  bool IsNodeDown(size_t i) const;

  /// Cold-start all nodes.
  void DropAllCaches();

 private:
  std::vector<std::unique_ptr<LocalXdbDriver>> nodes_;
  std::vector<bool> down_;
  NetworkModel network_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_CLUSTER_H_
