#ifndef PARTIX_PARTIX_QUERY_SERVICE_H_
#define PARTIX_PARTIX_QUERY_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/decomposer.h"

namespace partix::middleware {

/// Per-sub-query execution record.
struct SubQueryStats {
  std::string fragment;
  size_t node = 0;
  double elapsed_ms = 0.0;  // node-side execution time (engine-measured)
  double wall_ms = 0.0;     // measured on the dispatching worker thread
  uint64_t result_bytes = 0;
  uint64_t docs_parsed = 0;
};

/// The answer of a distributed execution, with the timing breakdown the
/// experiments report, in two flavours:
///
///   - *modeled* (`response_ms` and its components): the paper's
///     methodology — sub-queries run in parallel at distinct sites, so the
///     node component is the *slowest* site; partial results flow to the
///     coordinator over the modeled link; composition is measured for
///     real. Independent of `ExecutionOptions::parallelism`.
///   - *measured* (`wall_ms`): the observed wall-clock of this execution —
///     planning (Execute only) + the executor's real fan-out across worker
///     threads + composition. This is what actually elapsed, and it is
///     what `bench/parallel_speedup` compares across parallelism levels.
struct DistributedResult {
  std::string serialized;
  uint64_t result_items = 0;

  double response_ms = 0.0;      // modeled: decompose + max node +
                                 // transmission + composition
  double decompose_ms = 0.0;     // middleware planning (Execute only)
  double slowest_node_ms = 0.0;  // max over sub-queries
  double sum_node_ms = 0.0;      // total work across nodes
  double transmission_ms = 0.0;  // dispatch latency + result transfer
  double composition_ms = 0.0;   // union/sum/join at the middleware

  double wall_ms = 0.0;          // measured: real end-to-end wall-clock
  size_t parallelism = 1;        // executor workers used for this plan

  std::vector<SubQueryStats> subqueries;
  size_t pruned_fragments = 0;
};

/// Execution knobs for experiments.
struct ExecutionOptions {
  /// Include the network model in response_ms (Fig. 7(d) reports both
  /// with- and without-transmission series).
  bool include_transmission = true;
  /// Drop node caches before executing (cold start).
  bool cold_caches = false;
  /// Number of sub-queries the executor keeps in flight at once. 1 (the
  /// default) dispatches sequentially on the calling thread; 0 means one
  /// worker per sub-query. Composition is deterministic: the composed
  /// result is byte-identical across parallelism levels.
  size_t parallelism = 1;
};

/// Distributed XML Query Service (paper §4): analyzes path expressions,
/// identifies the fragments referenced in each query, ships sub-queries to
/// the corresponding DBMS nodes through the cluster's Executor, and
/// constructs the result.
///
/// Thread-compatible: one thread drives a QueryService instance at a time
/// (it is the coordinator of its executions); the parallelism happens
/// below it, in the executor's worker pool.
class QueryService {
 public:
  QueryService(ClusterSim* cluster, const DistributionCatalog* catalog)
      : cluster_(cluster), catalog_(catalog), decomposer_(catalog) {}

  /// Decomposes and executes `query`.
  Result<DistributedResult> Execute(const std::string& query,
                                    const ExecutionOptions& options =
                                        ExecutionOptions());

  /// Executes a pre-built plan (PartiX's prototype mode: "data location is
  /// provided along with sub-queries").
  Result<DistributedResult> ExecutePlan(const DistributedPlan& plan,
                                        const ExecutionOptions& options =
                                            ExecutionOptions());

  const QueryDecomposer& decomposer() const { return decomposer_; }

  /// EXPLAIN: decomposes `query` and renders the plan (routing, pruning,
  /// composition, rewritten sub-queries) as human-readable text without
  /// executing anything.
  Result<std::string> Explain(const std::string& query) const;

 private:
  Result<std::string> ComposeJoin(const DistributedPlan& plan,
                                  std::vector<xdb::QueryResult> partials,
                                  uint64_t* result_items);

  ClusterSim* cluster_;
  const DistributionCatalog* catalog_;
  QueryDecomposer decomposer_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_QUERY_SERVICE_H_
