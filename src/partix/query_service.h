#ifndef PARTIX_PARTIX_QUERY_SERVICE_H_
#define PARTIX_PARTIX_QUERY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "memory/governor.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/decomposer.h"
#include "partix/executor.h"
#include "telemetry/trace.h"

namespace partix::middleware {

/// What ExecutePlan does when some sub-queries cannot produce a result
/// (every replica down, retries exhausted, deadline exceeded).
enum class PartialResultPolicy {
  /// Fail the whole query (default). The error message names every
  /// failed fragment as `fragment@node<i>`.
  kFail,
  /// Compose the result from the sub-queries that succeeded and report
  /// the rest in `DistributedResult::missing_fragments` with
  /// `complete == false`. The caller decides whether a partial answer is
  /// acceptable (e.g. search-style workloads degrading gracefully).
  kReturnPartial,
};

/// Per-sub-query execution record.
struct SubQueryStats {
  std::string fragment;
  /// The node that produced the result — differs from the plan's primary
  /// when the executor failed over to a replica.
  size_t node = 0;
  double elapsed_ms = 0.0;  // node-side execution time (engine-measured)
  double wall_ms = 0.0;     // measured on the dispatching worker thread
  uint64_t result_bytes = 0;
  uint64_t docs_parsed = 0;
  size_t attempts = 1;      // tries made (1 = first attempt succeeded)
  size_t failovers = 0;     // replica switches
  /// Attempts whose response failed digest verification and was
  /// discarded (the answer ultimately served came from a clean attempt).
  size_t corrupt_responses = 0;
  // --- conservation accounting (see docs/query-scheduling.md) ---
  /// Attempts that reached a node's engine (mirrors
  /// SubQueryOutcome::engine_requests: successes, discarded-late
  /// successes, non-retryable engine errors).
  size_t engine_requests = 0;
  /// Attempts that ended kDeadlineExceeded, even though the sub-query
  /// ultimately succeeded.
  size_t timed_out_attempts = 0;
  /// Engine successes discarded because they beat the budget too late.
  size_t discarded_successes = 0;
  // --- compile-once accounting (see docs/query-compilation.md) ---
  /// Node-side compile cost this sub-query paid (0 when every node served
  /// it from its plan cache).
  double compile_ms = 0.0;
  /// Node-side prepares served from / missed in the plan cache.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Estimated bytes held by the serving node's plan cache after this
  /// sub-query's prepare (see PlanCache::EstimatePlanBytes).
  uint64_t plan_cache_bytes = 0;
};

/// The answer of a distributed execution, with the timing breakdown the
/// experiments report, in two flavours:
///
///   - *modeled* (`response_ms` and its components): the paper's
///     methodology — sub-queries run in parallel at distinct sites, so the
///     node component is the *slowest* site; partial results flow to the
///     coordinator over the modeled link; composition is measured for
///     real. Independent of `ExecutionOptions::parallelism`.
///   - *measured* (`wall_ms`): the observed wall-clock of this execution —
///     planning (Execute only) + the executor's real fan-out across worker
///     threads + composition. This is what actually elapsed, and it is
///     what `bench/parallel_speedup` compares across parallelism levels.
struct DistributedResult {
  std::string serialized;
  uint64_t result_items = 0;
  /// Bytes of the composed answer (= serialized.size()); the figure the
  /// coordinator's in-flight result accounting charged for this query
  /// (partial results were additionally charged while composition ran).
  uint64_t result_bytes = 0;

  double response_ms = 0.0;      // modeled: decompose + max node +
                                 // transmission + composition
  double decompose_ms = 0.0;     // middleware planning (Execute only)
  double slowest_node_ms = 0.0;  // max over sub-queries
  double sum_node_ms = 0.0;      // total work across nodes
  double transmission_ms = 0.0;  // dispatch latency + result transfer
  double composition_ms = 0.0;   // union/sum/join at the middleware

  double wall_ms = 0.0;          // measured: real end-to-end wall-clock
  /// Measured time-to-first-byte: from execution start (Execute adds
  /// planning) until the first byte of the answer was available on the
  /// coordinator. Under the streaming pipeline with union composition
  /// that is the first committed result block — typically far before the
  /// slowest node finishes; for other compositions (and the materialized
  /// ablation) the answer exists only once composition completes, so it
  /// coincides with the end of compose.
  double ttfb_ms = 0.0;
  /// Result blocks consumed from the streaming channel (0 on the
  /// materialized path).
  uint64_t stream_blocks = 0;
  size_t parallelism = 1;        // executor workers used for this plan

  std::vector<SubQueryStats> subqueries;
  size_t pruned_fragments = 0;

  // --- fault-tolerance accounting (see docs/fault-tolerance.md) ---
  /// Extra tries beyond each sub-query's first attempt, summed.
  size_t retries = 0;
  /// Replica switches across all sub-queries (routing around a down
  /// primary counts).
  size_t failovers = 0;
  /// Sub-queries that hit a per-attempt timeout or their deadline.
  size_t timed_out_subqueries = 0;
  /// Responses that failed end-to-end digest verification across every
  /// sub-query attempt. Each was discarded and retried/failed over — a
  /// corrupt response is never part of the composed answer.
  size_t corrupt_responses = 0;
  /// Attempts that consumed a node-side engine request, summed over every
  /// dispatched sub-query (failed ones included). Conservation: equals
  /// the growth of the cluster's NodeRequestCount totals for this
  /// execution — discarded late successes and non-retryable errors count,
  /// fault-gate rejections don't.
  size_t engine_requests = 0;
  /// Attempts whose engine work succeeded but arrived past the attempt
  /// budget and was discarded (still engine_requests; their compile and
  /// plan-cache figures are folded into the totals below).
  size_t discarded_successes = 0;
  /// Fragments with no result, in plan order (kReturnPartial only; under
  /// kFail the query errors instead).
  std::vector<std::string> missing_fragments;
  /// True when every planned fragment contributed to the answer.
  bool complete = true;

  // --- compile-once accounting (see docs/query-compilation.md) ---
  /// Total node-side compile time across every sub-query prepare (failed
  /// sub-queries included: their compilations happened). 0 when every
  /// node served its sub-query from the plan cache.
  double compile_ms = 0.0;
  /// Plan-cache hits/misses summed over every node-side prepare of this
  /// execution.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;

  // --- tracing (see docs/observability.md) ---
  /// Filled only when `ExecutionOptions::trace` was set: the span tree of
  /// this execution — `query` at the root, `decompose` (Execute only) /
  /// `dispatch` / `compose` phases below it, one `fragment@node<i>` span
  /// per dispatched sub-query with its attempt/backoff children. Span
  /// times come from the service's injected clock, so traces are
  /// deterministic under ManualClock.
  telemetry::TraceSpan trace;
  /// True when `trace` holds a recorded span tree.
  bool traced = false;
};

/// Execution knobs for experiments.
struct ExecutionOptions {
  /// Include the network model in response_ms (Fig. 7(d) reports both
  /// with- and without-transmission series).
  bool include_transmission = true;
  /// Drop node caches before executing (cold start).
  bool cold_caches = false;
  /// Number of sub-queries the executor keeps in flight at once. 1 (the
  /// default) dispatches sequentially on the calling thread; 0 means one
  /// worker per sub-query. Composition is deterministic: the composed
  /// result is byte-identical across parallelism levels.
  size_t parallelism = 1;
  /// Morsel parallelism inside each node's engine: sub-queries ask their
  /// node to evaluate collection-scale iteration in up to this many
  /// chunks on the shared worker pool. 1 (the default) is sequential;
  /// results are byte-identical at every level. Composes with
  /// `parallelism` (cross-node × intra-node) without a second pool —
  /// see docs/intra-node-parallelism.md.
  size_t intra_node_parallelism = 1;
  /// Retry/backoff/timeout policy applied to every sub-query.
  RetryPolicy retry;
  /// What to do when sub-queries fail despite retries and failover.
  PartialResultPolicy partial_results = PartialResultPolicy::kFail;
  /// End-to-end integrity: verify each sub-query response against its
  /// node-stamped digest; a mismatch is treated as a retryable node
  /// fault (discard, fail over). On by default — the check is one
  /// FNV-1a pass over bytes the coordinator already holds.
  bool verify_integrity = true;
  /// Record a per-query span tree on `DistributedResult::trace`. Tracing
  /// allocates span nodes on the coordinator and in each worker's outcome
  /// slot; leave off (the default) for benchmark series.
  bool trace = false;
  /// Batched streaming result pipeline (the default): each node's engine
  /// emits its result as fixed-size item blocks that flow through a
  /// bounded coordinator-side channel and compose incrementally, instead
  /// of materializing every partial before composition starts. The
  /// composed answer is byte-identical either way; set false for the
  /// materialize-then-compose ablation.
  bool streaming = true;
  /// Target items per streamed block (0 falls back to the engine default
  /// of 256). Smaller blocks lower time-to-first-byte; larger blocks
  /// amortize per-block overhead.
  size_t stream_block_items = 256;
  /// Cap on unconsumed streamed bytes buffered across a query's
  /// sub-queries. Producers past the cap wait — except the lane being
  /// composed, which is always admitted so composition cannot deadlock
  /// against the cap. Buffered bytes are charged block-by-block to the
  /// memory governor.
  size_t stream_buffer_bytes = size_t{4} << 20;
};

/// Distributed XML Query Service (paper §4): analyzes path expressions,
/// identifies the fragments referenced in each query, ships sub-queries to
/// the corresponding DBMS nodes through the cluster's Executor, and
/// constructs the result.
///
/// Fault tolerance: sub-queries carry their fragment's full replica set,
/// the executor retries transient failures and fails over between
/// replicas (see executor.h), and a fragment is only *unreachable* when
/// every replica is down. Whether an unreachable fragment fails the query
/// or degrades it is the caller's choice via PartialResultPolicy.
///
/// Thread-safety: Execute/ExecutePlan/Explain/ExplainAnalyze are safe to
/// call concurrently from multiple client threads — the multi-query
/// scheduler (scheduler.h) relies on it. Each execution keeps its state
/// (plan, tracer, outcome slots, compose scratch engine) on the calling
/// thread; the shared pieces below it are thread-safe in their own right
/// (executor dispatch and breakers, cluster data plane, node plan
/// caches). set_clock remains control-plane: call it before concurrent
/// executions start.
class QueryService {
 public:
  QueryService(ClusterSim* cluster, const DistributionCatalog* catalog)
      : cluster_(cluster), catalog_(catalog), decomposer_(catalog) {}

  /// Versioned-catalog mode: every Execute/Explain plans against an
  /// immutable snapshot of `versioned` taken at admission, so replica
  /// repair can Install() a successor catalog concurrently — in-flight
  /// queries keep routing on the topology they started with (the
  /// snapshot is only needed during decomposition; the produced plan
  /// holds values, not catalog pointers). The versioned catalog must
  /// outlive the service.
  QueryService(ClusterSim* cluster, const VersionedCatalog* versioned)
      : cluster_(cluster), versioned_(versioned), decomposer_(nullptr) {}

  /// Decomposes and executes `query`.
  Result<DistributedResult> Execute(const std::string& query,
                                    const ExecutionOptions& options =
                                        ExecutionOptions());

  /// Executes a pre-built plan (PartiX's prototype mode: "data location is
  /// provided along with sub-queries").
  Result<DistributedResult> ExecutePlan(const DistributedPlan& plan,
                                        const ExecutionOptions& options =
                                            ExecutionOptions());

  const QueryDecomposer& decomposer() const { return decomposer_; }

  ~QueryService();

  /// The cluster this service executes against (the scheduler uses it to
  /// install its shared pool into the cluster's executor).
  ClusterSim* cluster() const { return cluster_; }

  /// Registers the coordinator's in-flight result buffers as a *pinned*
  /// consumer of `governor` ("inflight_results",
  /// MemoryGovernor::kPriorityPinned): partial and composed result bytes
  /// are charged while an execution holds them and released when it
  /// returns, so the governor sees result pressure and makes the caches
  /// shed — results themselves are never evicted. Pass nullptr to
  /// detach. Control-plane: call before concurrent executions start; the
  /// governor must outlive the service. The
  /// `partix_inflight_result_bytes` gauge tracks these bytes whether or
  /// not a governor is attached.
  void set_memory_governor(memory::MemoryGovernor* governor);

  /// EXPLAIN: decomposes `query` and renders the plan (routing, pruning,
  /// composition, rewritten sub-queries) as human-readable text without
  /// executing anything. Replicated fragments list their replica sets,
  /// and routing reflects current node liveness (a down primary shows
  /// the replica that would serve the sub-query).
  Result<std::string> Explain(const std::string& query) const;

  /// EXPLAIN ANALYZE: executes `query` with tracing forced on and renders
  /// the static plan followed by the recorded span tree (what actually
  /// ran: attempts, backoffs, failovers, phase timings). `options.trace`
  /// is implied; other options apply as given.
  Result<std::string> ExplainAnalyze(const std::string& query,
                                     const ExecutionOptions& options =
                                         ExecutionOptions());

  /// Replaces the time source used for this service's own measurements
  /// (wall/decompose/compose watches, trace spans) *and* for the
  /// cluster's executor, so a whole traced execution shares one clock.
  /// Deterministic tests inject a ManualClock. Coordinator-only, between
  /// executions; the clock must outlive the service.
  void set_clock(const Clock* clock) {
    clock_ = clock;
    cluster_->executor().set_clock(clock);
  }
  const Clock* clock() const { return clock_; }

 private:
  /// Decomposes `query` against the fixed catalog or, in versioned mode,
  /// a fresh snapshot — parked in `*held` so it outlives planning.
  Result<DistributedPlan> Decompose(
      const std::string& query,
      std::shared_ptr<const DistributionCatalog>* held) const;

  Result<std::string> ComposeJoin(const DistributedPlan& plan,
                                  std::vector<xdb::QueryResult> partials,
                                  uint64_t* result_items);

  ClusterSim* cluster_;
  const DistributionCatalog* catalog_ = nullptr;
  const VersionedCatalog* versioned_ = nullptr;
  QueryDecomposer decomposer_;
  const Clock* clock_ = Clock::Monotonic();
  /// Coordinator governor for in-flight result accounting (see
  /// set_memory_governor); charges go through the pinned consumer id.
  memory::MemoryGovernor* governor_ = nullptr;
  int governor_id_ = -1;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_QUERY_SERVICE_H_
