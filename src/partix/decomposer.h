#ifndef PARTIX_PARTIX_DECOMPOSER_H_
#define PARTIX_PARTIX_DECOMPOSER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "partix/catalog.h"
#include "xquery/compiled_query.h"

namespace partix::middleware {

/// How partial results are combined into the final answer.
enum class Composition {
  /// Concatenate the sub-results (horizontal ∪ / disjoint instance sets).
  kUnion,
  /// Sub-results are numbers; the answer is their sum (decomposed count()
  /// or sum() aggregates, fully evaluated in parallel as the paper notes).
  kSumCounts,
  /// Sub-queries fetch fragment documents; the middleware joins them by
  /// reconstruction ID and evaluates the original query over the joined
  /// documents (multi-fragment vertical/hybrid queries — the expensive
  /// path the paper contrasts with the horizontal union).
  kJoinReconstruct,
};

const char* CompositionName(Composition c);

/// One sub-query routed to one fragment's replica set.
struct SubQuery {
  std::string fragment;  // fragment (= collection) name at the node
  size_t node = 0;       // primary replica
  std::string query;
  /// Every node holding this fragment, primary first, in failover order.
  /// Empty means "primary only" — the executor treats it as {node}.
  std::vector<size_t> replicas;
  /// The compiled form of `query`, built structurally by the decomposer
  /// (cloned + rewritten AST, never re-parsed from the string). When set,
  /// the executor ships it through the driver's prepared-execution path —
  /// prepared once per (sub-query, node) and reused across retries and
  /// failovers. Null on hand-built plans; the executor then falls back to
  /// string execution. Keep last: hand-built plans aggregate-initialize
  /// the leading fields positionally.
  xquery::CompiledQueryPtr compiled;
};

/// A decomposed distributed execution plan.
struct DistributedPlan {
  std::string collection;      // the fragmented collection
  std::string original_query;  // as submitted
  Composition composition = Composition::kUnion;
  std::vector<SubQuery> subqueries;
  /// Fragments skipped by data localization (predicate contradiction).
  size_t pruned_fragments = 0;
  /// Human-readable notes on decomposition decisions (for EXPLAIN-style
  /// output).
  std::vector<std::string> notes;
  /// The compiled original query — the single parse of the whole
  /// middleware execution. Join composition re-executes it over the
  /// reconstructed documents without re-parsing. Null on hand-built
  /// plans (the service then falls back to parsing `original_query`).
  xquery::CompiledQueryPtr compiled;
};

/// Decomposes XQuery queries over fragmented collections into sub-queries
/// with data localization (paper §3.3 "Query Processing" + §4; the
/// automatic rewriting the paper leaves as future work is implemented here
/// for the query shapes of the workloads):
///
///   - horizontal: one sub-query per fragment with the collection name
///     substituted; fragments whose selection predicate contradicts the
///     query's conjunctive predicates are pruned (data localization).
///     Top-level count()/sum() queries compose by summing.
///   - vertical: queries whose touched paths all fall inside a single
///     fragment are rewritten (path prefixes dropped) and routed to that
///     fragment alone; queries spanning fragments fall back to fetching
///     the needed fragments and joining at the middleware.
///   - hybrid: instance fragments behave horizontally (union/sum over the
///     needed fragments, with μ-contradiction pruning); pure-projection
///     fragments behave vertically; mixed access falls back to the join.
///
/// The decomposer is conservative: whatever it cannot analyze it routes to
/// every fragment (horizontal/hybrid) or to the join path (vertical), so
/// answers remain correct.
class QueryDecomposer {
 public:
  explicit QueryDecomposer(const DistributionCatalog* catalog)
      : catalog_(catalog) {}

  /// Produces a plan for `query`. Queries referencing no fragmented
  /// collection yield a single-subquery plan against the centralized node
  /// when the catalog knows one.
  Result<DistributedPlan> Decompose(const std::string& query) const;

 private:
  const DistributionCatalog* catalog_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_DECOMPOSER_H_
