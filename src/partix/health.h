#ifndef PARTIX_PARTIX_HEALTH_H_
#define PARTIX_PARTIX_HEALTH_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace partix::middleware {

class ClusterSim;

/// Failure-detector verdict for one node. Health is advisory routing
/// state layered over the cluster's ground-truth liveness (IsNodeDown):
/// the executor prefers non-avoided nodes but falls back to ignoring
/// health rather than failing a query that could still succeed.
enum class NodeHealth {
  /// Suspicion below the suspect threshold: route normally.
  kHealthy,
  /// Accumulated failures crossed the suspect threshold but the node has
  /// not been declared dead; still routable, watched closely.
  kSuspect,
  /// Suspicion crossed the death threshold (or MarkDead was called).
  /// Sticky: only Revive clears it. Dead nodes are routed around and
  /// become repair sources of under-replication.
  kDead,
};

const char* NodeHealthName(NodeHealth health);

/// Tuning for the suspicion accumulator. Every failure adds
/// `failure_weight`, every success subtracts `success_decay` (floor 0),
/// so a node must fail repeatedly *without interleaved successes* to be
/// declared dead — one transient blip on a healthy node decays away.
struct HealthPolicy {
  double failure_weight = 1.0;
  double success_decay = 1.0;
  /// Suspicion at or above this marks the node kSuspect.
  double suspect_threshold = 2.0;
  /// Suspicion at or above this declares the node kDead (sticky).
  double death_threshold = 4.0;
  /// Cadence of the background prober started by Start().
  double probe_interval_ms = 20.0;
};

/// Aggregates per-node evidence — executor attempt outcomes plus active
/// liveness probes — into a suspicion level per node, declaring a node
/// dead once the evidence crosses a configurable threshold. Deliberately
/// simpler than phi-accrual: evidence here is a discrete pass/fail
/// stream, not inter-arrival times.
///
/// Thread-safety: ReportSuccess/ReportFailure/StateOf/ShouldAvoid/
/// SetQuarantined/ProbeAll are thread-safe (per-node mutexes; executor
/// workers call them concurrently). Start/Stop are coordinator-only.
/// The monitor must outlive every executor it is installed on.
class HealthMonitor {
 public:
  explicit HealthMonitor(ClusterSim* cluster, HealthPolicy policy = {});
  ~HealthMonitor();

  /// Evidence from the data path: a node-level failure (transient
  /// rejection, timeout, corrupt response) raises suspicion; a served
  /// request decays it. Deterministic engine errors are NOT evidence —
  /// the executor only reports faults attributable to the node.
  void ReportFailure(size_t node);
  void ReportSuccess(size_t node);

  NodeHealth StateOf(size_t node) const;
  double SuspicionOf(size_t node) const;

  /// True when the executor should route around `node`: declared dead or
  /// quarantined by the scrubber. Advisory — see class comment.
  bool ShouldAvoid(size_t node) const;

  /// Scrubber hook: a quarantined node holds at least one divergent
  /// fragment copy and is avoided until repair verifies and clears it.
  void SetQuarantined(size_t node, bool quarantined);
  bool IsQuarantined(size_t node) const;

  /// Administrative overrides (tests, operators). Revive zeroes
  /// suspicion and clears the sticky death verdict.
  void MarkDead(size_t node);
  void Revive(size_t node);

  /// One synchronous probe round: asks the cluster's liveness gate about
  /// every node and feeds the answers in as evidence. A permanently down
  /// node accumulates suspicion to the death threshold in
  /// ceil(death_threshold / failure_weight) rounds.
  void ProbeAll();

  /// Background prober running ProbeAll every probe_interval_ms until
  /// Stop() (or destruction). Idempotent.
  void Start();
  void Stop();

  /// Nodes currently declared dead, ascending.
  std::vector<size_t> DeadNodes() const;
  size_t node_count() const { return states_.size(); }
  const HealthPolicy& policy() const { return policy_; }

 private:
  /// State of one node; `mu` guards every field.
  struct NodeState {
    mutable std::mutex mu;
    double suspicion = 0.0;
    bool dead = false;
    bool quarantined = false;
  };

  /// Applies one evidence sample under the node's mutex; declares death
  /// when the accumulator crosses the threshold.
  void Accumulate(size_t node, bool failure);
  void PublishGauges() const;

  ClusterSim* cluster_;
  HealthPolicy policy_;
  std::vector<std::unique_ptr<NodeState>> states_;

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_HEALTH_H_
