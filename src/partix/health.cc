#include "partix/health.h"

#include <algorithm>
#include <chrono>

#include "partix/cluster.h"
#include "telemetry/metrics.h"

namespace partix::middleware {

namespace {

struct HealthTelemetry {
  telemetry::Counter* failures;
  telemetry::Counter* successes;
  telemetry::Counter* probes;
  telemetry::Counter* deaths;
  telemetry::Gauge* dead_nodes;
  telemetry::Gauge* quarantined_nodes;

  static const HealthTelemetry& Get() {
    static const HealthTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      HealthTelemetry out;
      out.failures = registry.GetCounter("partix_health_failures_total");
      out.successes = registry.GetCounter("partix_health_successes_total");
      out.probes = registry.GetCounter("partix_health_probes_total");
      out.deaths = registry.GetCounter("partix_health_deaths_total");
      out.dead_nodes = registry.GetGauge("partix_health_dead_nodes");
      out.quarantined_nodes =
          registry.GetGauge("partix_health_quarantined_nodes");
      return out;
    }();
    return t;
  }
};

}  // namespace

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDead:
      return "dead";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(ClusterSim* cluster, HealthPolicy policy)
    : cluster_(cluster), policy_(policy) {
  states_.reserve(cluster->node_count());
  for (size_t i = 0; i < cluster->node_count(); ++i) {
    states_.push_back(std::make_unique<NodeState>());
  }
}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::Accumulate(size_t node, bool failure) {
  if (node >= states_.size()) return;
  const HealthTelemetry& telemetry = HealthTelemetry::Get();
  bool died = false;
  {
    NodeState& s = *states_[node];
    std::lock_guard<std::mutex> lock(s.mu);
    if (failure) {
      s.suspicion += policy_.failure_weight;
      if (!s.dead && s.suspicion >= policy_.death_threshold) {
        s.dead = true;
        died = true;
      }
    } else {
      s.suspicion = std::max(0.0, s.suspicion - policy_.success_decay);
    }
  }
  if (failure) {
    telemetry.failures->Add();
  } else {
    telemetry.successes->Add();
  }
  if (died) {
    telemetry.deaths->Add();
    PublishGauges();
  }
}

void HealthMonitor::ReportFailure(size_t node) { Accumulate(node, true); }

void HealthMonitor::ReportSuccess(size_t node) { Accumulate(node, false); }

NodeHealth HealthMonitor::StateOf(size_t node) const {
  if (node >= states_.size()) return NodeHealth::kHealthy;
  NodeState& s = *states_[node];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.dead) return NodeHealth::kDead;
  if (s.suspicion >= policy_.suspect_threshold) return NodeHealth::kSuspect;
  return NodeHealth::kHealthy;
}

double HealthMonitor::SuspicionOf(size_t node) const {
  if (node >= states_.size()) return 0.0;
  NodeState& s = *states_[node];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.suspicion;
}

bool HealthMonitor::ShouldAvoid(size_t node) const {
  if (node >= states_.size()) return false;
  NodeState& s = *states_[node];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dead || s.quarantined;
}

void HealthMonitor::SetQuarantined(size_t node, bool quarantined) {
  if (node >= states_.size()) return;
  {
    NodeState& s = *states_[node];
    std::lock_guard<std::mutex> lock(s.mu);
    s.quarantined = quarantined;
  }
  PublishGauges();
}

bool HealthMonitor::IsQuarantined(size_t node) const {
  if (node >= states_.size()) return false;
  NodeState& s = *states_[node];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.quarantined;
}

void HealthMonitor::MarkDead(size_t node) {
  if (node >= states_.size()) return;
  bool died = false;
  {
    NodeState& s = *states_[node];
    std::lock_guard<std::mutex> lock(s.mu);
    died = !s.dead;
    s.dead = true;
    s.suspicion = std::max(s.suspicion, policy_.death_threshold);
  }
  if (died) {
    HealthTelemetry::Get().deaths->Add();
    PublishGauges();
  }
}

void HealthMonitor::Revive(size_t node) {
  if (node >= states_.size()) return;
  {
    NodeState& s = *states_[node];
    std::lock_guard<std::mutex> lock(s.mu);
    s.dead = false;
    s.quarantined = false;
    s.suspicion = 0.0;
  }
  PublishGauges();
}

void HealthMonitor::ProbeAll() {
  HealthTelemetry::Get().probes->Add();
  for (size_t i = 0; i < states_.size(); ++i) {
    Accumulate(i, cluster_->IsNodeDown(i));
  }
}

void HealthMonitor::Start() {
  std::lock_guard<std::mutex> lock(prober_mu_);
  if (prober_.joinable()) return;
  prober_stop_ = false;
  prober_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(prober_mu_);
    while (!prober_stop_) {
      lock.unlock();
      ProbeAll();
      lock.lock();
      prober_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(policy_.probe_interval_ms),
          [this] { return prober_stop_; });
    }
  });
}

void HealthMonitor::Stop() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = true;
    prober_cv_.notify_all();
    joinable = std::move(prober_);
  }
  if (joinable.joinable()) joinable.join();
}

std::vector<size_t> HealthMonitor::DeadNodes() const {
  std::vector<size_t> dead;
  for (size_t i = 0; i < states_.size(); ++i) {
    NodeState& s = *states_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.dead) dead.push_back(i);
  }
  return dead;
}

void HealthMonitor::PublishGauges() const {
  size_t dead = 0;
  size_t quarantined = 0;
  for (const auto& state : states_) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->dead) ++dead;
    if (state->quarantined) ++quarantined;
  }
  const HealthTelemetry& telemetry = HealthTelemetry::Get();
  telemetry.dead_nodes->Set(static_cast<double>(dead));
  telemetry.quarantined_nodes->Set(static_cast<double>(quarantined));
}

}  // namespace partix::middleware
