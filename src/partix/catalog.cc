#include "partix/catalog.h"

#include <set>

namespace partix::middleware {

Status SchemaCatalog::Register(const std::string& name,
                               xml::SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null schema for '" + name + "'");
  }
  if (!schemas_.emplace(name, std::move(schema)).second) {
    return Status::AlreadyExists("schema '" + name + "' already registered");
  }
  return Status::Ok();
}

Result<xml::SchemaPtr> SchemaCatalog::Get(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::NotFound("schema '" + name + "' not registered");
  }
  return it->second;
}

std::vector<std::string> SchemaCatalog::Names() const {
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) out.push_back(name);
  return out;
}

std::vector<size_t> FragmentPlacement::AllNodes() const {
  std::vector<size_t> out;
  out.reserve(1 + backups.size());
  out.push_back(node);
  for (size_t b : backups) out.push_back(b);
  return out;
}

Result<size_t> DistributionEntry::NodeOf(const std::string& fragment) const {
  for (const FragmentPlacement& p : placements) {
    if (p.fragment == fragment) return p.node;
  }
  return Status::NotFound("fragment '" + fragment + "' has no placement");
}

Result<std::vector<size_t>> DistributionEntry::ReplicasOf(
    const std::string& fragment) const {
  for (const FragmentPlacement& p : placements) {
    if (p.fragment == fragment) return p.AllNodes();
  }
  return Status::NotFound("fragment '" + fragment + "' has no placement");
}

Status DistributionCatalog::ValidatePlacements(
    const frag::FragmentationSchema& schema,
    const std::vector<FragmentPlacement>& placements) {
  std::set<std::string> placed;
  for (const FragmentPlacement& p : placements) {
    std::set<size_t> nodes;
    for (size_t n : p.AllNodes()) {
      if (!nodes.insert(n).second) {
        return Status::InvalidArgument(
            "fragment '" + p.fragment + "' lists node " + std::to_string(n) +
            " as more than one replica");
      }
    }
    placed.insert(p.fragment);
  }
  for (const frag::FragmentDef& def : schema.fragments) {
    if (placed.count(def.name()) == 0) {
      return Status::InvalidArgument("fragment '" + def.name() +
                                     "' has no placement");
    }
  }
  return Status::Ok();
}

Status DistributionCatalog::Register(
    frag::FragmentationSchema schema,
    std::vector<FragmentPlacement> placements) {
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  const std::string collection = schema.collection;
  if (entries_.count(collection) != 0 ||
      centralized_.count(collection) != 0) {
    return Status::AlreadyExists("collection '" + collection +
                                 "' already registered");
  }
  PARTIX_RETURN_IF_ERROR(ValidatePlacements(schema, placements));
  entries_.emplace(collection, DistributionEntry{std::move(schema),
                                                 std::move(placements)});
  return Status::Ok();
}

Status DistributionCatalog::UpdatePlacements(
    const std::string& collection,
    std::vector<FragmentPlacement> placements) {
  auto it = entries_.find(collection);
  if (it == entries_.end()) {
    return Status::NotFound("collection '" + collection +
                            "' has no fragmentation entry");
  }
  PARTIX_RETURN_IF_ERROR(ValidatePlacements(it->second.schema, placements));
  it->second.placements = std::move(placements);
  return Status::Ok();
}

Status DistributionCatalog::RegisterCentralized(const std::string& collection,
                                                size_t node,
                                                uint64_t serialized_bytes) {
  if (entries_.count(collection) != 0 ||
      centralized_.count(collection) != 0) {
    return Status::AlreadyExists("collection '" + collection +
                                 "' already registered");
  }
  centralized_.emplace(collection, node);
  if (serialized_bytes > 0) {
    centralized_bytes_.emplace(collection, serialized_bytes);
  }
  return Status::Ok();
}

uint64_t DistributionCatalog::SerializedBytesOf(
    const std::string& collection) const {
  auto it = entries_.find(collection);
  if (it != entries_.end()) {
    uint64_t total = 0;
    for (const FragmentPlacement& p : it->second.placements) {
      total += p.serialized_bytes;
    }
    return total;
  }
  auto cit = centralized_bytes_.find(collection);
  return cit == centralized_bytes_.end() ? 0 : cit->second;
}

bool DistributionCatalog::IsFragmented(const std::string& collection) const {
  return entries_.count(collection) != 0;
}

Result<const DistributionEntry*> DistributionCatalog::Get(
    const std::string& collection) const {
  auto it = entries_.find(collection);
  if (it == entries_.end()) {
    return Status::NotFound("collection '" + collection +
                            "' has no fragmentation entry");
  }
  return &it->second;
}

Result<size_t> DistributionCatalog::CentralizedNode(
    const std::string& collection) const {
  auto it = centralized_.find(collection);
  if (it == centralized_.end()) {
    return Status::NotFound("collection '" + collection +
                            "' is not registered as centralized");
  }
  return it->second;
}

std::vector<std::pair<std::string, size_t>>
DistributionCatalog::CentralizedCollections() const {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(centralized_.size());
  for (const auto& [name, node] : centralized_) out.emplace_back(name, node);
  return out;
}

std::vector<std::string> DistributionCatalog::FragmentedCollections() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

VersionedCatalog::VersionedCatalog(DistributionCatalog initial)
    : current_(
          std::make_shared<const DistributionCatalog>(std::move(initial))) {}

std::shared_ptr<const DistributionCatalog> VersionedCatalog::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t VersionedCatalog::Install(DistributionCatalog next) {
  auto installed = std::make_shared<const DistributionCatalog>(std::move(next));
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(installed);
  return ++version_;
}

uint64_t VersionedCatalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

}  // namespace partix::middleware
