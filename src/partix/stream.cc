#include "partix/stream.h"

#include <string>
#include <utility>

#include "common/strings.h"
#include "telemetry/metrics.h"

namespace partix::middleware {

namespace {

/// Block-flow counters. Conservation invariant: for any completed query,
/// blocks_total == blocks_consumed + blocks_discarded (deltas); the
/// streaming tests assert it around fault-injected runs.
struct StreamTelemetry {
  telemetry::Counter* blocks_total;
  telemetry::Counter* blocks_consumed;
  telemetry::Counter* blocks_discarded;
  telemetry::Gauge* inflight_bytes;

  static const StreamTelemetry& Get() {
    static const StreamTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      StreamTelemetry out;
      out.blocks_total = registry.GetCounter("partix_stream_blocks_total");
      out.blocks_consumed =
          registry.GetCounter("partix_stream_blocks_consumed_total");
      out.blocks_discarded =
          registry.GetCounter("partix_stream_blocks_discarded_total");
      out.inflight_bytes =
          registry.GetGauge("partix_inflight_result_bytes");
      return out;
    }();
    return t;
  }
};

}  // namespace

BlockChannel::BlockChannel(size_t subquery_count, size_t buffer_cap_bytes,
                           memory::MemoryGovernor* governor, int consumer_id)
    : cap_bytes_(buffer_cap_bytes),
      governor_(governor),
      consumer_id_(consumer_id),
      lanes_(subquery_count) {}

BlockChannel::~BlockChannel() {
  // Producers are done by contract; anything still queued was never
  // consumed — count it discarded and release its accounting so the
  // governor ends the query with zero bytes charged to this channel.
  size_t remaining_bytes = 0;
  uint64_t remaining_blocks = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    for (Lane& lane : lanes_) {
      for (const xdb::ResultBlock& block : lane.queue) {
        remaining_bytes += block.serialized.size();
        ++remaining_blocks;
      }
      lane.queue.clear();
    }
    buffered_bytes_ = 0;
    discarded_ += remaining_blocks;
  }
  if (remaining_blocks > 0) {
    StreamTelemetry::Get().blocks_discarded->Add(
        static_cast<double>(remaining_blocks));
  }
  if (remaining_bytes > 0) ReleaseAccounting(remaining_bytes);
}

void BlockChannel::ReleaseAccounting(size_t bytes) {
  StreamTelemetry::Get().inflight_bytes->Add(-static_cast<double>(bytes));
  if (governor_ != nullptr) governor_->Release(consumer_id_, bytes);
}

void BlockChannel::BeginAttempt(size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  lanes_[i].replay_pos = 0;
}

Status BlockChannel::Push(size_t i, xdb::ResultBlock block) {
  // Digest of the actual bytes (not the stamped field, which a corrupted
  // wire leaves stale): the replay record must pin what the consumer
  // really received.
  const uint64_t digest = Fnv1a64(block.serialized);
  const size_t bytes = block.serialized.size();
  // Charge BEFORE the block can become visible to the pop side. Pull /
  // DrainDiscard / the destructor release a block's bytes as they pop
  // it, and the governor clamps a release against the consumer's
  // current balance — a release that raced ahead of this charge would
  // be swallowed and the late charge would outlive the query. The two
  // paths below that never enqueue (replay duplicate, closed channel)
  // undo the charge themselves; a lane has exactly one producer at a
  // time, so its replay state cannot change between here and the
  // critical section.
  StreamTelemetry::Get().inflight_bytes->Add(static_cast<double>(bytes));
  if (governor_ != nullptr) governor_->Charge(consumer_id_, bytes);
  Status status = Status::Ok();
  bool committed = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Lane& lane = lanes_[i];
    if (lane.replay_pos < lane.committed) {
      // Failover replay: the replacement replica re-produces blocks this
      // lane already committed (some possibly already composed). Verify
      // byte-identity and drop — no charge, no counter.
      if (digest != lane.digests[lane.replay_pos]) {
        status = Status::Internal(
            "replica stream prefix diverged during failover (block " +
            std::to_string(lane.replay_pos) + " of sub-query " +
            std::to_string(i) + ")");
      } else {
        ++lane.replay_pos;
      }
    } else {
      // Backpressure: wait for buffer room unless this is the lane the
      // consumer is draining right now — that lane must always make
      // progress or consumer and producer deadlock against the cap.
      producer_cv_.wait(lock, [&] {
        return closed_ || i == cursor_ || cap_bytes_ == 0 ||
               buffered_bytes_ < cap_bytes_;
      });
      if (closed_) {
        status = Status::Internal("block channel closed under producer");
      } else {
        lane.queue.push_back(std::move(block));
        lane.digests.push_back(digest);
        ++lane.committed;
        lane.replay_pos = lane.committed;
        buffered_bytes_ += bytes;
        ++produced_;
        committed = true;
        consumer_cv_.notify_all();
      }
    }
  }
  if (!committed) {
    ReleaseAccounting(bytes);
    return status;
  }
  StreamTelemetry::Get().blocks_total->Add(1);
  return Status::Ok();
}

void BlockChannel::Finish(size_t i, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  Lane& lane = lanes_[i];
  lane.finished = true;
  lane.final_status = std::move(status);
  consumer_cv_.notify_all();
}

Result<bool> BlockChannel::Pull(size_t i, xdb::ResultBlock* out) {
  size_t bytes = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cursor_ = i;
    producer_cv_.notify_all();
    Lane& lane = lanes_[i];
    consumer_cv_.wait(lock,
                      [&] { return !lane.queue.empty() || lane.finished; });
    if (lane.queue.empty()) {
      if (!lane.final_status.ok()) return lane.final_status;
      return false;
    }
    *out = std::move(lane.queue.front());
    lane.queue.pop_front();
    bytes = out->serialized.size();
    buffered_bytes_ -= bytes;
    ++consumed_;
    producer_cv_.notify_all();
  }
  StreamTelemetry::Get().blocks_consumed->Add(1);
  ReleaseAccounting(bytes);
  return true;
}

void BlockChannel::DrainDiscard(size_t i) {
  for (;;) {
    size_t bytes = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cursor_ = i;
      producer_cv_.notify_all();
      Lane& lane = lanes_[i];
      consumer_cv_.wait(lock,
                        [&] { return !lane.queue.empty() || lane.finished; });
      if (lane.queue.empty()) return;
      bytes = lane.queue.front().serialized.size();
      lane.queue.pop_front();
      buffered_bytes_ -= bytes;
      ++discarded_;
      producer_cv_.notify_all();
    }
    StreamTelemetry::Get().blocks_discarded->Add(1);
    ReleaseAccounting(bytes);
  }
}

uint64_t BlockChannel::produced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return produced_;
}

uint64_t BlockChannel::consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consumed_;
}

uint64_t BlockChannel::discarded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

}  // namespace partix::middleware
