#ifndef PARTIX_PARTIX_SCHEDULER_H_
#define PARTIX_PARTIX_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <condition_variable>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "memory/governor.h"
#include "partix/query_service.h"

namespace partix::middleware {

/// How the scheduler orders queued queries when an execution slot frees.
enum class FairnessPolicy {
  /// Strict arrival order.
  kFifo,
  /// Weighted fair sharing across clients: each submission is stamped a
  /// WFQ start tag at enqueue (the client's virtual-service accumulator,
  /// which the submission advances by 1/weight), and the waiter with the
  /// smallest tag goes first (arrival order breaks ties). A client with
  /// weight 2 gets twice the admission share of a weight-1 client under
  /// contention, and an idle client's first query is never starved by a
  /// busy one's backlog. Tags are not refunded on queue timeout/drain:
  /// abandoned waits still spent the client's share.
  kWeightedFair,
};

/// Admission-control knobs for a Scheduler. Defaults admit a small amount
/// of concurrency and queue (without timeout) what exceeds it.
struct SchedulerOptions {
  /// Queries executing at once. Admissions beyond this queue (or are
  /// rejected when the queue is full). Minimum 1.
  size_t max_concurrent_queries = 4;
  /// Queries allowed to wait for a slot. A submission arriving with the
  /// queue full is rejected immediately with kResourceExhausted — the
  /// backpressure signal callers are expected to handle (shed load,
  /// retry later). 0 disables queueing: beyond the concurrent slots,
  /// every submission is rejected.
  size_t queue_capacity = 16;
  /// Longest a submission may wait in the queue (ms) before it is bounced
  /// with kResourceExhausted. 0 = wait indefinitely (bounded only by the
  /// client's own deadline, if any).
  double queue_timeout_ms = 0.0;
  /// Queue ordering under contention.
  FairnessPolicy fairness = FairnessPolicy::kFifo;
  /// Worker threads in the scheduler's shared pool. 0 sizes it to the
  /// hardware concurrency. The pool grows on demand (executor dispatches
  /// may EnsureThreads up to their node-count cap) but never shrinks.
  size_t pool_threads = 0;
  /// Coordinator memory governor consulted at admission (see
  /// docs/memory.md). When set, a query is only admitted while its
  /// estimated footprint fits the governor's headroom; otherwise it
  /// queues until enough in-flight work releases bytes. The admitted
  /// footprint is charged to the governor (pinned — admission itself
  /// never evicts running queries) for the duration of the execution.
  /// Forward progress is guaranteed: with no query active, the best
  /// waiter is admitted regardless of headroom, so overload degrades
  /// into queueing instead of deadlock or OOM. nullptr (default)
  /// disables memory-aware admission. Must outlive the scheduler.
  memory::MemoryGovernor* governor = nullptr;
  /// Estimates a query's coordinator-memory footprint in bytes from its
  /// text; 0 = unknown (falls back to default_query_footprint_bytes).
  /// MakeCatalogFootprintEstimator builds one from the distribution
  /// catalog's published fragment sizes. Unset = always the default.
  std::function<size_t(const std::string& query)> footprint_estimator;
  /// Footprint assumed when no estimator is set or it returns 0 (the
  /// collection was published without sizes).
  size_t default_query_footprint_bytes = 1 << 20;
};

/// Identity and per-query limits of the submitting client. Default: an
/// anonymous weight-1 client with no deadline.
struct ClientContext {
  /// Fairness bucket. Clients sharing an id share one virtual-service
  /// accumulator; "" is the shared anonymous bucket.
  std::string client_id;
  /// Relative admission share under kWeightedFair (ignored under kFifo).
  /// Values <= 0 are treated as 1.
  double weight = 1.0;
  /// Whole-query deadline in ms, *including* time spent waiting for
  /// admission. Expiry in the queue fails the query kDeadlineExceeded
  /// without executing anything; after admission the remaining budget
  /// composes into the retry policy's sub-query deadline (the tighter of
  /// the two wins — see docs/query-scheduling.md for the composition
  /// table). 0 = no deadline.
  double deadline_ms = 0.0;
};

/// Monotonic admission counters. Conservation invariants (checked by
/// tests and bench/concurrent_qps):
///
///   submitted == admitted + rejected + drained   (always)
///   admitted  == completed                        (once idle/drained)
///
/// `rejected` counts queue-full bounces, queue timeouts, and deadlines
/// that expired while queued; `drained` counts submissions refused (or
/// waiters woken) because the scheduler was shutting down.
struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t drained = 0;
  /// Admitted queries whose execution finished (ok or not).
  uint64_t completed = 0;
  /// Submissions that had to wait in the queue before admission.
  uint64_t queued = 0;
  /// High-water mark of the wait queue.
  uint64_t max_queue_depth = 0;
  /// Submissions deferred (queued, or kept queued at the head of the
  /// line) at least once because their estimated footprint exceeded the
  /// memory governor's headroom. Counted once per submission.
  uint64_t memory_deferred = 0;
};

/// Multi-query admission control over one QueryService: callers from any
/// thread submit queries; at most `max_concurrent_queries` execute at
/// once, the next `queue_capacity` wait their turn (FIFO or weighted
/// fair), and the rest are refused with a typed verdict the caller can
/// branch on:
///
///   kResourceExhausted  queue full, or queue_timeout_ms elapsed waiting
///                       (the message says "memory" when the wait was for
///                       governor headroom rather than an execution slot)
///   kDeadlineExceeded   the client's deadline expired while queued
///   kUnavailable        the scheduler is draining / shut down
///
/// With SchedulerOptions::governor set, admission additionally requires
/// the query's estimated memory footprint to fit the governor's headroom
/// (pressure-aware admission: overload degrades into queueing instead of
/// OOM). See docs/memory.md.
///
/// The scheduler owns the process's ONE worker pool for its service and
/// installs it into the cluster's executor, so inter-query concurrency
/// (admitted callers) and intra-query parallelism (executor fan-out)
/// draw from the same bounded set of threads instead of every query
/// growing private ones. Admitted callers run the query on their own
/// thread (the executor fans out below them); the pool never runs
/// whole-query closures, so admission never deadlocks on pool capacity.
///
/// Thread-safe: Execute/ExecutePlan/stats/queue_depth may be called from
/// any thread. Drain() stops admission, bounces the queue, and blocks
/// until in-flight queries finish; the destructor drains, detaches the
/// pool from the executor, and joins the workers. set_clock is
/// control-plane: call it before the first submission.
class Scheduler {
 public:
  /// `service` must outlive the scheduler. The constructor installs the
  /// scheduler's pool into the service's executor; the destructor
  /// restores the executor's default (process-wide) pool. One scheduler
  /// per service at a time.
  explicit Scheduler(QueryService* service,
                     const SchedulerOptions& options = SchedulerOptions());
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits (possibly after queueing) and executes `query` on the calling
  /// thread. Returns the execution's result, or the admission verdict
  /// error when the query never ran.
  Result<DistributedResult> Execute(
      const std::string& query,
      const ExecutionOptions& options = ExecutionOptions(),
      const ClientContext& client = ClientContext());

  /// ExecutePlan with the same admission pipeline.
  Result<DistributedResult> ExecutePlan(
      const DistributedPlan& plan,
      const ExecutionOptions& options = ExecutionOptions(),
      const ClientContext& client = ClientContext());

  /// Stops admitting, fails every queued waiter kUnavailable (counted
  /// `drained`), and blocks until the in-flight queries complete.
  /// Idempotent; subsequent submissions keep failing kUnavailable.
  void Drain();

  /// Snapshot of the admission counters (internally consistent).
  SchedulerStats stats() const;

  /// Waiters currently queued for admission.
  size_t queue_depth() const;
  /// Queries currently executing.
  size_t active_queries() const;

  ThreadPool& pool() { return pool_; }

  /// Clock for admission-wait measurement and deadline math. Injected by
  /// deterministic tests; MonotonicClock by default. Note the *blocking*
  /// in queue waits uses real time (condition-variable timeouts) — a
  /// ManualClock changes what is measured, not how long callers block.
  void set_clock(const Clock* clock) { clock_ = clock; }

 private:
  /// One queued submission, living on its submitter's stack.
  struct Waiter {
    uint64_t seq = 0;        // arrival order
    double vtime = 0.0;      // virtual-service key under kWeightedFair
    std::string client_id;
    double weight = 1.0;
    size_t footprint = 0;    // estimated bytes, charged on admission
    bool admitted = false;
    bool drained = false;
    /// Already counted in stats_.memory_deferred (count once per waiter).
    bool memory_deferred = false;
  };

  /// Estimated coordinator footprint of `query`: the estimator's figure
  /// when one is set and it knows the collections, the flat default
  /// otherwise; clamped to the governor budget so an over-budget query
  /// is admissible when running alone.
  size_t EstimateFootprint(const std::string& query) const;
  /// Whether `footprint` bytes fit the governor's current headroom (true
  /// with no governor). Caller holds mu_.
  bool MemoryAdmissibleLocked(size_t footprint) const;
  /// Blocks until admitted or refused. On success `*wait_ms` holds the
  /// admission wait and `*was_queued` whether it had to queue; the
  /// footprint has been charged to the governor.
  Status Admit(const ClientContext& client, size_t footprint,
               double* wait_ms, bool* was_queued);
  /// Releases an execution slot (and the footprint charged at admission)
  /// and admits eligible waiters.
  void Release(size_t footprint);
  /// Admits waiters while slots are free, best-first per the fairness
  /// policy. A memory-inadmissible best waiter blocks the line (skipping
  /// it would starve big queries behind a stream of small ones) unless
  /// nothing is active, in which case it is admitted for forward
  /// progress. Caller holds mu_.
  void AdmitEligibleLocked();
  /// The admission pipeline around one execution callable.
  template <typename Fn>
  Result<DistributedResult> Run(Fn&& fn, const ExecutionOptions& options,
                                const ClientContext& client,
                                size_t footprint);

  QueryService* service_;
  SchedulerOptions options_;
  const Clock* clock_ = Clock::Monotonic();
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool draining_ = false;
  size_t active_ = 0;
  uint64_t next_seq_ = 0;
  std::deque<Waiter*> waiting_;
  /// Per-client virtual service under kWeightedFair: each submission
  /// takes its start tag here at enqueue and advances the accumulator by
  /// 1/weight; tags are floored at the admitted-vtime floor so a
  /// long-idle client re-joins the present instead of replaying its
  /// unused past share.
  std::map<std::string, double> virtual_service_;
  double admitted_vtime_floor_ = 0.0;
  SchedulerStats stats_;
  /// Pinned consumer id under options_.governor holding the admitted
  /// queries' footprints; -1 when no governor is configured.
  int governor_id_ = -1;
};

/// Builds a SchedulerOptions::footprint_estimator from the distribution
/// catalog's published fragment sizes: the estimate is the summed
/// serialized bytes of every collection the query references (scanned as
/// collection("NAME") occurrences) times `expansion`, the measured
/// serialized-to-parsed blowup (parsed nodes + decoded text + result
/// buffers; ~3x on the workload documents). Returns 0 — "unknown, use
/// the default" — when the query references no sized collection. The
/// catalog must outlive the returned function.
std::function<size_t(const std::string&)> MakeCatalogFootprintEstimator(
    const DistributionCatalog* catalog, double expansion = 3.0);

/// Versioned-catalog flavour: snapshots `versioned` at each estimate, so
/// repair-installed catalogs update footprints for queries admitted after
/// the swap.
std::function<size_t(const std::string&)> MakeCatalogFootprintEstimator(
    const VersionedCatalog* versioned, double expansion = 3.0);

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_SCHEDULER_H_
