#ifndef PARTIX_PARTIX_ALLOCATION_H_
#define PARTIX_PARTIX_ALLOCATION_H_

#include <vector>

#include "common/result.h"
#include "partix/catalog.h"
#include "xml/collection.h"

namespace partix::middleware {

/// How fragments are assigned to cluster nodes when the operator does not
/// place them explicitly. The paper's evaluation uses one fragment per
/// node; real deployments often have fewer nodes than fragments, making
/// allocation part of the distribution design (paper §3.3: "fragmenting
/// collections of documents and allocating the resulting fragments in
/// sites of a distributed system").
enum class PlacementStrategy {
  /// Fragment i -> node i mod n.
  kRoundRobin,
  /// Longest-processing-time greedy: repeatedly assign the largest
  /// remaining fragment to the least-loaded node, minimizing the maximum
  /// per-node bytes (the quantity the parallel response-time model is
  /// bounded by).
  kSizeBalanced,
};

/// Computes placements for materialized fragment collections over
/// `node_count` nodes. `replication_factor` is the number of distinct
/// nodes each fragment is placed on (1 = no replication); the first
/// replica is the primary, the rest are failover backups. Requires
/// `replication_factor >= 1` and `replication_factor <= node_count`.
///
///   - kRoundRobin: replica r of fragment i lands on node (i + r) mod n.
///   - kSizeBalanced: the primary is placed by LPT; each backup goes to
///     the least-loaded node not already holding that fragment (replicas
///     consume space, so loads account for every copy).
Result<std::vector<FragmentPlacement>> ComputePlacements(
    const std::vector<xml::Collection>& fragments, size_t node_count,
    PlacementStrategy strategy, size_t replication_factor = 1);

/// The resulting per-node loads (bytes) of a placement — every replica of
/// every fragment counts — for reporting and tests.
std::vector<uint64_t> PlacementLoads(
    const std::vector<xml::Collection>& fragments,
    const std::vector<FragmentPlacement>& placements, size_t node_count);

/// Per-node replica counts across every fragmented collection of a
/// catalog. Fragment sizes are not recorded in the catalog, so this copy
/// count is the load signal replica repair balances when it picks the
/// least-loaded healthy target for a restored copy.
std::vector<size_t> CatalogReplicaCounts(const DistributionCatalog& catalog,
                                         size_t node_count);

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_ALLOCATION_H_
