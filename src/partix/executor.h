#ifndef PARTIX_PARTIX_EXECUTOR_H_
#define PARTIX_PARTIX_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/database.h"
#include "partix/decomposer.h"
#include "telemetry/trace.h"

namespace partix::middleware {

class BlockChannel;
class ClusterSim;
class HealthMonitor;

/// Retry/timeout policy applied to every sub-query of a Dispatch. All
/// randomness (backoff jitter) comes from a per-sub-query RNG derived
/// from `seed` and the sub-query's index, so a fixed seed reproduces the
/// exact retry schedule.
struct RetryPolicy {
  /// Total tries per sub-query, including the first (0 behaves as 1).
  size_t max_attempts = 3;
  /// Exponential backoff between tries: sleep
  /// `min(base * multiplier^k, max) * (1 + U(-jitter, jitter))` ms before
  /// retry k+1. base <= 0 disables the sleep (still counts attempts).
  double base_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 64.0;
  /// Jitter fraction in [0, 1): each backoff is scaled by a uniform
  /// factor in [1-jitter, 1+jitter].
  double jitter = 0.5;
  /// Per-attempt budget (ms). An attempt whose measured wall time exceeds
  /// this is treated as kDeadlineExceeded — its result is discarded even
  /// if the node eventually answered — and retried/failed over like any
  /// transient error. 0 = no per-attempt timeout.
  double attempt_timeout_ms = 0.0;
  /// Total budget (ms) across all attempts of one sub-query, including
  /// backoff sleeps. Once exhausted, the sub-query fails with
  /// kDeadlineExceeded and `SubQueryOutcome::timed_out` is set.
  /// 0 = no deadline.
  double subquery_deadline_ms = 0.0;
  /// Seed for backoff jitter. Sub-query i draws from
  /// Rng(seed ^ golden(i)), so concurrent sub-queries never share a
  /// stream and runs are reproducible.
  uint64_t seed = 0;
};

/// Per-node circuit breaker: after `failure_threshold` consecutive
/// failures a node's breaker opens and the executor stops sending it
/// work. After `open_ms`, exactly one half-open probe request is let
/// through; success closes the breaker, failure re-opens it for another
/// `open_ms`. failure_threshold == 0 disables breakers.
struct CircuitBreakerPolicy {
  size_t failure_threshold = 3;
  double open_ms = 100.0;
};

/// Knobs for one Dispatch call.
struct DispatchOptions {
  /// Caps sub-queries in flight at once: 1 runs them sequentially on the
  /// calling thread, 0 means one worker per sub-query.
  size_t parallelism = 1;
  /// Morsel parallelism *inside* each node's engine: every dispatched
  /// sub-query asks its node to split collection-scale iteration into up
  /// to this many chunks on the same shared worker pool the dispatch
  /// itself runs on (no second pool — the scheduler's admission control
  /// keeps governing total thread demand). 1 (the default) evaluates
  /// sequentially; results are byte-identical either way. See
  /// docs/intra-node-parallelism.md.
  size_t intra_node_parallelism = 1;
  RetryPolicy retry;
  /// End-to-end integrity: recompute each response's digest and compare
  /// it against the node-stamped `QueryResult::response_digest`. A
  /// mismatch is a retryable node fault (the executor fails over to a
  /// replica), never a served result. Responses carrying no digest
  /// (response_digest == 0) are not checked.
  bool verify_response_digests = true;
  /// When set, every sub-query fills `SubQueryOutcome::span` with its
  /// span subtree (attempts, backoffs, failovers), timed against the
  /// tracer's epoch/clock. Null (the default) records nothing. The
  /// tracer must outlive the Dispatch call; workers only read it.
  const telemetry::Tracer* tracer = nullptr;
  /// When set, sub-queries stream: each worker opens a block cursor on
  /// its node and forwards blocks into this channel (lane = sub-query
  /// index) as they arrive, instead of materializing one QueryResult.
  /// Every block is digest-verified (under verify_response_digests)
  /// before it enters the channel; a mid-stream node failure fails over
  /// and the channel's replay verification keeps the forwarded prefix
  /// exact. On success the outcome's result is a QueryResult carrying
  /// only metrics (empty bytes — they went through the channel). The
  /// channel must outlive the Dispatch; Finish(index, status) fires
  /// exactly once per sub-query, after all retries resolved.
  BlockChannel* stream = nullptr;
  /// Target items per streamed block (0 = the engine default).
  size_t stream_block_items = 0;
};

/// Outcome of one dispatched sub-query, index-aligned with the plan's
/// sub-query list.
struct SubQueryOutcome {
  Result<xdb::QueryResult> result;
  /// Measured wall-clock of this dispatch on its worker, across every
  /// attempt: RPC emulation (if configured on the cluster's NetworkModel),
  /// node execution, and backoff sleeps.
  double wall_ms = 0.0;
  /// Tries actually made (>= 1 whenever a candidate node was reachable).
  size_t attempts = 0;
  /// Times execution moved to a different node than the previous attempt
  /// targeted (0 when the primary answered, or when there was nowhere
  /// else to go).
  size_t failovers = 0;
  /// The node that produced `result` (last node targeted on failure).
  /// Defaults to the sub-query's primary when nothing was reachable.
  size_t node = 0;
  /// True when any attempt of this sub-query hit its per-attempt budget
  /// or the overall deadline expired — set even when a later attempt
  /// succeeded (DistributedResult::timed_out_subqueries counts these).
  bool timed_out = false;
  /// Attempts whose response failed digest verification (the node
  /// answered, but the bytes were mangled in flight). Each one was
  /// discarded and retried/failed over like a transient fault.
  size_t corrupt_responses = 0;
  // --- conservation accounting (see docs/query-scheduling.md) ---
  /// Attempts that actually reached a node's engine (the fault gate
  /// admitted them): successes, discarded-late successes, and
  /// non-retryable engine errors. Transient/down rejections and
  /// circuit-open skips consume no engine request, so summing this
  /// across outcomes equals the growth of the cluster's
  /// NodeRequestCount totals — except under fail_first_requests faults,
  /// whose rejections deplete the node-side budget counter without any
  /// engine work happening.
  size_t engine_requests = 0;
  /// Attempts that ended kDeadlineExceeded (per-attempt budget or the
  /// composed deadline), whether or not the sub-query later succeeded.
  size_t timed_out_attempts = 0;
  /// Attempts the engine *completed successfully* but whose wall time
  /// exceeded the attempt budget, so the result was discarded and the
  /// attempt recorded as a timeout. The engine-side work still happened:
  /// these attempts count in `engine_requests` and their compile /
  /// plan-cache accounting is folded into the fields below.
  size_t discarded_successes = 0;
  /// Milliseconds between Dispatch admitting the sub-query and a worker
  /// starting it (pool queueing; ~0 under sequential dispatch).
  double queue_wait_ms = 0.0;
  // --- compile-once accounting ---
  /// Node-side Prepare calls made for this sub-query: at most one per
  /// distinct node tried, however many attempts ran there (retries and
  /// failovers reuse the handle). 0 when the sub-query carried no
  /// compiled form and executed by string.
  size_t prepares = 0;
  /// Of those prepares (or, on the string path, of the executions that
  /// produced `result`), how many were served from the node's plan cache.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Node-side compile cost this sub-query actually paid (ms, summed over
  /// prepares; 0 when every prepare hit the plan cache).
  double compile_ms = 0.0;
  /// Filled only when DispatchOptions::tracer was set: this sub-query's
  /// span subtree, named with the canonical `fragment@node<i>` token of
  /// the node that served (or last refused) it, with one child span per
  /// attempt and backoff sleep.
  telemetry::TraceSpan span;
};

/// The middleware's sub-query executor: dispatches each SubQuery of a
/// distributed plan on a worker thread, gathers the per-node
/// `Result<xdb::QueryResult>`s, and reports the measured wall-clock time
/// of the whole fan-out/fan-in. This is what turns the paper's *modeled*
/// parallel response time (max over sites) into an observable property:
/// `DistributedResult` carries both figures.
///
/// Fault tolerance: each sub-query is tried against its replica list in
/// order (primary first). A kUnavailable or kDeadlineExceeded attempt is
/// retried — after exponential backoff — against the next live replica
/// whose circuit breaker admits traffic, wrapping around; any other
/// status is treated as non-retryable and fails the sub-query
/// immediately. Per-node circuit breakers persist across Dispatch calls,
/// so a flapping node stops receiving traffic until its open window
/// elapses and a half-open probe succeeds.
///
/// Worker-pool policy: the executor owns NO pool. Every Dispatch runs on
/// a shared `ThreadPool` — either one injected with set_pool (the
/// `partix::Scheduler` installs its process-wide pool there, see
/// scheduler.h) or, absent that, a lazily created process-wide fallback
/// shared by every Executor in the process. The pool is grown (never
/// shrunk) to at most `max(hardware_concurrency, cluster node_count)`
/// threads per dispatch. Why that cap and not plain
/// `hardware_concurrency`: same-node sub-queries serialize at the
/// per-node driver mutex, so threads beyond one-per-node cannot add
/// concurrency; but workers *block* (driver mutex, emulated RPC,
/// injected latency) holding no core, so one-per-node must stay
/// available even when the host has fewer cores than the cluster has
/// nodes — otherwise blocking waits serialize and the overlap
/// `bench/parallel_speedup` measures disappears. Requests beyond the
/// cap still all complete: tasks claim sub-query indices from a shared
/// counter, so a smaller (or busy) pool simply drains the same work
/// with fewer threads.
///
/// Thread-safety: Dispatch is safe to call concurrently from multiple
/// client threads (the multi-query service requires it). Workers write
/// only to the calling dispatch's disjoint outcome slots; the per-node
/// breaker states are shared across concurrent dispatches (vector growth
/// under breakers_mu_, each node's state under its own mutex) — which is
/// what makes a flapping node back off for *every* query, not just the
/// one that tripped it; the cluster data plane is thread-safe (see
/// cluster.h). set_pool, set_clock, set_breaker_policy and ResetBreakers
/// remain control-plane: call them only while no Dispatch is in flight.
class Executor {
 public:
  explicit Executor(ClusterSim* cluster) : cluster_(cluster) {}

  /// Runs every sub-query against its replica set. `outcomes` is resized
  /// and index-aligned with `subqueries`, so downstream result
  /// composition is deterministic regardless of completion order.
  /// Returns the measured wall-clock milliseconds of the fan-out.
  ///
  /// Pre: every node index in every sub-query's replica list is in range
  /// (the query service validates routing before dispatching).
  double Dispatch(const std::vector<SubQuery>& subqueries,
                  const DispatchOptions& options,
                  std::vector<SubQueryOutcome>* outcomes);

  /// Back-compat convenience: Dispatch with default retry policy.
  double Dispatch(const std::vector<SubQuery>& subqueries, size_t parallelism,
                  std::vector<SubQueryOutcome>* outcomes) {
    DispatchOptions options;
    options.parallelism = parallelism;
    return Dispatch(subqueries, options, outcomes);
  }

  /// Replaces the breaker policy and resets all breaker state.
  /// Coordinator-only.
  void set_breaker_policy(CircuitBreakerPolicy policy);
  const CircuitBreakerPolicy& breaker_policy() const {
    return breaker_policy_;
  }

  /// Closes every breaker and zeroes failure counters. Coordinator-only.
  void ResetBreakers();

  /// Installs an advisory health monitor (nullptr — the default —
  /// disables health-aware routing). When set, candidate selection
  /// prefers nodes the monitor does not flag (dead/quarantined), and
  /// node-level attempt outcomes (success, retryable failure, corrupt
  /// response) are reported back as failure-detector evidence. Advisory
  /// only: when every replica is flagged, selection retries ignoring
  /// health, so a stale verdict can delay a query but never fail one the
  /// cluster could serve. The monitor must outlive the executor.
  /// Control-plane: set only while no Dispatch is in flight.
  void set_health_monitor(HealthMonitor* monitor) { health_ = monitor; }
  HealthMonitor* health_monitor() const { return health_; }

  /// True when node `i`'s breaker is currently open (no traffic admitted,
  /// half-open probe not yet due or in flight). Introspection for tests.
  bool breaker_open(size_t node) const;

  /// Replaces the time source for every measurement this executor takes
  /// (wall times, backoff deadlines, breaker windows, trace spans when
  /// the dispatch's tracer shares the clock). Deterministic tests inject
  /// a ManualClock; the default is the real monotonic clock. The clock
  /// must outlive the executor. Coordinator-only, between dispatches.
  void set_clock(const Clock* clock) { clock_ = clock; }
  const Clock* clock() const { return clock_; }

  /// Routes every parallel Dispatch through `pool` (non-owning; the pool
  /// must outlive the executor or be reset to nullptr first). nullptr —
  /// the default — falls back to the process-wide shared pool. The
  /// Scheduler installs its pool here so inter- and intra-query
  /// parallelism draw from one set of workers. Control-plane: set only
  /// while no Dispatch is in flight.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  /// The process-wide fallback pool used by executors with no injected
  /// pool. Created on first use with one thread per hardware thread and
  /// grown on demand; lives until process exit.
  static ThreadPool& SharedProcessPool();

 private:
  /// Breaker state of one node; `mu` guards every field. Workers touching
  /// different nodes never contend.
  struct NodeBreakerState {
    mutable std::mutex mu;
    size_t consecutive_failures = 0;
    bool open = false;
    /// An open breaker whose window elapsed admits exactly one probe;
    /// `probing` marks that the probe has been handed out.
    bool probing = false;
    Stopwatch opened_at;
  };

  void RunOne(const SubQuery& sub, size_t index, const DispatchOptions& options,
              const Stopwatch& dispatch_watch, SubQueryOutcome* out);

  /// The pool this executor actually runs on: the injected scheduler pool
  /// when set, else the process-wide fallback. Morsel workers draw from
  /// the same pool (one set of threads for inter- and intra-query AND
  /// intra-node parallelism).
  ThreadPool& EffectivePool() const {
    return pool_ != nullptr ? *pool_ : SharedProcessPool();
  }

  /// Grows `breakers_` to cover every node index in `subqueries`.
  /// Thread-safe (concurrent dispatches may race to grow it).
  void EnsureBreakers(const std::vector<SubQuery>& subqueries);

  /// The breaker state for `node`, or nullptr when none exists. The
  /// returned pointer is stable (states are heap-allocated and never
  /// freed before the executor), so callers lock only the node's mutex.
  NodeBreakerState* BreakerFor(size_t node) const;

  /// Whether the breaker currently admits a request to `node` (may hand
  /// out the half-open probe as a side effect).
  bool BreakerAllows(size_t node);
  void RecordSuccess(size_t node);
  void RecordFailure(size_t node);

  ClusterSim* cluster_;
  HealthMonitor* health_ = nullptr;
  const Clock* clock_ = Clock::Monotonic();
  CircuitBreakerPolicy breaker_policy_;
  /// Guards the vector structure only; each state has its own mutex.
  mutable std::mutex breakers_mu_;
  std::vector<std::unique_ptr<NodeBreakerState>> breakers_;
  /// Injected shared pool (scheduler-owned); nullptr = process-wide pool.
  ThreadPool* pool_ = nullptr;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_EXECUTOR_H_
