#ifndef PARTIX_PARTIX_EXECUTOR_H_
#define PARTIX_PARTIX_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/database.h"
#include "partix/decomposer.h"

namespace partix::middleware {

class ClusterSim;

/// Outcome of one dispatched sub-query, index-aligned with the plan's
/// sub-query list.
struct SubQueryOutcome {
  Result<xdb::QueryResult> result;
  /// Measured wall-clock of this dispatch on its worker: RPC emulation
  /// (if configured on the cluster's NetworkModel) + node execution.
  double wall_ms = 0.0;
};

/// The middleware's sub-query executor: dispatches each SubQuery of a
/// distributed plan to its node on a worker thread, gathers the per-node
/// `Result<xdb::QueryResult>`s, and reports the measured wall-clock time
/// of the whole fan-out/fan-in. This is what turns the paper's *modeled*
/// parallel response time (max over sites) into an observable property:
/// `DistributedResult` carries both figures.
///
/// Thread-compatible: one Dispatch call at a time per Executor (the query
/// service drives it from its coordinator thread). Internally, worker
/// threads write only to disjoint outcome slots and call the per-node
/// drivers, which serialize access to their engines (see driver.h).
class Executor {
 public:
  explicit Executor(ClusterSim* cluster) : cluster_(cluster) {}

  /// Runs every sub-query against its node. `parallelism` caps the number
  /// of sub-queries in flight at once: 1 runs them sequentially on the
  /// calling thread (the pre-executor prototype behaviour), 0 means one
  /// worker per sub-query. `outcomes` is resized and index-aligned with
  /// `subqueries`, so downstream result composition is deterministic
  /// regardless of completion order. Returns the measured wall-clock
  /// milliseconds of the fan-out.
  ///
  /// Pre: every sub-query's node index is in range (the query service
  /// validates routing — including down nodes — before dispatching).
  double Dispatch(const std::vector<SubQuery>& subqueries, size_t parallelism,
                  std::vector<SubQueryOutcome>* outcomes);

 private:
  void RunOne(const SubQuery& sub, SubQueryOutcome* out);

  ClusterSim* cluster_;
  /// Lazily created; grown (never shrunk) to the largest parallelism
  /// requested, so repeated queries reuse warm threads.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace partix::middleware

#endif  // PARTIX_PARTIX_EXECUTOR_H_
