#ifndef PARTIX_FRAGMENTATION_SCHEMA_IO_H_
#define PARTIX_FRAGMENTATION_SCHEMA_IO_H_

#include <string>

#include "common/result.h"
#include "fragmentation/fragment_def.h"

namespace partix::frag {

/// Serializes a fragmentation design to a line-based, tab-separated text
/// form that round-trips through ParseFragmentationSchema:
///
///   collection <tab> items
///   hybrid_mode <tab> frag2
///   horizontal <tab> f_cd <tab> /Item/Section = "CD"
///   vertical <tab> f_prolog <tab> /article/prolog <tab> <prune;...>
///   hybrid <tab> f_items <tab> /Store/Items <tab> <prune;...> <tab> <mu>
///
/// Predicates use the same textual forms xpath::Conjunction::Parse
/// accepts; prune lists separate paths with ';' (empty when none).
std::string SerializeFragmentationSchema(const FragmentationSchema& schema);

/// Parses the textual form back into a design (validating its structure).
Result<FragmentationSchema> ParseFragmentationSchema(
    const std::string& text);

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_SCHEMA_IO_H_
