#ifndef PARTIX_FRAGMENTATION_ADVISOR_H_
#define PARTIX_FRAGMENTATION_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"
#include "xml/collection.h"

namespace partix::frag {

/// A simple predicate observed in the workload, with how often (or how
/// important) it is. Weights drive predicate selection when the fragment
/// budget is tight.
struct WeightedPredicate {
  xpath::Predicate predicate;
  double weight = 1.0;
};

/// Knobs for the design algorithms.
struct AdvisorOptions {
  /// Upper bound on emitted fragments. The minterm algorithm uses the
  /// floor(log2(max_fragments)) highest-weight predicates so the design
  /// never exceeds the budget.
  size_t max_fragments = 8;
};

/// A proposed design plus the reasoning behind it.
struct AdvisorReport {
  FragmentationSchema schema;
  /// Predicates actually used (highest weight first).
  std::vector<std::string> used_predicates;
  /// Documents per emitted fragment, aligned with schema.fragments.
  std::vector<size_t> fragment_sizes;
  /// Human-readable notes (dropped predicates, balance).
  std::vector<std::string> notes;

  /// max(fragment size) / ideal size; 1.0 is perfectly balanced.
  double BalanceFactor() const;
};

/// Designs a horizontal fragmentation of the MD collection `c` from the
/// workload's simple predicates using the classical minterm method the
/// paper inherits from relational distribution design (Özsu & Valduriez
/// [15], the methodology the paper lists as future work):
///
///   1. keep the floor(log2(max_fragments)) highest-weight predicates;
///   2. every document is classified by the bit-vector of predicate
///      outcomes (its *minterm*);
///   3. each non-empty minterm becomes one fragment whose μ is the
///      conjunction of the predicates (asserted or complemented);
///   4. the design is complete and disjoint by construction (each
///      document satisfies exactly one minterm under the single-
///      occurrence assumption).
///
/// Documents that satisfy no observed minterm cannot exist; future
/// documents falling into an unobserved minterm are routed to a catch-all
/// fragment when `emit_catch_all` minterms were unobserved (reported in
/// the notes).
Result<AdvisorReport> DesignHorizontalByMinterms(
    const xml::Collection& c, std::vector<WeightedPredicate> predicates,
    const AdvisorOptions& options = AdvisorOptions());

/// Convenience front-end: mines simple predicates from XQuery workload
/// texts (conjunctive where-clause and step predicates over the
/// collection's documents) and feeds them to the minterm design. Queries
/// contribute weight 1 each (repeat a query to weight it higher).
Result<AdvisorReport> DesignHorizontalFromQueries(
    const xml::Collection& c, const std::vector<std::string>& queries,
    const AdvisorOptions& options = AdvisorOptions());

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_ADVISOR_H_
