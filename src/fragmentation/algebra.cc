#include "fragmentation/algebra.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "xpath/eval.h"

namespace partix::frag {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

xml::Collection Select(const xml::Collection& c,
                       const xpath::Conjunction& mu,
                       const std::string& result_name) {
  xml::Collection out(result_name, c.schema(), c.root_path(), c.kind());
  for (const DocumentPtr& doc : c.docs()) {
    if (mu.Eval(*doc)) {
      // Result of Add can only fail for empty docs / SD overflow; selection
      // over an MD collection cannot hit either.
      (void)out.Add(doc);
    }
  }
  return out;
}

Result<DocumentPtr> ProjectDocument(const Document& src, const xpath::Path& p,
                                    const std::vector<xpath::Path>& gamma,
                                    const std::string& result_doc_name) {
  std::vector<NodeId> selected = xpath::EvalPath(src, p);
  if (selected.empty()) return DocumentPtr(nullptr);
  if (selected.size() > 1) {
    return Status::FailedPrecondition(
        "projection path " + p.ToString() + " selects " +
        std::to_string(selected.size()) + " nodes in document '" +
        src.doc_name() +
        "'; vertical fragments require a single node (use a positional "
        "index)");
  }
  NodeId projected = selected[0];

  // Nodes whose subtrees the prune criterion removes.
  std::unordered_set<NodeId> pruned_roots;
  for (const xpath::Path& e : gamma) {
    for (NodeId n : xpath::EvalPath(src, e)) pruned_roots.insert(n);
  }

  auto doc = std::make_shared<Document>(src.pool(), result_doc_name);
  doc->EnableOriginTracking(src.doc_name());
  NodeId copied = doc->CopySubtree(
      src, projected, kNullNode,
      [&pruned_roots](NodeId n) { return pruned_roots.count(n) != 0; });
  if (copied == kNullNode) {
    // The projected root itself was pruned: an empty fragment instance.
    return DocumentPtr(nullptr);
  }

  // Record the ancestor scaffold (root -> parent of projected node).
  std::vector<std::pair<NodeId, std::string>> ancestors;
  for (NodeId a = src.parent(projected); a != kNullNode; a = src.parent(a)) {
    ancestors.emplace_back(a, std::string(src.name(a)));
  }
  std::reverse(ancestors.begin(), ancestors.end());
  doc->SetOriginAncestors(std::move(ancestors));
  doc->SealLabels();
  return DocumentPtr(doc);
}

Result<xml::Collection> UnionCollections(
    const std::vector<xml::Collection>& fragments,
    const std::string& result_name) {
  if (fragments.empty()) {
    return Status::InvalidArgument("union of zero fragment collections");
  }
  xml::Collection out(result_name, fragments[0].schema(),
                      fragments[0].root_path(), fragments[0].kind());
  std::set<std::string> seen;
  for (const xml::Collection& frag : fragments) {
    for (const DocumentPtr& doc : frag.docs()) {
      if (!seen.insert(doc->doc_name()).second) {
        return Status::FailedPrecondition(
            "document '" + doc->doc_name() +
            "' appears in more than one fragment (disjointness violation)");
      }
      PARTIX_RETURN_IF_ERROR(out.Add(doc));
    }
  }
  return out;
}

namespace {

/// Flat description of one source node gathered from the fragments.
struct NodeInfo {
  NodeKind kind = NodeKind::kElement;
  std::string name;
  std::string value;
  NodeId parent = kNullNode;
  bool scaffold = false;  // re-created ancestor, not fragment data
};

}  // namespace

Result<DocumentPtr> JoinFragmentsValueJoin(
    const std::vector<DocumentPtr>& fragment_docs,
    std::shared_ptr<xml::NamePool> pool) {
  if (fragment_docs.empty()) {
    return Status::InvalidArgument("join of zero fragment documents");
  }
  const std::string& source = fragment_docs[0]->origin_doc();

  // Gather the node table keyed by source node id. std::map iteration
  // order (increasing id) is pre-order of the source document, so parents
  // precede children when rebuilding.
  std::map<NodeId, NodeInfo> table;
  for (const DocumentPtr& frag : fragment_docs) {
    if (!frag->origin_tracking()) {
      return Status::FailedPrecondition(
          "fragment document '" + frag->doc_name() +
          "' carries no reconstruction IDs");
    }
    if (frag->origin_doc() != source) {
      return Status::InvalidArgument(
          "fragments from different source documents: '" + source +
          "' vs '" + frag->origin_doc() + "'");
    }
    if (frag->empty()) continue;
    // Ancestor scaffolding: id -> element name chain.
    const auto& ancestors = frag->origin_ancestors();
    for (size_t i = 0; i < ancestors.size(); ++i) {
      auto [id, name] = ancestors[i];
      auto it = table.find(id);
      if (it == table.end()) {
        NodeInfo info;
        info.kind = NodeKind::kElement;
        info.name = name;
        info.parent = i == 0 ? kNullNode : ancestors[i - 1].first;
        info.scaffold = true;
        table.emplace(id, std::move(info));
      }
    }
    NodeId frag_root = frag->root();
    NodeId root_parent =
        ancestors.empty() ? kNullNode : ancestors.back().first;
    Status status = Status::Ok();
    frag->VisitSubtree(frag_root, [&](NodeId n) {
      if (!status.ok()) return;
      NodeId src_id = frag->origin(n);
      if (src_id == kNullNode) {
        status = Status::Corruption("fragment node without origin id in '" +
                                    frag->doc_name() + "'");
        return;
      }
      NodeInfo info;
      info.kind = frag->kind(n);
      if (info.kind != NodeKind::kText) {
        info.name = std::string(frag->name(n));
      }
      if (info.kind != NodeKind::kElement) {
        info.value = std::string(frag->value(n));
      }
      info.parent = n == frag_root ? root_parent : frag->origin(frag->parent(n));
      info.scaffold = frag->scaffold(n);
      auto [it, inserted] = table.emplace(src_id, info);
      if (!inserted) {
        if (it->second.scaffold) {
          // A real fragment node overrides a scaffold entry (a scaffold
          // duplicate keeps the existing one).
          if (!info.scaffold) it->second = std::move(info);
        } else if (!info.scaffold) {
          status = Status::FailedPrecondition(
              "source node " + std::to_string(src_id) + " of '" + source +
              "' appears in more than one fragment (disjointness "
              "violation)");
        }
      }
    });
    PARTIX_RETURN_IF_ERROR(status);
  }

  // Rebuild top-down. Source ids are pre-order, so a std::map walk visits
  // parents before children; sibling order is restored because children of
  // one parent appear in increasing id order.
  auto doc = std::make_shared<Document>(std::move(pool), source);
  std::map<NodeId, NodeId> rebuilt;  // source id -> new id
  for (const auto& [src_id, info] : table) {
    NodeId parent_new = kNullNode;
    if (info.parent != kNullNode) {
      auto it = rebuilt.find(info.parent);
      if (it == rebuilt.end()) {
        return Status::Corruption(
            "parent of source node " + std::to_string(src_id) +
            " missing from all fragments of '" + source + "'");
      }
      parent_new = it->second;
    } else if (!doc->empty()) {
      return Status::Corruption("multiple roots while reconstructing '" +
                                source + "'");
    }
    if (info.parent == kNullNode && info.kind != NodeKind::kElement) {
      return Status::Corruption("non-element root while reconstructing '" +
                                source + "'");
    }
    NodeId created = kNullNode;
    switch (info.kind) {
      case NodeKind::kElement:
        created = info.parent == kNullNode
                      ? doc->CreateRoot(info.name)
                      : doc->AppendElement(parent_new, info.name);
        break;
      case NodeKind::kAttribute:
        created = doc->AppendAttribute(parent_new, info.name, info.value);
        break;
      case NodeKind::kText:
        created = doc->AppendText(parent_new, info.value);
        break;
    }
    rebuilt.emplace(src_id, created);
  }
  if (doc->empty()) {
    return Status::Corruption("reconstruction of '" + source +
                              "' produced no nodes");
  }
  return DocumentPtr(doc);
}

namespace {

/// One fragment's contribution to the label merge, in increasing origin id
/// (= source preorder = prefix-label order): the scaffold ancestor chain
/// first, then the fragment subtree in document order.
struct MergeRun {
  struct Entry {
    NodeId src_id;
    NodeId node;          // kNullNode for an ancestor-chain entry
    uint32_t anc;         // index into origin_ancestors() when node is null
    NodeId parent_src;    // origin id of the parent in the source document
    bool scaffold;
  };
  const Document* frag = nullptr;
  std::vector<Entry> entries;
  size_t cursor = 0;

  bool exhausted() const { return cursor >= entries.size(); }
  const Entry& head() const { return entries[cursor]; }
};

}  // namespace

Result<DocumentPtr> JoinFragments(
    const std::vector<DocumentPtr>& fragment_docs,
    std::shared_ptr<xml::NamePool> pool) {
  if (fragment_docs.empty()) {
    return Status::InvalidArgument("join of zero fragment documents");
  }
  const std::string& source = fragment_docs[0]->origin_doc();

  // Phase 1: one pass per fragment lays out its pre-sorted run. No node
  // table and no name/value copies — entries only reference the fragment.
  std::vector<MergeRun> runs;
  runs.reserve(fragment_docs.size());
  for (const DocumentPtr& frag : fragment_docs) {
    if (!frag->origin_tracking()) {
      return Status::FailedPrecondition(
          "fragment document '" + frag->doc_name() +
          "' carries no reconstruction IDs");
    }
    if (frag->origin_doc() != source) {
      return Status::InvalidArgument(
          "fragments from different source documents: '" + source +
          "' vs '" + frag->origin_doc() + "'");
    }
    if (frag->empty()) continue;
    MergeRun run;
    run.frag = frag.get();
    run.entries.reserve(frag->origin_ancestors().size() +
                        frag->node_count());
    const auto& ancestors = frag->origin_ancestors();
    for (size_t i = 0; i < ancestors.size(); ++i) {
      run.entries.push_back(MergeRun::Entry{
          ancestors[i].first, kNullNode, static_cast<uint32_t>(i),
          i == 0 ? kNullNode : ancestors[i - 1].first, true});
    }
    const NodeId frag_root = frag->root();
    const NodeId root_parent =
        ancestors.empty() ? kNullNode : ancestors.back().first;
    Status status = Status::Ok();
    frag->VisitSubtree(frag_root, [&](NodeId n) {
      if (!status.ok()) return;
      NodeId src_id = frag->origin(n);
      if (src_id == kNullNode) {
        status = Status::Corruption("fragment node without origin id in '" +
                                    frag->doc_name() + "'");
        return;
      }
      run.entries.push_back(MergeRun::Entry{
          src_id, n, 0,
          n == frag_root ? root_parent : frag->origin(frag->parent(n)),
          frag->scaffold(n)});
    });
    PARTIX_RETURN_IF_ERROR(status);
    // Projection emits origins in source document order (the ancestor
    // chain strictly precedes the projected subtree), so the run is
    // already sorted; re-establish the invariant for hand-built fragments.
    auto by_id = [](const MergeRun::Entry& a, const MergeRun::Entry& b) {
      return a.src_id < b.src_id;
    };
    if (!std::is_sorted(run.entries.begin(), run.entries.end(), by_id)) {
      std::stable_sort(run.entries.begin(), run.entries.end(), by_id);
    }
    runs.push_back(std::move(run));
  }

  // Phase 2: k-way merge of the runs by origin id. Ids are source preorder
  // positions, so nodes are emitted parents-first in document order and
  // the output document can be built directly, top-down.
  auto doc = std::make_shared<Document>(std::move(pool), source);
  std::unordered_map<NodeId, NodeId> rebuilt;  // source id -> new id
  for (;;) {
    uint64_t min_id = UINT64_MAX;
    for (const MergeRun& run : runs) {
      if (!run.exhausted()) {
        min_id = std::min(min_id, uint64_t{run.head().src_id});
      }
    }
    if (min_id == UINT64_MAX) break;
    const NodeId src_id = static_cast<NodeId>(min_id);

    // Resolve all claimants of this source node: a real fragment node
    // wins over scaffolding; two real claimants violate disjointness.
    const MergeRun::Entry* winner = nullptr;
    const Document* winner_frag = nullptr;
    bool have_real = false;
    for (MergeRun& run : runs) {
      while (!run.exhausted() && run.head().src_id == src_id) {
        const MergeRun::Entry& e = run.head();
        ++run.cursor;
        if (!e.scaffold) {
          if (have_real) {
            return Status::FailedPrecondition(
                "source node " + std::to_string(src_id) + " of '" + source +
                "' appears in more than one fragment (disjointness "
                "violation)");
          }
          have_real = true;
          winner = &e;
          winner_frag = run.frag;
        } else if (winner == nullptr) {
          winner = &e;
          winner_frag = run.frag;
        }
      }
    }

    NodeId parent_new = kNullNode;
    if (winner->parent_src != kNullNode) {
      auto it = rebuilt.find(winner->parent_src);
      if (it == rebuilt.end()) {
        return Status::Corruption(
            "parent of source node " + std::to_string(src_id) +
            " missing from all fragments of '" + source + "'");
      }
      parent_new = it->second;
    } else if (!doc->empty()) {
      return Status::Corruption("multiple roots while reconstructing '" +
                                source + "'");
    }

    NodeId created = kNullNode;
    if (winner->node == kNullNode) {
      // Ancestor-chain scaffold: always an element.
      const std::string& name =
          winner_frag->origin_ancestors()[winner->anc].second;
      created = winner->parent_src == kNullNode
                    ? doc->CreateRoot(name)
                    : doc->AppendElement(parent_new, name);
    } else {
      const Document& f = *winner_frag;
      const NodeId n = winner->node;
      switch (f.kind(n)) {
        case NodeKind::kElement:
          created = winner->parent_src == kNullNode
                        ? doc->CreateRoot(f.name(n))
                        : doc->AppendElement(parent_new, f.name(n));
          break;
        case NodeKind::kAttribute:
          if (winner->parent_src == kNullNode) {
            return Status::Corruption(
                "non-element root while reconstructing '" + source + "'");
          }
          created = doc->AppendAttribute(parent_new, f.name(n), f.value(n));
          break;
        case NodeKind::kText:
          if (winner->parent_src == kNullNode) {
            return Status::Corruption(
                "non-element root while reconstructing '" + source + "'");
          }
          created = doc->AppendText(parent_new, f.value(n));
          break;
      }
    }
    rebuilt.emplace(src_id, created);
  }
  if (doc->empty()) {
    return Status::Corruption("reconstruction of '" + source +
                              "' produced no nodes");
  }
  doc->SealLabels();
  return DocumentPtr(doc);
}

}  // namespace partix::frag
