#include "fragmentation/advisor.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/strings.h"

#include "xquery/ast.h"
#include "xquery/parser.h"

namespace partix::frag {

namespace {

using xpath::Conjunction;
using xpath::Predicate;

/// Returns floor(log2(n)), at least 0.
size_t FloorLog2(size_t n) {
  size_t bits = 0;
  while (n > 1) {
    n >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

double AdvisorReport::BalanceFactor() const {
  if (fragment_sizes.empty()) return 1.0;
  size_t total = 0;
  size_t largest = 0;
  for (size_t s : fragment_sizes) {
    total += s;
    largest = std::max(largest, s);
  }
  if (total == 0) return 1.0;
  double ideal =
      static_cast<double>(total) / static_cast<double>(fragment_sizes.size());
  return static_cast<double>(largest) / ideal;
}

Result<AdvisorReport> DesignHorizontalByMinterms(
    const xml::Collection& c, std::vector<WeightedPredicate> predicates,
    const AdvisorOptions& options) {
  if (c.kind() == xml::RepoKind::kSingleDocument) {
    return Status::FailedPrecondition(
        "SD collections cannot be horizontally fragmented; use a hybrid "
        "design");
  }
  if (predicates.empty()) {
    return Status::InvalidArgument("no workload predicates supplied");
  }
  if (options.max_fragments < 2) {
    return Status::InvalidArgument("max_fragments must be at least 2");
  }

  AdvisorReport report;

  // Deduplicate predicates (summing weights), then keep the heaviest k.
  std::vector<WeightedPredicate> merged;
  for (WeightedPredicate& wp : predicates) {
    bool found = false;
    for (WeightedPredicate& existing : merged) {
      if (existing.predicate == wp.predicate) {
        existing.weight += wp.weight;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(wp));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const WeightedPredicate& a, const WeightedPredicate& b) {
                     return a.weight > b.weight;
                   });
  const size_t budget_bits = std::max<size_t>(1, FloorLog2(options.max_fragments));
  if (merged.size() > budget_bits) {
    for (size_t i = budget_bits; i < merged.size(); ++i) {
      report.notes.push_back("dropped low-weight predicate: " +
                             merged[i].predicate.ToString());
    }
    merged.erase(merged.begin() + budget_bits, merged.end());
  }
  for (const WeightedPredicate& wp : merged) {
    report.used_predicates.push_back(wp.predicate.ToString());
  }

  // Classify every document by its minterm bit-vector.
  std::map<uint64_t, size_t> minterm_counts;
  for (const xml::DocumentPtr& doc : c.docs()) {
    uint64_t mask = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].predicate.Eval(*doc)) mask |= uint64_t{1} << i;
    }
    minterm_counts[mask] += 1;
  }

  // Each observed minterm becomes a fragment; unobserved minterms are
  // reported (completeness for future documents is only instance-based,
  // as the paper's correctness procedures are).
  FragmentationSchema schema;
  schema.collection = c.name();
  size_t fragment_index = 0;
  for (const auto& [mask, count] : minterm_counts) {
    Conjunction mu;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (mask & (uint64_t{1} << i)) {
        mu.Add(merged[i].predicate);
      } else {
        mu.Add(merged[i].predicate.Complement());
      }
    }
    schema.fragments.emplace_back(HorizontalDef{
        c.name() + "_m" + std::to_string(fragment_index++), std::move(mu)});
    report.fragment_sizes.push_back(count);
  }
  const size_t possible = size_t{1} << merged.size();
  if (minterm_counts.size() < possible) {
    report.notes.push_back(
        std::to_string(possible - minterm_counts.size()) +
        " minterm(s) hold no current document and were not emitted; "
        "re-run the advisor after bulk loads that change the data "
        "distribution");
  }
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  report.schema = std::move(schema);
  return report;
}

namespace {

using xquery::AxisStep;
using xquery::BinaryOp;
using xquery::ContextItem;
using xquery::Expr;
using xquery::ExprPtr;
using xquery::FlworExpr;
using xquery::ForLetClause;
using xquery::FunctionCall;
using xquery::PathExpr;
using xquery::StringLit;
using xquery::VarRef;

/// Mines conjunctive simple predicates from a query for the advisor. The
/// mined predicate paths are absolute over the collection's documents.
/// This is deliberately the same (conservative) fragment-predicate shape
/// the decomposer localizes on, so advisor-produced designs localize the
/// very queries they were derived from.
class PredicateMiner {
 public:
  std::vector<Predicate> Run(const Expr& root) {
    Walk(root);
    return std::move(out_);
  }

 private:
  std::optional<std::vector<xpath::Step>> FullSteps(
      const PathExpr& p, const std::vector<xpath::Step>* base_override) {
    std::vector<xpath::Step> base;
    if (p.source == nullptr) {
      return std::nullopt;
    } else if (p.source->Is<ContextItem>()) {
      if (base_override == nullptr) return std::nullopt;
      base = *base_override;
    } else if (p.source->Is<VarRef>()) {
      auto it = vars_.find(p.source->As<VarRef>().name);
      if (it == vars_.end()) return std::nullopt;
      base = it->second;
    } else if (p.source->Is<FunctionCall>()) {
      const auto& f = p.source->As<FunctionCall>();
      if (f.name != "collection" && f.name != "doc") return std::nullopt;
    } else {
      return std::nullopt;
    }
    for (const AxisStep& s : p.steps) base.push_back(s.step);
    return base;
  }

  void MineConjunct(const Expr& e,
                    const std::vector<xpath::Step>* base_override) {
    if (e.Is<BinaryOp>()) {
      const auto& b = e.As<BinaryOp>();
      if (b.op == BinaryOp::Op::kAnd) {
        MineConjunct(*b.lhs, base_override);
        MineConjunct(*b.rhs, base_override);
        return;
      }
      xpath::CompareOp op;
      switch (b.op) {
        case BinaryOp::Op::kEq:
          op = xpath::CompareOp::kEq;
          break;
        case BinaryOp::Op::kNe:
          op = xpath::CompareOp::kNe;
          break;
        case BinaryOp::Op::kLt:
          op = xpath::CompareOp::kLt;
          break;
        case BinaryOp::Op::kLe:
          op = xpath::CompareOp::kLe;
          break;
        case BinaryOp::Op::kGt:
          op = xpath::CompareOp::kGt;
          break;
        case BinaryOp::Op::kGe:
          op = xpath::CompareOp::kGe;
          break;
        default:
          return;
      }
      const Expr* path_side = nullptr;
      const Expr* lit_side = nullptr;
      if (b.lhs->Is<PathExpr>()) {
        path_side = b.lhs.get();
        lit_side = b.rhs.get();
      } else if (b.rhs->Is<PathExpr>()) {
        path_side = b.rhs.get();
        lit_side = b.lhs.get();
      } else {
        return;
      }
      std::string value;
      if (lit_side->Is<StringLit>()) {
        value = lit_side->As<StringLit>().value;
      } else if (lit_side->Is<xquery::NumberLit>()) {
        value = FormatNumber(lit_side->As<xquery::NumberLit>().value);
      } else {
        return;
      }
      auto steps = FullSteps(path_side->As<PathExpr>(), base_override);
      if (!steps) return;
      out_.push_back(
          Predicate::Compare(xpath::Path(*steps), op, std::move(value)));
      return;
    }
    if (e.Is<FunctionCall>()) {
      const auto& f = e.As<FunctionCall>();
      if (f.name == "contains" && f.args.size() == 2 &&
          f.args[0]->Is<PathExpr>() && f.args[1]->Is<StringLit>()) {
        auto steps = FullSteps(f.args[0]->As<PathExpr>(), base_override);
        if (steps) {
          out_.push_back(Predicate::Contains(
              xpath::Path(*steps), f.args[1]->As<StringLit>().value));
        }
      }
      return;
    }
    if (e.Is<PathExpr>()) {
      auto steps = FullSteps(e.As<PathExpr>(), base_override);
      if (steps) out_.push_back(Predicate::Exists(xpath::Path(*steps)));
    }
  }

  void Walk(const Expr& e) {
    if (e.Is<PathExpr>()) {
      const auto& p = e.As<PathExpr>();
      if (p.source != nullptr) Walk(*p.source);
      std::optional<std::vector<xpath::Step>> full = FullSteps(p, nullptr);
      std::vector<xpath::Step> base;
      if (full) base.assign(full->begin(), full->end() - p.steps.size());
      for (const AxisStep& s : p.steps) {
        base.push_back(s.step);
        for (const ExprPtr& pred : s.predicates) {
          if (full) MineConjunct(*pred, &base);
          Walk(*pred);
        }
      }
      return;
    }
    if (e.Is<FunctionCall>()) {
      for (const ExprPtr& arg : e.As<FunctionCall>().args) Walk(*arg);
      return;
    }
    if (e.Is<FlworExpr>()) {
      const auto& f = e.As<FlworExpr>();
      auto saved = vars_;
      for (const ForLetClause& clause : f.clauses) {
        if (clause.expr->Is<PathExpr>()) {
          auto full = FullSteps(clause.expr->As<PathExpr>(), nullptr);
          if (full) vars_[clause.var] = *full;
        }
        Walk(*clause.expr);
      }
      if (f.where != nullptr) MineConjunct(*f.where, nullptr);
      Walk(*f.ret);
      vars_ = std::move(saved);
      return;
    }
    if (e.Is<BinaryOp>()) {
      Walk(*e.As<BinaryOp>().lhs);
      Walk(*e.As<BinaryOp>().rhs);
      return;
    }
    if (e.Is<xquery::UnaryMinus>()) {
      Walk(*e.As<xquery::UnaryMinus>().operand);
      return;
    }
    if (e.Is<xquery::ElementCtor>()) {
      for (const ExprPtr& item : e.As<xquery::ElementCtor>().content) {
        Walk(*item);
      }
      return;
    }
    if (e.Is<xquery::IfExpr>()) {
      const auto& i = e.As<xquery::IfExpr>();
      Walk(*i.cond);
      Walk(*i.then_branch);
      Walk(*i.else_branch);
      return;
    }
    if (e.Is<xquery::QuantifiedExpr>()) {
      const auto& q = e.As<xquery::QuantifiedExpr>();
      for (const xquery::ForLetClause& b : q.bindings) Walk(*b.expr);
      Walk(*q.satisfies);
    }
  }

  std::map<std::string, std::vector<xpath::Step>> vars_;
  std::vector<Predicate> out_;
};

}  // namespace

Result<AdvisorReport> DesignHorizontalFromQueries(
    const xml::Collection& c, const std::vector<std::string>& queries,
    const AdvisorOptions& options) {
  std::vector<WeightedPredicate> predicates;
  for (const std::string& query : queries) {
    PARTIX_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::ParseQuery(query));
    for (Predicate& p : PredicateMiner().Run(*ast)) {
      predicates.push_back(WeightedPredicate{std::move(p), 1.0});
    }
  }
  if (predicates.empty()) {
    return Status::InvalidArgument(
        "no fragmentation-usable predicates found in the workload");
  }
  return DesignHorizontalByMinterms(c, std::move(predicates), options);
}

}  // namespace partix::frag
