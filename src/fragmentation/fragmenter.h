#ifndef PARTIX_FRAGMENTATION_FRAGMENTER_H_
#define PARTIX_FRAGMENTATION_FRAGMENTER_H_

#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"
#include "xml/collection.h"

namespace partix::frag {

/// Materializes a fragmentation design: applies every fragment operator γ
/// to the instance documents of `c` and returns one collection per
/// fragment, in definition order. When `c` carries a schema, the
/// collection must be homogeneous (every document satisfies the root
/// type) — the paper's precondition for fragmenting MD databases.
///
/// Semantics per fragment kind:
///   - horizontal: requires an MD collection (the paper: "SD repositories
///     may not be horizontally fragmented"); documents are shared.
///   - vertical: per source document, the pruned projected subtree, with
///     reconstruction IDs.
///   - hybrid with non-trivial μ: the instance subtrees (element children
///     of the projected node) satisfying μ, materialized per
///     `schema.hybrid_mode` — FragMode1 (one document per instance) or
///     FragMode2 (one container document per source document, whose shared
///     container nodes are marked as scaffolding).
///   - hybrid with trivial μ: a plain projection (vertical semantics).
///
/// Fragment collection names are the fragment names; fragment document
/// names derive from the source document name.
Result<std::vector<xml::Collection>> ApplyFragmentation(
    const xml::Collection& c, const FragmentationSchema& schema);

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_FRAGMENTER_H_
