#include "fragmentation/correctness.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "fragmentation/algebra.h"
#include "fragmentation/fragmenter.h"
#include "fragmentation/reconstruct.h"
#include "xml/compare.h"

namespace partix::frag {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;

std::string CorrectnessReport::Summary() const {
  std::string out = "complete=";
  out += complete ? "yes" : "NO";
  out += " disjoint=";
  out += disjoint ? "yes" : "NO";
  out += " reconstructible=";
  out += reconstructible ? "yes" : "NO";
  if (!violations.empty()) {
    out += " (" + std::to_string(violations.size()) + " violations)";
  }
  return out;
}

namespace {

/// Caps the number of recorded violation strings to keep reports readable.
constexpr size_t kMaxViolations = 20;

void AddViolation(CorrectnessReport* report, std::string v) {
  if (report->violations.size() < kMaxViolations) {
    report->violations.push_back(std::move(v));
  }
}

/// Horizontal rules: per document, count matching selection predicates.
void CheckHorizontalRules(const xml::Collection& c,
                          const FragmentationSchema& schema,
                          CorrectnessReport* report) {
  for (const DocumentPtr& doc : c.docs()) {
    int matches = 0;
    for (const FragmentDef& def : schema.fragments) {
      if (def.horizontal().mu.Eval(*doc)) ++matches;
    }
    if (matches == 0) {
      report->complete = false;
      AddViolation(report, "document '" + doc->doc_name() +
                               "' matches no fragment predicate");
    } else if (matches > 1) {
      report->disjoint = false;
      AddViolation(report, "document '" + doc->doc_name() + "' matches " +
                               std::to_string(matches) +
                               " fragment predicates");
    }
  }
}

/// Node-coverage rules for vertical/hybrid designs, using the
/// reconstruction IDs the fragmenter recorded.
void CheckNodeCoverage(const xml::Collection& c,
                       const std::vector<xml::Collection>& fragments,
                       CorrectnessReport* report) {
  // source doc name -> (source node id -> real coverage count)
  std::unordered_map<std::string, std::unordered_map<NodeId, int>> coverage;
  // source doc name -> ids covered by scaffolding (ancestors chains or
  // scaffold-marked nodes)
  std::unordered_map<std::string, std::unordered_set<NodeId>> scaffolded;

  for (const xml::Collection& frag : fragments) {
    for (const DocumentPtr& doc : frag.docs()) {
      if (!doc->origin_tracking() || doc->empty()) continue;
      const std::string& source = doc->origin_doc();
      for (const auto& [id, name] : doc->origin_ancestors()) {
        scaffolded[source].insert(id);
      }
      doc->VisitSubtree(doc->root(), [&](NodeId n) {
        NodeId src_id = doc->origin(n);
        if (src_id == kNullNode) return;
        if (doc->scaffold(n)) {
          scaffolded[source].insert(src_id);
        } else {
          coverage[source][src_id] += 1;
        }
      });
    }
  }

  for (const DocumentPtr& src : c.docs()) {
    const auto& cov = coverage[src->doc_name()];
    const auto& scaf = scaffolded[src->doc_name()];
    src->VisitSubtree(src->root(), [&](NodeId n) {
      auto it = cov.find(n);
      int count = it == cov.end() ? 0 : it->second;
      if (count > 1) {
        report->disjoint = false;
        AddViolation(report,
                     "node " + std::to_string(n) + " (<" +
                         std::string(src->kind(n) == xml::NodeKind::kText
                                         ? "#text"
                                         : src->name(n)) +
                         ">) of '" + src->doc_name() + "' appears in " +
                         std::to_string(count) + " fragments");
      } else if (count == 0 && scaf.count(n) == 0) {
        report->complete = false;
        AddViolation(report,
                     "node " + std::to_string(n) + " (<" +
                         std::string(src->kind(n) == xml::NodeKind::kText
                                         ? "#text"
                                         : src->name(n)) +
                         ">) of '" + src->doc_name() +
                         "' appears in no fragment");
      }
    });
  }
}

}  // namespace

Result<CorrectnessReport> CheckCorrectness(const xml::Collection& c,
                                           const FragmentationSchema& schema) {
  CorrectnessReport report;
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());

  if (schema.DominantKind() == FragmentKind::kHorizontal) {
    for (const FragmentDef& def : schema.fragments) {
      if (def.kind() != FragmentKind::kHorizontal) {
        return Status::InvalidArgument(
            "mixed horizontal/non-horizontal designs are not supported");
      }
    }
    CheckHorizontalRules(c, schema, &report);
    // Reconstruction: union of the fragments must equal C as a set of
    // documents.
    PARTIX_ASSIGN_OR_RETURN(std::vector<xml::Collection> fragments,
                            ApplyFragmentation(c, schema));
    Result<xml::Collection> rebuilt =
        ReconstructHorizontal(fragments, c.name());
    if (!rebuilt.ok()) {
      report.reconstructible = false;
      AddViolation(&report, rebuilt.status().ToString());
    } else if (!report.complete) {
      report.reconstructible = false;
    } else {
      // Compare as document sets by name.
      std::map<std::string, DocumentPtr> by_name;
      for (const DocumentPtr& doc : rebuilt->docs()) {
        by_name[doc->doc_name()] = doc;
      }
      for (const DocumentPtr& doc : c.docs()) {
        auto it = by_name.find(doc->doc_name());
        if (it == by_name.end() ||
            !xml::DocumentsEqual(*doc, *it->second)) {
          report.reconstructible = false;
          AddViolation(&report, "document '" + doc->doc_name() +
                                    "' not reproduced by the union");
        }
      }
    }
    return report;
  }

  // Vertical / hybrid: materialize and check node coverage + round-trip.
  PARTIX_ASSIGN_OR_RETURN(std::vector<xml::Collection> fragments,
                          ApplyFragmentation(c, schema));
  CheckNodeCoverage(c, fragments, &report);

  Result<xml::Collection> rebuilt =
      ReconstructVertical(fragments, c.name(), c.docs().empty()
                                                   ? nullptr
                                                   : c.docs()[0]->pool());
  if (!rebuilt.ok()) {
    report.reconstructible = false;
    AddViolation(&report, rebuilt.status().ToString());
    return report;
  }
  std::map<std::string, DocumentPtr> by_name;
  for (const DocumentPtr& doc : rebuilt->docs()) {
    by_name[doc->doc_name()] = doc;
  }
  for (const DocumentPtr& doc : c.docs()) {
    auto it = by_name.find(doc->doc_name());
    if (it == by_name.end()) {
      report.reconstructible = false;
      AddViolation(&report, "document '" + doc->doc_name() +
                                "' missing after reconstruction");
      continue;
    }
    if (!xml::DocumentsEqual(*doc, *it->second)) {
      report.reconstructible = false;
      AddViolation(&report,
                   "document '" + doc->doc_name() + "' differs: " +
                       xml::ExplainDifference(*doc, doc->root(), *it->second,
                                              it->second->root()));
    }
  }
  return report;
}

}  // namespace partix::frag
