#include "fragmentation/reconstruct.h"

#include <map>

#include "fragmentation/algebra.h"

namespace partix::frag {

Result<xml::Collection> ReconstructHorizontal(
    const std::vector<xml::Collection>& fragments,
    const std::string& result_name) {
  return UnionCollections(fragments, result_name);
}

Result<xml::Collection> ReconstructVertical(
    const std::vector<xml::Collection>& fragments,
    const std::string& result_name, std::shared_ptr<xml::NamePool> pool) {
  if (pool == nullptr) pool = std::make_shared<xml::NamePool>();
  // Group fragment documents by source document name. std::map keeps the
  // output deterministic.
  std::map<std::string, std::vector<xml::DocumentPtr>> groups;
  xml::SchemaPtr schema;
  std::string root_path;
  xml::RepoKind kind = xml::RepoKind::kMultipleDocuments;
  for (const xml::Collection& frag : fragments) {
    if (schema == nullptr) schema = frag.schema();
    for (const xml::DocumentPtr& doc : frag.docs()) {
      if (!doc->origin_tracking()) {
        return Status::FailedPrecondition(
            "fragment document '" + doc->doc_name() +
            "' carries no reconstruction IDs");
      }
      groups[doc->origin_doc()].push_back(doc);
    }
  }
  if (groups.size() == 1) kind = xml::RepoKind::kSingleDocument;
  xml::Collection out(result_name, schema, root_path, kind);
  for (const auto& [source, docs] : groups) {
    PARTIX_ASSIGN_OR_RETURN(xml::DocumentPtr rebuilt,
                            JoinFragments(docs, pool));
    PARTIX_RETURN_IF_ERROR(out.Add(std::move(rebuilt)));
  }
  return out;
}

}  // namespace partix::frag
