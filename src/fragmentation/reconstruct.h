#ifndef PARTIX_FRAGMENTATION_RECONSTRUCT_H_
#define PARTIX_FRAGMENTATION_RECONSTRUCT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/collection.h"
#include "xml/name_pool.h"

namespace partix::frag {

/// ∇ for horizontal designs: the union of the fragments. Fails on
/// duplicate documents (disjointness violations).
Result<xml::Collection> ReconstructHorizontal(
    const std::vector<xml::Collection>& fragments,
    const std::string& result_name);

/// ∇ for vertical/hybrid designs: groups fragment documents by their
/// source document (the reconstruction ID) and joins each group back into
/// the original document. `pool` receives the rebuilt documents' interned
/// names; pass the source pool for cheap comparisons.
Result<xml::Collection> ReconstructVertical(
    const std::vector<xml::Collection>& fragments,
    const std::string& result_name, std::shared_ptr<xml::NamePool> pool);

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_RECONSTRUCT_H_
