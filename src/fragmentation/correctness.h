#ifndef PARTIX_FRAGMENTATION_CORRECTNESS_H_
#define PARTIX_FRAGMENTATION_CORRECTNESS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fragmentation/fragment_def.h"
#include "xml/collection.h"

namespace partix::frag {

/// Outcome of checking the paper's three correctness rules (§3.3) for a
/// fragmentation design Φ over a collection C:
///   - completeness: every data item of C appears in at least one fragment
///     (data item = document for horizontal, node for vertical/hybrid);
///   - disjointness: no data item appears in two fragments;
///   - reconstruction: ∇(Φ) == C, with ∇ = ∪ for horizontal and the
///     ID-join for vertical/hybrid.
///
/// For vertical/hybrid designs, replicated container structure (ancestor
/// scaffolding and FragMode2 container roots) is exempt from disjointness;
/// a node covered only by scaffolding is reported as incomplete unless it
/// is re-creatable from the recorded scaffold chains (which the
/// reconstruction check verifies by actually rebuilding).
struct CorrectnessReport {
  bool complete = true;
  bool disjoint = true;
  bool reconstructible = true;
  std::vector<std::string> violations;

  bool ok() const { return complete && disjoint && reconstructible; }
  std::string Summary() const;
};

/// Checks all three rules by materializing Φ over `c` and verifying
/// coverage plus an actual reconstruction round-trip. The check is
/// instance-based (it validates this database state, as fragmentation
/// design tools do before deployment); predicate-level proofs are the
/// design algorithms' job and out of scope, as in the paper.
Result<CorrectnessReport> CheckCorrectness(const xml::Collection& c,
                                           const FragmentationSchema& schema);

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_CORRECTNESS_H_
