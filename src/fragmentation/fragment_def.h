#ifndef PARTIX_FRAGMENTATION_FRAGMENT_DEF_H_
#define PARTIX_FRAGMENTATION_FRAGMENT_DEF_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "xpath/path.h"
#include "xpath/predicate.h"

namespace partix::frag {

/// Fragmentation types of the paper (§3.2): horizontal groups whole
/// documents by a selection predicate; vertical projects subtrees with an
/// optional prune criterion; hybrid composes projection and selection.
enum class FragmentKind {
  kHorizontal,
  kVertical,
  kHybrid,
};

const char* FragmentKindName(FragmentKind kind);

/// Horizontal fragment F := ⟨C, σμ⟩ (Definition 2): the documents of C
/// satisfying the conjunction μ. Only MD collections may be horizontally
/// fragmented (SD repositories must use hybrid fragmentation).
struct HorizontalDef {
  std::string name;
  xpath::Conjunction mu;
};

/// Vertical fragment F := ⟨C, π_{P,Γ}⟩ (Definition 3): per document, the
/// subtree rooted at the (single) node selected by P, minus the subtrees
/// selected by the prune expressions Γ. Every prune expression must have P
/// as a prefix. P must select at most one node per document unless a
/// positional index pins the occurrence (the well-formedness restriction
/// of the paper).
struct VerticalDef {
  std::string name;
  xpath::Path path;
  std::vector<xpath::Path> prune;
};

/// Hybrid fragment F := ⟨C, π_{P,Γ} • σμ⟩ (Definition 4): project P (with
/// prune Γ), then select among the *instance subtrees* under the projected
/// node — the repeating element children (e.g. the Item children of
/// /Store/Items) — those satisfying μ. μ's paths are absolute over each
/// instance subtree (e.g. /Item/Section = "CD"), matching the paper's
/// notation. A hybrid definition with a trivial μ degenerates to a
/// vertical fragment (e.g. F4items := ⟨Cstore, π_{/Store, {/Store/Items}}⟩).
struct HybridDef {
  std::string name;
  xpath::Path path;
  std::vector<xpath::Path> prune;
  xpath::Conjunction mu;
};

/// A fragment definition F := ⟨C, γ⟩ (Definition 1): γ is one of the three
/// operator shapes above; C is carried by the enclosing schema.
class FragmentDef {
 public:
  explicit FragmentDef(HorizontalDef def) : def_(std::move(def)) {}
  explicit FragmentDef(VerticalDef def) : def_(std::move(def)) {}
  explicit FragmentDef(HybridDef def) : def_(std::move(def)) {}

  FragmentKind kind() const;
  const std::string& name() const;

  const HorizontalDef& horizontal() const {
    return std::get<HorizontalDef>(def_);
  }
  const VerticalDef& vertical() const { return std::get<VerticalDef>(def_); }
  const HybridDef& hybrid() const { return std::get<HybridDef>(def_); }

  /// Paper-style rendering, e.g.
  /// "F1CD := ⟨C, σ(/Item/Section = "CD")⟩".
  std::string ToString(const std::string& collection) const;

 private:
  std::variant<HorizontalDef, VerticalDef, HybridDef> def_;
};

/// How hybrid fragments are materialized (§5, "Hybrid Fragmentation"):
/// FragMode1 stores each selected instance subtree as an independent
/// document (an MD fragment of many small documents); FragMode2 keeps a
/// single document shaped like the original, containing only the selected
/// instances (an SD fragment). The paper found FragMode1 "very
/// inefficient" due to per-document parsing and FragMode2 competitive.
enum class HybridMode {
  kOneDocPerSubtree,  // FragMode1
  kSinglePrunedDoc,   // FragMode2
};

/// A complete fragmentation design Φ = {F1, ..., Fn} over one collection.
struct FragmentationSchema {
  std::string collection;  // source collection name
  std::vector<FragmentDef> fragments;
  HybridMode hybrid_mode = HybridMode::kSinglePrunedDoc;

  /// All fragments' kinds (a design mixes kinds only in hybrid setups
  /// where some fragments are pure projections).
  FragmentKind DominantKind() const;

  /// Validates static well-formedness of the design: nonempty, unique
  /// fragment names, vertical prune paths prefixed by their fragment path,
  /// no horizontal fragments over SD (checked by the fragmenter, which
  /// knows the collection kind).
  Status ValidateStructure() const;
};

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_FRAGMENT_DEF_H_
