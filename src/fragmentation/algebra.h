#ifndef PARTIX_FRAGMENTATION_ALGEBRA_H_
#define PARTIX_FRAGMENTATION_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/collection.h"
#include "xml/document.h"
#include "xpath/path.h"
#include "xpath/predicate.h"

namespace partix::frag {

/// TLC-style operators over collections of documents (paper §3.2 follows
/// the semantics of the TLC algebra): selection σ, projection π with a
/// prune criterion, union ∪ (horizontal reconstruction), and the ID-join ⋈
/// (vertical reconstruction).

/// σμ: the documents of `c` satisfying μ. Documents are shared, not
/// copied.
xml::Collection Select(const xml::Collection& c, const xpath::Conjunction& mu,
                       const std::string& result_name);

/// π_{P,Γ} over one document: the subtree rooted at the node selected by P,
/// minus the subtrees selected by the expressions in Γ.
///
/// Returns nullptr (OK) when P selects nothing in this document (the
/// fragment simply has no instance for it). Fails with kFailedPrecondition
/// when P selects more than one node — the paper's well-formedness
/// restriction: P may not retrieve nodes with cardinality greater than one
/// unless a positional index pins the occurrence.
///
/// The projected document carries reconstruction IDs: per-node origins,
/// the source document name, and the (id, name) chain of strict ancestors
/// of the projected root.
Result<xml::DocumentPtr> ProjectDocument(const xml::Document& src,
                                         const xpath::Path& p,
                                         const std::vector<xpath::Path>& gamma,
                                         const std::string& result_doc_name);

/// ∪: the union of fragment collections (horizontal reconstruction).
/// Fails on duplicate document names (a disjointness violation).
Result<xml::Collection> UnionCollections(
    const std::vector<xml::Collection>& fragments,
    const std::string& result_name);

/// ⋈ by reconstruction ID: rebuilds one source document from the vertical
/// fragment documents that originated from it. All inputs must carry
/// origin tracking for the same source document. Missing ancestors are
/// re-created from the recorded scaffold chains. Fails when two fragments
/// claim the same source node (disjointness violation).
///
/// Implementation: a sorted label merge. Origin ids are source preorder
/// positions — prefix labels of the source document — and each fragment
/// yields its ids in increasing order (ancestor scaffold first, then the
/// fragment subtree in document order), so reconstruction is a k-way merge
/// of pre-sorted runs: O(total nodes · k) with no intermediate node table
/// and no per-node string copies. See docs/structural-index.md.
Result<xml::DocumentPtr> JoinFragments(
    const std::vector<xml::DocumentPtr>& fragment_docs,
    std::shared_ptr<xml::NamePool> pool);

/// The pre-label-merge reconstruction: gathers every fragment's nodes into
/// one id-keyed ordered map (the "value join" the paper's Q8/Q9 negative
/// result degenerates into) and rebuilds top-down from it. Byte-identical
/// output to JoinFragments; kept as the measured baseline of
/// bench/structural_join and as a differential-testing oracle.
Result<xml::DocumentPtr> JoinFragmentsValueJoin(
    const std::vector<xml::DocumentPtr>& fragment_docs,
    std::shared_ptr<xml::NamePool> pool);

}  // namespace partix::frag

#endif  // PARTIX_FRAGMENTATION_ALGEBRA_H_
