#include "fragmentation/fragmenter.h"

#include <algorithm>
#include <unordered_set>

#include "fragmentation/algebra.h"
#include "xpath/eval.h"

namespace partix::frag {

namespace {

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

/// Applies one vertical (or trivially-hybrid) projection fragment to every
/// document of `c`.
Result<xml::Collection> ApplyProjection(const xml::Collection& c,
                                        const std::string& frag_name,
                                        const xpath::Path& path,
                                        const std::vector<xpath::Path>& prune) {
  xml::Collection out(frag_name, c.schema(), path.ToString(), c.kind());
  for (const DocumentPtr& doc : c.docs()) {
    PARTIX_ASSIGN_OR_RETURN(
        DocumentPtr projected,
        ProjectDocument(*doc, path, prune,
                        doc->doc_name() + "#" + frag_name));
    if (projected != nullptr) {
      PARTIX_RETURN_IF_ERROR(out.Add(std::move(projected)));
    }
  }
  return out;
}

/// Applies one hybrid fragment (non-trivial μ) to one source document,
/// adding the produced fragment documents to `out`.
Status ApplyHybridToDocument(const Document& src, const HybridDef& def,
                             HybridMode mode, xml::Collection* out) {
  std::vector<NodeId> selected = xpath::EvalPath(src, def.path);
  if (selected.empty()) return Status::Ok();
  if (selected.size() > 1) {
    return Status::FailedPrecondition(
        "hybrid projection path " + def.path.ToString() + " selects " +
        std::to_string(selected.size()) + " nodes in document '" +
        src.doc_name() + "'");
  }
  NodeId container = selected[0];

  std::unordered_set<NodeId> pruned_roots;
  for (const xpath::Path& e : def.prune) {
    for (NodeId n : xpath::EvalPath(src, e)) pruned_roots.insert(n);
  }
  if (pruned_roots.count(container) != 0) return Status::Ok();

  auto skip = [&pruned_roots](NodeId n) {
    return pruned_roots.count(n) != 0;
  };

  // The instance subtrees: element children of the projected container.
  std::vector<NodeId> instances;
  for (NodeId ch = src.first_child(container); ch != kNullNode;
       ch = src.next_sibling(ch)) {
    if (src.kind(ch) != NodeKind::kElement) continue;
    if (pruned_roots.count(ch) != 0) continue;
    if (def.mu.EvalRootedAt(src, ch)) instances.push_back(ch);
  }
  if (instances.empty()) return Status::Ok();

  // Ancestor scaffold chains.
  auto ancestors_of = [&src](NodeId n) {
    std::vector<std::pair<NodeId, std::string>> chain;
    for (NodeId a = src.parent(n); a != kNullNode; a = src.parent(a)) {
      chain.emplace_back(a, std::string(src.name(a)));
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
  };

  if (mode == HybridMode::kOneDocPerSubtree) {
    // FragMode1: each selected instance becomes an independent document.
    size_t seq = 0;
    for (NodeId inst : instances) {
      auto doc = std::make_shared<Document>(
          src.pool(), src.doc_name() + "#" + def.name + "#" +
                          std::to_string(seq++));
      doc->EnableOriginTracking(src.doc_name());
      doc->CopySubtree(src, inst, kNullNode, skip);
      doc->SetOriginAncestors(ancestors_of(inst));
      PARTIX_RETURN_IF_ERROR(out->Add(std::move(doc)));
    }
    return Status::Ok();
  }

  // FragMode2: a single document shaped like the original container, with
  // only the selected instances. The container element (and its
  // attributes) are scaffolding shared by sibling fragments.
  auto doc = std::make_shared<Document>(src.pool(),
                                        src.doc_name() + "#" + def.name);
  doc->EnableOriginTracking(src.doc_name());
  NodeId new_container = doc->CreateRoot(src.name(container));
  doc->SetOrigin(new_container, container);
  doc->SetScaffold(new_container, true);
  for (NodeId ch = src.first_child(container); ch != kNullNode;
       ch = src.next_sibling(ch)) {
    if (src.kind(ch) == NodeKind::kAttribute) {
      NodeId a = doc->AppendAttribute(new_container, src.name(ch),
                                      src.value(ch));
      doc->SetOrigin(a, ch);
      doc->SetScaffold(a, true);
    }
  }
  for (NodeId inst : instances) {
    doc->CopySubtree(src, inst, new_container, skip);
  }
  doc->SetOriginAncestors(ancestors_of(container));
  return out->Add(std::move(doc));
}

}  // namespace

Result<std::vector<xml::Collection>> ApplyFragmentation(
    const xml::Collection& c, const FragmentationSchema& schema) {
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  // Paper §3.2: "in the case of an MD XML database, we assume that the
  // fragmentation can only be applied to homogeneous collections."
  if (c.schema() != nullptr) {
    Status homogeneous = c.ValidateHomogeneous();
    if (!homogeneous.ok()) {
      return Status::FailedPrecondition(
          "collection '" + c.name() +
          "' is not homogeneous: " + homogeneous.message());
    }
  }
  std::vector<xml::Collection> fragments;
  fragments.reserve(schema.fragments.size());

  for (const FragmentDef& def : schema.fragments) {
    switch (def.kind()) {
      case FragmentKind::kHorizontal: {
        if (c.kind() == xml::RepoKind::kSingleDocument) {
          return Status::FailedPrecondition(
              "SD collection '" + c.name() +
              "' may not be horizontally fragmented (use hybrid "
              "fragmentation)");
        }
        fragments.push_back(Select(c, def.horizontal().mu, def.name()));
        break;
      }
      case FragmentKind::kVertical: {
        PARTIX_ASSIGN_OR_RETURN(
            xml::Collection frag,
            ApplyProjection(c, def.name(), def.vertical().path,
                            def.vertical().prune));
        fragments.push_back(std::move(frag));
        break;
      }
      case FragmentKind::kHybrid: {
        const HybridDef& h = def.hybrid();
        if (h.mu.IsTrue()) {
          PARTIX_ASSIGN_OR_RETURN(
              xml::Collection frag,
              ApplyProjection(c, def.name(), h.path, h.prune));
          fragments.push_back(std::move(frag));
          break;
        }
        xml::RepoKind kind =
            schema.hybrid_mode == HybridMode::kOneDocPerSubtree
                ? xml::RepoKind::kMultipleDocuments
                : c.kind();
        xml::Collection frag(def.name(), c.schema(), h.path.ToString(),
                             kind);
        for (const DocumentPtr& doc : c.docs()) {
          PARTIX_RETURN_IF_ERROR(ApplyHybridToDocument(
              *doc, h, schema.hybrid_mode, &frag));
        }
        fragments.push_back(std::move(frag));
        break;
      }
    }
  }
  return fragments;
}

}  // namespace partix::frag
