#include "fragmentation/fragment_def.h"

#include <set>

namespace partix::frag {

const char* FragmentKindName(FragmentKind kind) {
  switch (kind) {
    case FragmentKind::kHorizontal:
      return "horizontal";
    case FragmentKind::kVertical:
      return "vertical";
    case FragmentKind::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

FragmentKind FragmentDef::kind() const {
  if (std::holds_alternative<HorizontalDef>(def_)) {
    return FragmentKind::kHorizontal;
  }
  if (std::holds_alternative<VerticalDef>(def_)) {
    return FragmentKind::kVertical;
  }
  return FragmentKind::kHybrid;
}

const std::string& FragmentDef::name() const {
  switch (kind()) {
    case FragmentKind::kHorizontal:
      return horizontal().name;
    case FragmentKind::kVertical:
      return vertical().name;
    case FragmentKind::kHybrid:
      break;
  }
  return hybrid().name;
}

std::string FragmentDef::ToString(const std::string& collection) const {
  std::string out = name() + " := <" + collection + ", ";
  switch (kind()) {
    case FragmentKind::kHorizontal:
      out += "select(" + horizontal().mu.ToString() + ")";
      break;
    case FragmentKind::kVertical: {
      const VerticalDef& v = vertical();
      out += "project(" + v.path.ToString() + ", {";
      for (size_t i = 0; i < v.prune.size(); ++i) {
        if (i > 0) out += ", ";
        out += v.prune[i].ToString();
      }
      out += "})";
      break;
    }
    case FragmentKind::kHybrid: {
      const HybridDef& h = hybrid();
      out += "project(" + h.path.ToString() + ", {";
      for (size_t i = 0; i < h.prune.size(); ++i) {
        if (i > 0) out += ", ";
        out += h.prune[i].ToString();
      }
      out += "})";
      if (!h.mu.IsTrue()) out += " . select(" + h.mu.ToString() + ")";
      break;
    }
  }
  out += ">";
  return out;
}

FragmentKind FragmentationSchema::DominantKind() const {
  bool any_hybrid = false;
  bool any_horizontal = false;
  for (const FragmentDef& f : fragments) {
    if (f.kind() == FragmentKind::kHybrid) any_hybrid = true;
    if (f.kind() == FragmentKind::kHorizontal) any_horizontal = true;
  }
  if (any_hybrid) return FragmentKind::kHybrid;
  if (any_horizontal) return FragmentKind::kHorizontal;
  return FragmentKind::kVertical;
}

Status FragmentationSchema::ValidateStructure() const {
  if (fragments.empty()) {
    return Status::InvalidArgument("fragmentation schema for '" + collection +
                                   "' has no fragments");
  }
  std::set<std::string> names;
  for (const FragmentDef& f : fragments) {
    if (!names.insert(f.name()).second) {
      return Status::InvalidArgument("duplicate fragment name '" + f.name() +
                                     "'");
    }
    if (f.kind() == FragmentKind::kVertical) {
      for (const xpath::Path& prune : f.vertical().prune) {
        if (!f.vertical().path.IsPrefixOf(prune)) {
          return Status::InvalidArgument(
              "prune path " + prune.ToString() + " of fragment '" +
              f.name() + "' is not prefixed by " +
              f.vertical().path.ToString());
        }
      }
    }
    if (f.kind() == FragmentKind::kHybrid) {
      for (const xpath::Path& prune : f.hybrid().prune) {
        if (!f.hybrid().path.IsPrefixOf(prune)) {
          return Status::InvalidArgument(
              "prune path " + prune.ToString() + " of fragment '" +
              f.name() + "' is not prefixed by " +
              f.hybrid().path.ToString());
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace partix::frag
