#include "fragmentation/schema_io.h"

#include <sstream>

#include "common/strings.h"

namespace partix::frag {

namespace {

std::string JoinPaths(const std::vector<xpath::Path>& paths) {
  std::string out;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) out += ";";
    out += paths[i].ToString();
  }
  return out;
}

Result<std::vector<xpath::Path>> SplitPaths(std::string_view field) {
  std::vector<xpath::Path> out;
  for (std::string_view piece : SplitSkipEmpty(field, ';')) {
    PARTIX_ASSIGN_OR_RETURN(xpath::Path path, xpath::Path::Parse(piece));
    out.push_back(std::move(path));
  }
  return out;
}

}  // namespace

std::string SerializeFragmentationSchema(const FragmentationSchema& schema) {
  std::string out = "collection\t" + schema.collection + "\n";
  out += "hybrid_mode\t";
  out += schema.hybrid_mode == HybridMode::kOneDocPerSubtree ? "frag1"
                                                             : "frag2";
  out += "\n";
  for (const FragmentDef& def : schema.fragments) {
    switch (def.kind()) {
      case FragmentKind::kHorizontal:
        out += "horizontal\t" + def.name() + "\t" +
               def.horizontal().mu.ToString() + "\n";
        break;
      case FragmentKind::kVertical:
        out += "vertical\t" + def.name() + "\t" +
               def.vertical().path.ToString() + "\t" +
               JoinPaths(def.vertical().prune) + "\n";
        break;
      case FragmentKind::kHybrid:
        out += "hybrid\t" + def.name() + "\t" +
               def.hybrid().path.ToString() + "\t" +
               JoinPaths(def.hybrid().prune) + "\t" +
               def.hybrid().mu.ToString() + "\n";
        break;
    }
  }
  return out;
}

Result<FragmentationSchema> ParseFragmentationSchema(
    const std::string& text) {
  FragmentationSchema schema;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    auto fields = Split(line, '\t');
    const std::string tag(fields[0]);
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("schema line " +
                                     std::to_string(line_no) + ": " + why);
    };
    if (tag == "collection") {
      if (fields.size() != 2) return bad("collection needs one field");
      schema.collection = std::string(fields[1]);
    } else if (tag == "hybrid_mode") {
      if (fields.size() != 2) return bad("hybrid_mode needs one field");
      if (fields[1] == "frag1") {
        schema.hybrid_mode = HybridMode::kOneDocPerSubtree;
      } else if (fields[1] == "frag2") {
        schema.hybrid_mode = HybridMode::kSinglePrunedDoc;
      } else {
        return bad("unknown hybrid_mode");
      }
    } else if (tag == "horizontal") {
      if (fields.size() != 3) return bad("horizontal needs two fields");
      PARTIX_ASSIGN_OR_RETURN(xpath::Conjunction mu,
                              xpath::Conjunction::Parse(fields[2]));
      schema.fragments.emplace_back(
          HorizontalDef{std::string(fields[1]), std::move(mu)});
    } else if (tag == "vertical") {
      if (fields.size() != 4) return bad("vertical needs three fields");
      PARTIX_ASSIGN_OR_RETURN(xpath::Path path,
                              xpath::Path::Parse(fields[2]));
      PARTIX_ASSIGN_OR_RETURN(std::vector<xpath::Path> prune,
                              SplitPaths(fields[3]));
      schema.fragments.emplace_back(VerticalDef{
          std::string(fields[1]), std::move(path), std::move(prune)});
    } else if (tag == "hybrid") {
      if (fields.size() != 5) return bad("hybrid needs four fields");
      PARTIX_ASSIGN_OR_RETURN(xpath::Path path,
                              xpath::Path::Parse(fields[2]));
      PARTIX_ASSIGN_OR_RETURN(std::vector<xpath::Path> prune,
                              SplitPaths(fields[3]));
      PARTIX_ASSIGN_OR_RETURN(xpath::Conjunction mu,
                              xpath::Conjunction::Parse(fields[4]));
      schema.fragments.emplace_back(
          HybridDef{std::string(fields[1]), std::move(path),
                    std::move(prune), std::move(mu)});
    } else {
      return bad("unknown tag '" + tag + "'");
    }
  }
  PARTIX_RETURN_IF_ERROR(schema.ValidateStructure());
  return schema;
}

}  // namespace partix::frag
