#ifndef PARTIX_MEMORY_ARENA_H_
#define PARTIX_MEMORY_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace partix::memory {

/// Configuration of an ArenaPool. Chunk capacities are rounded up to
/// power-of-two size classes between `min_chunk_bytes` and
/// `max_chunk_bytes`; oversize requests get an exact-size chunk that is
/// never retained.
struct ArenaPoolOptions {
  size_t min_chunk_bytes = size_t{16} << 10;   // 16 KiB
  size_t max_chunk_bytes = size_t{1} << 20;    // 1 MiB
  /// Cap on idle chunk bytes kept on the free lists. Chunks released
  /// beyond the cap are returned to the system allocator immediately.
  size_t max_retained_bytes = size_t{32} << 20;  // 32 MiB
};

/// Point-in-time statistics of an ArenaPool.
struct ArenaPoolStats {
  uint64_t chunks_created = 0;   // fresh system allocations
  uint64_t chunks_reused = 0;    // served from a free list
  uint64_t chunks_recycled = 0;  // released back onto a free list
  uint64_t chunks_freed = 0;     // returned to the system allocator
  size_t retained_bytes = 0;     // idle capacity on the free lists
  size_t outstanding_bytes = 0;  // capacity currently lent to arenas
  /// Cumulative capacity / used bytes of every released chunk chain —
  /// the basis of the internal-fragmentation percentage.
  uint64_t released_capacity_bytes = 0;
  uint64_t released_used_bytes = 0;

  /// Internal fragmentation over everything released so far:
  /// 100 * (1 - used / capacity). 0 when nothing was released yet.
  double fragmentation_pct() const {
    if (released_capacity_bytes == 0) return 0.0;
    return 100.0 * (1.0 - static_cast<double>(released_used_bytes) /
                              static_cast<double>(released_capacity_bytes));
  }
};

/// A thread-safe pool of memory chunks with power-of-two size classes
/// (slab-style free lists). Arenas draw chunks from a pool and hand the
/// whole chain back on destruction, so the bytes backing one parsed
/// document are recycled into the next parse instead of churning through
/// malloc/free. Idle capacity is bounded by `max_retained_bytes`.
///
/// Thread-safety: all methods are safe to call concurrently (one mutex
/// around the free lists; arenas themselves are single-threaded).
class ArenaPool {
 public:
  /// Chunk header; payload bytes follow in the same allocation.
  struct Chunk {
    Chunk* next = nullptr;
    size_t capacity = 0;  // payload bytes at data()
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };

  explicit ArenaPool(ArenaPoolOptions options = ArenaPoolOptions());
  ~ArenaPool();
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// The process-wide pool backing xml::Document arenas.
  static ArenaPool& Global();

  /// Returns a chunk with capacity >= max(min_bytes, min_chunk_bytes),
  /// reusing a free-listed chunk of the right class when one is idle.
  Chunk* Acquire(size_t min_bytes);

  /// Takes back a chain of chunks (next-linked, nullptr-terminated).
  /// `used_bytes` is the number of payload bytes the arena actually
  /// consumed across the chain; it feeds the fragmentation gauge.
  /// Chunks beyond the retained cap (and oversize chunks) are freed.
  void Release(Chunk* chain, size_t used_bytes);

  /// Frees every idle chunk, returning retained capacity to the system.
  void Trim();

  ArenaPoolStats stats() const;
  const ArenaPoolOptions& options() const { return options_; }

 private:
  size_t ClassOf(size_t capacity) const;  // free-list index, or npos
  void PublishGauges() const;             // global pool only
  static Chunk* NewChunk(size_t capacity);
  static void DeleteChunk(Chunk* chunk);

  const ArenaPoolOptions options_;
  mutable std::mutex mu_;
  std::vector<Chunk*> free_lists_;  // one per size class, LIFO
  ArenaPoolStats stats_;
};

/// A single-threaded bump allocator. Two modes:
///
///   - *pooled* (constructed with an ArenaPool): memory comes in chunks
///     from the pool and the whole chain is released on destruction —
///     O(1) allocations per parse, recycled across parses.
///   - *direct* (null pool): every Allocate is its own system
///     allocation, mimicking the legacy one-std::string-per-text-node
///     behavior. This is the malloc baseline bench/memory_density
///     compares against, and the fallback when pooling is disabled.
///
/// Byte accounting (used_bytes) is identical in both modes, so document
/// cache eviction behaves the same with pooling on or off.
///
/// Thread-compatible: confine an Arena (like the Document that owns it)
/// to one thread at a time.
class Arena {
 public:
  /// Direct-mode arena.
  Arena() = default;
  /// Pooled arena when `pool` is non-null; direct otherwise.
  explicit Arena(ArenaPool* pool) : pool_(pool) {}
  ~Arena();

  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena; the view stays valid for the arena's
  /// lifetime. Empty input returns an empty view without allocating.
  std::string_view CopyString(std::string_view s);

  /// Drops every allocation. Pooled chunks go back to the pool; direct
  /// blocks are freed.
  void Clear();

  size_t used_bytes() const { return used_; }
  size_t capacity_bytes() const { return capacity_; }
  bool pooled() const { return pool_ != nullptr; }

 private:
  void* AllocateSlow(size_t bytes);

  ArenaPool* pool_ = nullptr;
  ArenaPool::Chunk* chunks_ = nullptr;  // pooled chain; head = current
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t next_chunk_bytes_ = 0;
  std::vector<void*> direct_blocks_;  // direct mode
  size_t used_ = 0;
  size_t capacity_ = 0;
};

/// Process-wide switch for the arena mode of newly constructed
/// xml::Documents: pooled (default) or direct/malloc-baseline. Existing
/// documents keep the arena they were built with. Thread-safe; benches
/// and the byte-identity tests flip it between phases.
void SetDocumentArenaPooling(bool enabled);
bool DocumentArenaPoolingEnabled();

/// The pool new Documents should draw from: &ArenaPool::Global() when
/// pooling is enabled, nullptr (direct mode) otherwise.
ArenaPool* DocumentArenaPoolOrNull();

}  // namespace partix::memory

#endif  // PARTIX_MEMORY_ARENA_H_
