#include "memory/arena.h"

#include <atomic>
#include <cstring>
#include <new>

#include "telemetry/metrics.h"

namespace partix::memory {

namespace {

/// Telemetry handles for the global pool, registered once. Per-event
/// counters record as they happen; byte gauges are refreshed from pool
/// stats after each acquire/release.
struct ArenaTelemetry {
  telemetry::Counter* chunks_created;
  telemetry::Counter* chunks_reused;
  telemetry::Gauge* retained_bytes;
  telemetry::Gauge* outstanding_bytes;
  telemetry::Gauge* fragmentation_pct;

  static ArenaTelemetry& Get() {
    static ArenaTelemetry t = [] {
      auto& reg = telemetry::MetricsRegistry::Global();
      ArenaTelemetry x;
      x.chunks_created = reg.GetCounter("partix_arena_chunks_created_total");
      x.chunks_reused = reg.GetCounter("partix_arena_chunks_reused_total");
      x.retained_bytes = reg.GetGauge("partix_arena_retained_bytes");
      x.outstanding_bytes = reg.GetGauge("partix_arena_outstanding_bytes");
      x.fragmentation_pct = reg.GetGauge("partix_arena_fragmentation_pct");
      return x;
    }();
    return t;
  }
};

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::atomic<bool> g_document_arena_pooling{true};

}  // namespace

// ---------------------------------------------------------------------------
// ArenaPool

ArenaPool::ArenaPool(ArenaPoolOptions options) : options_(options) {
  size_t classes = 0;
  for (size_t c = RoundUpPow2(options_.min_chunk_bytes);
       c <= options_.max_chunk_bytes; c <<= 1) {
    ++classes;
  }
  free_lists_.assign(classes == 0 ? 1 : classes, nullptr);
}

ArenaPool::~ArenaPool() { Trim(); }

ArenaPool& ArenaPool::Global() {
  // Leaked on purpose: documents (and their arenas) may be destroyed
  // during static teardown in arbitrary order.
  static ArenaPool* pool = new ArenaPool();
  return *pool;
}

size_t ArenaPool::ClassOf(size_t capacity) const {
  size_t base = RoundUpPow2(options_.min_chunk_bytes);
  size_t idx = 0;
  for (size_t c = base; c <= options_.max_chunk_bytes; c <<= 1, ++idx) {
    if (capacity == c) return idx < free_lists_.size() ? idx : free_lists_.size();
  }
  return free_lists_.size();  // oversize / non-class capacity
}

ArenaPool::Chunk* ArenaPool::NewChunk(size_t capacity) {
  void* raw = ::operator new(sizeof(Chunk) + capacity);
  Chunk* chunk = new (raw) Chunk();
  chunk->capacity = capacity;
  return chunk;
}

void ArenaPool::DeleteChunk(Chunk* chunk) {
  chunk->~Chunk();
  ::operator delete(static_cast<void*>(chunk));
}

ArenaPool::Chunk* ArenaPool::Acquire(size_t min_bytes) {
  size_t want = min_bytes < options_.min_chunk_bytes ? options_.min_chunk_bytes
                                                     : min_bytes;
  size_t capacity = RoundUpPow2(want);
  bool reused = false;
  Chunk* chunk = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t cls = ClassOf(capacity);
    // Serve from the exact class, or the next larger one that has an
    // idle chunk (still O(#classes)).
    for (size_t i = cls; i < free_lists_.size(); ++i) {
      if (free_lists_[i] != nullptr) {
        chunk = free_lists_[i];
        free_lists_[i] = chunk->next;
        chunk->next = nullptr;
        stats_.retained_bytes -= chunk->capacity;
        reused = true;
        break;
      }
    }
    if (chunk == nullptr) {
      ++stats_.chunks_created;
    } else {
      ++stats_.chunks_reused;
    }
    if (chunk != nullptr) stats_.outstanding_bytes += chunk->capacity;
  }
  if (chunk == nullptr) {
    chunk = NewChunk(capacity);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.outstanding_bytes += chunk->capacity;
  }
  ArenaTelemetry& t = ArenaTelemetry::Get();
  (reused ? t.chunks_reused : t.chunks_created)->Add(1);
  PublishGauges();
  return chunk;
}

void ArenaPool::Release(Chunk* chain, size_t used_bytes) {
  if (chain == nullptr) return;
  std::vector<Chunk*> to_free;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t chain_capacity = 0;
    Chunk* next = nullptr;
    for (Chunk* c = chain; c != nullptr; c = next) {
      next = c->next;
      c->next = nullptr;
      chain_capacity += c->capacity;
      size_t cls = ClassOf(c->capacity);
      bool retain = cls < free_lists_.size() &&
                    stats_.retained_bytes + c->capacity <=
                        options_.max_retained_bytes;
      if (retain) {
        c->next = free_lists_[cls];
        free_lists_[cls] = c;
        stats_.retained_bytes += c->capacity;
        ++stats_.chunks_recycled;
      } else {
        to_free.push_back(c);
        ++stats_.chunks_freed;
      }
    }
    stats_.outstanding_bytes -= chain_capacity;
    stats_.released_capacity_bytes += chain_capacity;
    stats_.released_used_bytes +=
        used_bytes < chain_capacity ? used_bytes : chain_capacity;
  }
  for (Chunk* c : to_free) DeleteChunk(c);
  PublishGauges();
}

void ArenaPool::Trim() {
  std::vector<Chunk*> to_free;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Chunk*& head : free_lists_) {
      Chunk* next = nullptr;
      for (Chunk* c = head; c != nullptr; c = next) {
        next = c->next;
        to_free.push_back(c);
        ++stats_.chunks_freed;
      }
      head = nullptr;
    }
    stats_.retained_bytes = 0;
  }
  for (Chunk* c : to_free) DeleteChunk(c);
  PublishGauges();
}

ArenaPoolStats ArenaPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArenaPool::PublishGauges() const {
  // Only the global pool exports gauges: per-test pools would stomp the
  // shared names.
  if (this != &Global()) return;
  ArenaPoolStats s = stats();
  ArenaTelemetry& t = ArenaTelemetry::Get();
  t.retained_bytes->Set(static_cast<double>(s.retained_bytes));
  t.outstanding_bytes->Set(static_cast<double>(s.outstanding_bytes));
  t.fragmentation_pct->Set(s.fragmentation_pct());
}

// ---------------------------------------------------------------------------
// Arena

Arena::~Arena() { Clear(); }

Arena::Arena(Arena&& other) noexcept
    : pool_(other.pool_),
      chunks_(other.chunks_),
      cursor_(other.cursor_),
      limit_(other.limit_),
      next_chunk_bytes_(other.next_chunk_bytes_),
      direct_blocks_(std::move(other.direct_blocks_)),
      used_(other.used_),
      capacity_(other.capacity_) {
  other.chunks_ = nullptr;
  other.cursor_ = other.limit_ = nullptr;
  other.direct_blocks_.clear();
  other.used_ = other.capacity_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    Clear();
    pool_ = other.pool_;
    chunks_ = other.chunks_;
    cursor_ = other.cursor_;
    limit_ = other.limit_;
    next_chunk_bytes_ = other.next_chunk_bytes_;
    direct_blocks_ = std::move(other.direct_blocks_);
    used_ = other.used_;
    capacity_ = other.capacity_;
    other.chunks_ = nullptr;
    other.cursor_ = other.limit_ = nullptr;
    other.direct_blocks_.clear();
    other.used_ = other.capacity_ = 0;
  }
  return *this;
}

void Arena::Clear() {
  if (pool_ != nullptr) {
    if (chunks_ != nullptr) {
      pool_->Release(chunks_, used_);
      chunks_ = nullptr;
    }
  } else {
    for (void* block : direct_blocks_) ::operator delete(block);
    direct_blocks_.clear();
  }
  cursor_ = limit_ = nullptr;
  next_chunk_bytes_ = 0;
  used_ = 0;
  capacity_ = 0;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  if (pool_ == nullptr) {
    // Direct mode: one system allocation per request — the malloc
    // baseline. Byte accounting matches pooled mode exactly.
    void* block = ::operator new(bytes);
    direct_blocks_.push_back(block);
    used_ += bytes;
    capacity_ += bytes;
    return block;
  }
  uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (p + (align - 1)) & ~(uintptr_t{align} - 1);
  if (cursor_ == nullptr ||
      aligned + bytes > reinterpret_cast<uintptr_t>(limit_)) {
    void* out = AllocateSlow(bytes + align - 1);
    uintptr_t q = reinterpret_cast<uintptr_t>(out);
    uintptr_t qa = (q + (align - 1)) & ~(uintptr_t{align} - 1);
    used_ += bytes;
    return reinterpret_cast<void*>(qa);
  }
  cursor_ = reinterpret_cast<char*>(aligned + bytes);
  used_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void* Arena::AllocateSlow(size_t bytes) {
  size_t want = next_chunk_bytes_ == 0 ? pool_->options().min_chunk_bytes
                                       : next_chunk_bytes_;
  if (want < bytes) want = bytes;
  ArenaPool::Chunk* chunk = pool_->Acquire(want);
  chunk->next = chunks_;
  chunks_ = chunk;
  capacity_ += chunk->capacity;
  // Double the request up to the pool's max class so big documents
  // settle into a handful of large chunks.
  size_t doubled = chunk->capacity * 2;
  next_chunk_bytes_ = doubled > pool_->options().max_chunk_bytes
                          ? pool_->options().max_chunk_bytes
                          : doubled;
  cursor_ = chunk->data() + bytes;
  limit_ = chunk->data() + chunk->capacity;
  return chunk->data();
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* dst = static_cast<char*>(Allocate(s.size(), 1));
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

// ---------------------------------------------------------------------------
// Document arena mode

void SetDocumentArenaPooling(bool enabled) {
  g_document_arena_pooling.store(enabled, std::memory_order_relaxed);
}

bool DocumentArenaPoolingEnabled() {
  return g_document_arena_pooling.load(std::memory_order_relaxed);
}

ArenaPool* DocumentArenaPoolOrNull() {
  return DocumentArenaPoolingEnabled() ? &ArenaPool::Global() : nullptr;
}

}  // namespace partix::memory
